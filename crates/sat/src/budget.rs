//! Resource budgets for bounded solving.
//!
//! A [`Budget`] caps how much work one `solve` call may spend before
//! giving up with [`SolveResult::Unknown`](crate::SolveResult::Unknown).
//! Exhaustion is not failure: the solver keeps every clause it learnt and
//! stays at decision level 0, so the caller can retry with a larger
//! budget, add constraints, or walk away with a partial result. This is
//! the substrate for fault-tolerant attack loops (checkpoint the state,
//! bound each SAT call, degrade gracefully when the bound trips) and for
//! service-style deployments where a job scheduler — not the solver —
//! decides how long a query may run.

use std::time::Duration;

/// Work limits for one [`Solver::solve_limited`](crate::Solver::solve_limited)
/// call. `None` in a field means that dimension is unlimited.
///
/// Limits are *per call*: each counts work done by this call only, not
/// lifetime totals, so a warm incremental solver can be driven through
/// many equally-bounded calls.
///
/// # Example
///
/// ```
/// use satsolver::Budget;
///
/// let b = Budget::new().with_conflicts(10_000).with_wall_ms(250);
/// assert!(!b.is_unlimited());
/// assert!(Budget::new().is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum conflicts this call may analyze.
    pub conflicts: Option<u64>,
    /// Maximum trail pushes (decisions + implied literals) this call may
    /// make.
    pub propagations: Option<u64>,
    /// Wall-clock ceiling for this call. Checked at every conflict and
    /// decision, so overshoot is bounded by one propagation sweep.
    pub wall: Option<Duration>,
}

impl Budget {
    /// An unlimited budget (every field `None`).
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Caps the number of conflicts.
    #[must_use]
    pub fn with_conflicts(mut self, conflicts: u64) -> Budget {
        self.conflicts = Some(conflicts);
        self
    }

    /// Caps the number of propagations (trail pushes).
    #[must_use]
    pub fn with_propagations(mut self, propagations: u64) -> Budget {
        self.propagations = Some(propagations);
        self
    }

    /// Caps wall-clock time.
    #[must_use]
    pub fn with_wall(mut self, wall: Duration) -> Budget {
        self.wall = Some(wall);
        self
    }

    /// Caps wall-clock time, in milliseconds.
    #[must_use]
    pub fn with_wall_ms(self, ms: u64) -> Budget {
        self.with_wall(Duration::from_millis(ms))
    }

    /// Whether every dimension is unlimited (the call can never return
    /// `Unknown`).
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none() && self.propagations.is_none() && self.wall.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_fields() {
        let b = Budget::new()
            .with_conflicts(5)
            .with_propagations(7)
            .with_wall_ms(11);
        assert_eq!(b.conflicts, Some(5));
        assert_eq!(b.propagations, Some(7));
        assert_eq!(b.wall, Some(Duration::from_millis(11)));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert!(Budget::default().is_unlimited());
    }
}
