//! Indexed binary max-heap ordered by variable activity (VSIDS order).

/// Max-heap over variable indices keyed by an external activity array.
///
/// Supports decrease/increase-key via the dense `position` map, which is
/// what VSIDS needs: bumping a variable's activity must float it up
/// without a full rebuild.
#[derive(Debug, Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index in `heap`, or `usize::MAX` when absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> Self {
        VarHeap::default()
    }

    /// Registers a new variable id (not inserted yet).
    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        self.position.resize(num_vars, ABSENT);
    }

    pub(crate) fn contains(&self, v: usize) -> bool {
        self.position[v] != ABSENT
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `v` if absent.
    pub(crate) fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v] = self.heap.len();
        self.heap.push(v as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().expect("nonempty");
        self.position[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: usize, activity: &[f64]) {
        let pos = self.position[v];
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i] as usize] = i;
        self.position[self.heap[j] as usize] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(4);
        for v in 0..4 {
            h.insert(v, &activity);
        }
        assert_eq!(h.pop(&activity), Some(1));
        assert_eq!(h.pop(&activity), Some(3));
        assert_eq!(h.pop(&activity), Some(2));
        assert_eq!(h.pop(&activity), Some(0));
        assert_eq!(h.pop(&activity), None);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(2);
        h.insert(0, &activity);
        h.insert(0, &activity);
        assert_eq!(h.pop(&activity), Some(0));
        assert!(h.is_empty());
    }

    #[test]
    fn update_after_bump_floats_up() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow_to(3);
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.update(0, &activity);
        assert_eq!(h.pop(&activity), Some(0));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.grow_to(1);
        assert!(!h.contains(0));
        h.insert(0, &activity);
        assert!(h.contains(0));
        h.pop(&activity);
        assert!(!h.contains(0));
    }
}
