//! Proof logging: DRAT with an `x` extension for xor-derived clauses.
//!
//! A certifying run streams every inference the solver makes to a
//! [`ProofLogger`]; together with the input formula the resulting log is a
//! machine-checkable certificate (checked by the `proofcheck` crate's
//! `drat-check`). Three step kinds are emitted:
//!
//! * **Clause addition** — a learnt clause (or the empty clause on
//!   refutation), one DIMACS-coded line terminated by `0`. Checkable by
//!   RUP: assuming the negation of every literal and unit-propagating over
//!   the active clause set must yield a conflict.
//! * **Clause deletion** — `d` followed by the clause. Deletions keep the
//!   checker's propagation state small and mirror the solver's learnt-DB
//!   reduction exactly.
//! * **Xor-derived clause** — `x <lits> 0 <origin ids> 0 <unit lits> 0`.
//!   Clauses materialized from the GF(2) engine are *not* RUP in general
//!   (that is the whole point of native xor reasoning), so each one is
//!   logged with its derivation: the set of input xor constraints whose
//!   GF(2) sum, after substituting the listed top-level unit literals,
//!   yields the row the clause was read off. Origin ids are **1-based**
//!   on the wire (`0` is the group terminator): id `k` is the formula's
//!   `k`-th `x`-line in add order. The checker re-runs the elimination densely
//!   and verifies the clause against the reconstructed row — no RUP
//!   involved. See DESIGN.md §7 for the exact soundness argument.
//!
//! The logger is held behind `Option<Box<dyn ProofLogger>>` in the solver:
//! when no logger is installed every call site is a single branch on a
//! `None` — proof support costs nothing unless switched on.

use std::sync::{Arc, Mutex};

use crate::types::Lit;

/// Sink for proof steps emitted by a certifying [`crate::Solver`] run.
///
/// Implementations must be cheap: the solver calls these on every learnt
/// clause, deletion, and xor materialization. [`DratProof`] is the
/// standard in-memory implementation; install a shared handle with
/// [`crate::Solver::set_proof_logger`] (an `Arc<Mutex<DratProof>>`
/// implements the trait) and read the accumulated text back after the
/// solve.
pub trait ProofLogger: std::fmt::Debug + Send {
    /// A clause addition step (learnt clause, derived unit, or the empty
    /// clause closing a refutation).
    fn add_clause(&mut self, lits: &[Lit]);

    /// A clause deletion step.
    fn delete_clause(&mut self, lits: &[Lit]);

    /// An xor-derived clause: `lits` is implied by the GF(2) sum of the
    /// input xor constraints `origins` (0-based indices in add order;
    /// rendered 1-based on the wire) after substituting the top-level
    /// unit literals `units`.
    fn add_xor_derived(&mut self, lits: &[Lit], origins: &[u32], units: &[Lit]);
}

/// Counters over the steps a [`DratProof`] holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Clause addition steps (including the final empty clause).
    pub additions: u64,
    /// Clause deletion steps.
    pub deletions: u64,
    /// Xor-derived clause steps.
    pub xor_steps: u64,
}

impl ProofStats {
    /// Total step count.
    pub fn steps(&self) -> u64 {
        self.additions + self.deletions + self.xor_steps
    }
}

/// The in-memory DRAT+xor proof log.
///
/// Accumulates the textual proof (one step per line) plus step counters.
/// The text format is the certificate interchange format checked by
/// `proofcheck` (DESIGN.md §7).
#[derive(Debug, Default)]
pub struct DratProof {
    text: String,
    stats: ProofStats,
    /// Set once an empty-clause addition has been logged; later steps are
    /// suppressed (the refutation is complete, and the solver's fast
    /// top-level unsat paths may otherwise log twice).
    closed: bool,
}

impl DratProof {
    /// An empty proof.
    pub fn new() -> DratProof {
        DratProof::default()
    }

    /// A fresh shared handle, ready for [`crate::Solver::set_proof_logger`]
    /// (clone the `Arc`, box one clone for the solver, keep the other).
    pub fn shared() -> Arc<Mutex<DratProof>> {
        Arc::new(Mutex::new(DratProof::new()))
    }

    /// The proof text so far.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Step counters.
    pub fn stats(&self) -> &ProofStats {
        &self.stats
    }

    /// Whether an empty-clause addition has been logged (the proof is a
    /// complete refutation).
    pub fn is_refutation(&self) -> bool {
        self.closed
    }

    fn push_lits(&mut self, lits: &[Lit]) {
        for l in lits {
            self.text.push_str(itoa(l.to_dimacs()).as_str());
            self.text.push(' ');
        }
        self.text.push('0');
    }
}

/// Minimal integer formatting without the `format!` machinery (this is the
/// hot path of a certifying run).
fn itoa(v: i64) -> String {
    v.to_string()
}

impl ProofLogger for DratProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        if self.closed {
            return;
        }
        self.stats.additions += 1;
        self.push_lits(lits);
        self.text.push('\n');
        if lits.is_empty() {
            self.closed = true;
        }
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        if self.closed {
            return;
        }
        self.stats.deletions += 1;
        self.text.push_str("d ");
        self.push_lits(lits);
        self.text.push('\n');
    }

    fn add_xor_derived(&mut self, lits: &[Lit], origins: &[u32], units: &[Lit]) {
        if self.closed {
            return;
        }
        self.stats.xor_steps += 1;
        self.text.push_str("x ");
        self.push_lits(lits);
        self.text.push(' ');
        for id in origins {
            // 1-based on the wire: 0 terminates the group.
            self.text.push_str(itoa(i64::from(*id) + 1).as_str());
            self.text.push(' ');
        }
        self.text.push_str("0 ");
        self.push_lits(units);
        self.text.push('\n');
        if lits.is_empty() {
            self.closed = true;
        }
    }
}

/// Forwarding implementation so a shared handle can be installed in the
/// solver while the caller keeps the other clone to read the proof back.
impl ProofLogger for Arc<Mutex<DratProof>> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.lock().expect("proof mutex").add_clause(lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.lock().expect("proof mutex").delete_clause(lits);
    }

    fn add_xor_derived(&mut self, lits: &[Lit], origins: &[u32], units: &[Lit]) {
        self.lock()
            .expect("proof mutex")
            .add_xor_derived(lits, origins, units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[i64]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_dimacs(c)).collect()
    }

    #[test]
    fn text_format_round_trips_by_eye() {
        let mut p = DratProof::new();
        p.add_clause(&lits(&[1, -2]));
        p.delete_clause(&lits(&[1, -2]));
        p.add_xor_derived(&lits(&[3, -4]), &[0, 2], &lits(&[-5]));
        p.add_clause(&[]);
        assert_eq!(p.text(), "1 -2 0\nd 1 -2 0\nx 3 -4 0 1 3 0 -5 0\n0\n");
        assert_eq!(p.stats().additions, 2);
        assert_eq!(p.stats().deletions, 1);
        assert_eq!(p.stats().xor_steps, 1);
        assert_eq!(p.stats().steps(), 4);
        assert!(p.is_refutation());
    }

    #[test]
    fn steps_after_refutation_are_suppressed() {
        let mut p = DratProof::new();
        p.add_clause(&[]);
        p.add_clause(&lits(&[1]));
        p.delete_clause(&lits(&[1]));
        assert_eq!(p.stats().steps(), 1);
        assert_eq!(p.text(), "0\n");
    }

    #[test]
    fn shared_handle_forwards() {
        let shared = DratProof::shared();
        let mut handle: Box<dyn ProofLogger> = Box::new(shared.clone());
        handle.add_clause(&lits(&[7]));
        assert_eq!(shared.lock().unwrap().stats().additions, 1);
    }
}
