//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, densely numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a variable from its dense index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// A literal with explicit sign; `positive = true` gives `var`,
    /// `false` gives `¬var`.
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index (distinct for the two polarities), used for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a literal from its dense index.
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }

    /// DIMACS encoding: 1-based, negative numbers for negated literals.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.var().0 + 1);
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`, or if the variable number exceeds
    /// [`crate::dimacs::MAX_VARS`] (it would wrap in the packed `u32`
    /// representation).
    pub fn from_dimacs(code: i64) -> Lit {
        assert!(code != 0, "DIMACS literal cannot be 0");
        let magnitude = code.unsigned_abs();
        assert!(
            magnitude <= crate::dimacs::MAX_VARS as u64,
            "DIMACS variable {magnitude} exceeds the supported maximum"
        );
        let var = Var(magnitude as u32 - 1);
        Lit::new(var, code > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

/// Three-valued assignment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let v = Var(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.index(), n.index());
    }

    #[test]
    fn new_with_sign() {
        let v = Var(3);
        assert_eq!(Lit::new(v, true), Lit::positive(v));
        assert_eq!(Lit::new(v, false), Lit::negative(v));
    }

    #[test]
    fn dimacs_roundtrip() {
        for code in [1i64, -1, 5, -17] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
        assert_eq!(Lit::positive(Var(0)).to_dimacs(), 1);
        assert_eq!(Lit::negative(Var(0)).to_dimacs(), -1);
    }

    #[test]
    #[should_panic(expected = "cannot be 0")]
    fn dimacs_zero_panics() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn index_roundtrip() {
        let l = Lit::negative(Var(12));
        assert_eq!(Lit::from_index(l.index()), l);
        assert_eq!(Var::from_index(5), Var(5));
    }
}
