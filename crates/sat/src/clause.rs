//! Clause arena storage.
//!
//! All clauses live in one flat `Vec<u32>`. A clause is addressed by the
//! offset of its header ([`ClauseRef`]) and laid out as:
//!
//! ```text
//! [len] [flags: learnt|deleted] [activity f32 bits] [lit 0] [lit 1] ...
//! ```
//!
//! Deletion marks the header; [`ClauseDb::compact`] rebuilds the arena and
//! returns the relocation map so the solver can fix watch lists and
//! reasons.

use crate::types::Lit;

const FLAG_LEARNT: u32 = 1;
const FLAG_DELETED: u32 = 2;
const HEADER_WORDS: usize = 3;

/// Reference to a clause in the arena (offset of its header word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// The clause arena.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    data: Vec<u32>,
    /// Live (non-deleted) clause count by class.
    pub(crate) num_original: usize,
    pub(crate) num_learnt: usize,
    /// Words wasted by deleted clauses (compaction trigger).
    pub(crate) wasted: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    /// Allocates a clause; caller guarantees `lits.len() >= 2`.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "arena clauses have at least 2 literals");
        let cref = ClauseRef(self.data.len() as u32);
        self.data.push(lits.len() as u32);
        self.data.push(if learnt { FLAG_LEARNT } else { 0 });
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.0));
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_original += 1;
        }
        cref
    }

    pub(crate) fn len(&self, c: ClauseRef) -> usize {
        self.data[c.0 as usize] as usize
    }

    pub(crate) fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.len(c));
        Lit(self.data[c.0 as usize + HEADER_WORDS + i])
    }

    pub(crate) fn set_lit(&mut self, c: ClauseRef, i: usize, l: Lit) {
        debug_assert!(i < self.len(c));
        self.data[c.0 as usize + HEADER_WORDS + i] = l.0;
    }

    pub(crate) fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c.0 as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    pub(crate) fn lits(&self, c: ClauseRef) -> &[u32] {
        let base = c.0 as usize;
        let len = self.data[base] as usize;
        &self.data[base + HEADER_WORDS..base + HEADER_WORDS + len]
    }

    pub(crate) fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize + 1] & FLAG_LEARNT != 0
    }

    pub(crate) fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize + 1] & FLAG_DELETED != 0
    }

    /// Marks a clause deleted (space reclaimed at the next [`compact`]).
    ///
    /// [`compact`]: ClauseDb::compact
    pub(crate) fn delete(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.data[c.0 as usize + 1] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.len(c);
        if self.is_learnt(c) {
            self.num_learnt -= 1;
        } else {
            self.num_original -= 1;
        }
    }

    pub(crate) fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c.0 as usize + 2])
    }

    pub(crate) fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c.0 as usize + 2] = a.to_bits();
    }

    /// Total arena words (for memory accounting).
    pub(crate) fn arena_words(&self) -> usize {
        self.data.len()
    }

    /// Iterates over all live clause refs.
    pub(crate) fn iter_refs(&self) -> ClauseIter<'_> {
        ClauseIter { db: self, pos: 0 }
    }

    /// Rebuilds the arena dropping deleted clauses. Calls `relocate` with
    /// `(old, new)` for every surviving clause so the solver can remap
    /// watches and reasons.
    pub(crate) fn compact(&mut self, mut relocate: impl FnMut(ClauseRef, ClauseRef)) {
        let mut new_data = Vec::with_capacity(self.data.len() - self.wasted);
        let mut pos = 0usize;
        while pos < self.data.len() {
            let len = self.data[pos] as usize;
            let total = HEADER_WORDS + len;
            let deleted = self.data[pos + 1] & FLAG_DELETED != 0;
            if !deleted {
                let new_ref = ClauseRef(new_data.len() as u32);
                new_data.extend_from_slice(&self.data[pos..pos + total]);
                relocate(ClauseRef(pos as u32), new_ref);
            }
            pos += total;
        }
        self.data = new_data;
        self.wasted = 0;
    }
}

pub(crate) struct ClauseIter<'a> {
    db: &'a ClauseDb,
    pos: usize,
}

impl Iterator for ClauseIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        while self.pos < self.db.data.len() {
            let cref = ClauseRef(self.pos as u32);
            let len = self.db.data[self.pos] as usize;
            self.pos += HEADER_WORDS + len;
            if !self.db.is_deleted(cref) {
                return Some(cref);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(codes: &[i64]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_dimacs(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, -2, 3]), false);
        let c2 = db.alloc(&lits(&[-1, 2]), true);
        assert_eq!(db.len(c1), 3);
        assert_eq!(db.len(c2), 2);
        assert_eq!(db.lit(c1, 1), Lit::negative(Var(1)));
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.num_original, 1);
        assert_eq!(db.num_learnt, 1);
    }

    #[test]
    fn swap_and_set() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2, 3]), false);
        db.swap_lits(c, 0, 2);
        assert_eq!(db.lit(c, 0).to_dimacs(), 3);
        assert_eq!(db.lit(c, 2).to_dimacs(), 1);
        db.set_lit(c, 1, Lit::from_dimacs(-5));
        assert_eq!(db.lit(c, 1).to_dimacs(), -5);
    }

    #[test]
    fn activity_storage() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2]), true);
        db.set_activity(c, 3.5);
        assert_eq!(db.activity(c), 3.5);
    }

    #[test]
    fn delete_and_compact_remaps() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, 2]), false);
        let c2 = db.alloc(&lits(&[3, 4, 5]), true);
        let c3 = db.alloc(&lits(&[-1, -2]), true);
        db.delete(c2);
        assert_eq!(db.num_learnt, 1);
        let mut map = std::collections::HashMap::new();
        db.compact(|old, new| {
            map.insert(old, new);
        });
        assert_eq!(map.len(), 2);
        let n1 = map[&c1];
        let n3 = map[&c3];
        assert_eq!(db.len(n1), 2);
        assert_eq!(db.lit(n3, 0).to_dimacs(), -1);
        assert_eq!(db.wasted, 0);
        // iteration sees exactly the survivors
        assert_eq!(db.iter_refs().count(), 2);
    }

    #[test]
    fn iter_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), false);
        let b = db.alloc(&lits(&[2, 3]), false);
        let c = db.alloc(&lits(&[3, 4]), false);
        db.delete(b);
        let seen: Vec<ClauseRef> = db.iter_refs().collect();
        assert_eq!(seen, vec![a, c]);
    }
}
