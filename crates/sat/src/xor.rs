//! Native XOR (parity) constraints and the in-solver GF(2) engine.
//!
//! A parity constraint `l1 ⊕ l2 ⊕ … ⊕ lk = rhs` compiled to CNF costs
//! `k - 1` auxiliary variables and `4(k - 1)` clauses, and — much worse —
//! forces the CDCL core to prove parity facts by *resolution*, which is
//! exponential in the number of chained constraints (the classic
//! Tseitin-formula lower bound). This module keeps parity linear end to
//! end instead, the way CryptoMiniSat does:
//!
//! * [`XorClause`] is the first-class constraint type; [`Constraint`] is
//!   the stream unit the encoder hands to [`Solver::add_constraint`].
//! * [`XorEngine`] stores the xor system as dense GF(2) rows
//!   ([`gf2::BitVec`] words — the same word-level row ops the rest of the
//!   repository uses) and keeps it in **reduced row-echelon form** by
//!   incremental Gauss–Jordan elimination: every constraint added between
//!   solves is substituted against the top-level trail, reduced against
//!   the existing pivots, and — if it survives — its fresh pivot column is
//!   eliminated from every other row. Inconsistent rows surface
//!   immediately as top-level UNSAT; singleton rows become top-level
//!   units.
//! * During search the engine propagates with **two watched columns** per
//!   row, interleaved with unit propagation: when a watched variable is
//!   assigned the row either rewatches an unassigned column, or has
//!   become unit (propagate the last column) or fully assigned (check
//!   parity, conflict on mismatch).
//! * Propagations and conflicts are handed back to CDCL as *materialized
//!   reason clauses* (lazy clause generation): the implied literal plus
//!   the negations of the row's assigned literals. Reasons live in the
//!   learnt-clause arena, so first-UIP analysis, recursive minimization,
//!   assumptions, restarts, and database reduction all work unchanged;
//!   conflict clauses are temporary and reclaimed right after analysis.
//!
//! Backtracking needs no undo hooks: row operations are linear
//! combinations (sound regardless of the assignment) and watches are
//! repaired lazily, exactly like clause watches.

use gf2::BitVec;

use crate::proof::ProofLogger;
use crate::types::{LBool, Lit, Var};

/// The solver's (possibly absent) proof sink, threaded through the engine
/// so add-time derivations (units by elimination, inconsistent rows) are
/// logged with their GF(2) provenance.
pub(crate) type ProofSink = Option<Box<dyn ProofLogger>>;

/// A native parity constraint: the XOR of `lits` must equal `rhs`.
///
/// A negated literal `¬x` contributes `x ⊕ 1`, so signs fold into the
/// right-hand side; [`XorClause::normalized`] computes the canonical
/// variables-and-parity form (sorted, duplicate pairs cancelled).
///
/// # Example
///
/// ```
/// use satsolver::{Lit, Solver, SolveResult, XorClause};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// let c = s.new_var();
/// // a ⊕ b ⊕ c = 1, and a = b: forces c = 1.
/// s.add_xor(&[Lit::positive(a), Lit::positive(b), Lit::positive(c)], true);
/// s.add_xor(&[Lit::positive(a), Lit::positive(b)], false);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(c), Some(true));
/// # let _ = XorClause::new(vec![Lit::positive(a)], true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XorClause {
    /// The XORed literals.
    pub lits: Vec<Lit>,
    /// The parity the XOR must equal.
    pub rhs: bool,
}

impl XorClause {
    /// A parity constraint `⊕ lits = rhs`.
    pub fn new(lits: impl Into<Vec<Lit>>, rhs: bool) -> XorClause {
        XorClause {
            lits: lits.into(),
            rhs,
        }
    }

    /// Canonical form: sorted unique variables and the folded parity.
    /// Negative literals flip the parity; a variable appearing twice
    /// cancels (x ⊕ x = 0).
    pub fn normalized(&self) -> (Vec<Var>, bool) {
        let mut rhs = self.rhs;
        let mut vars: Vec<Var> = Vec::with_capacity(self.lits.len());
        for l in &self.lits {
            if !l.is_positive() {
                rhs = !rhs;
            }
            vars.push(l.var());
        }
        vars.sort_unstable();
        let mut out: Vec<Var> = Vec::with_capacity(vars.len());
        for v in vars {
            if out.last() == Some(&v) {
                out.pop(); // pair cancels
            } else {
                out.push(v);
            }
        }
        (out, rhs)
    }

    /// The canonical [`XorClause`] equivalent to this one: positive
    /// literals over the normalized variables, parity in `rhs`.
    pub fn canonical(&self) -> XorClause {
        let (vars, rhs) = self.normalized();
        XorClause {
            lits: vars.into_iter().map(Lit::positive).collect(),
            rhs,
        }
    }

    /// Whether `assignment` (indexed by variable) satisfies the
    /// constraint.
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable is out of range.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let mut acc = false;
        for l in &self.lits {
            acc ^= assignment[l.var().index()] == l.is_positive();
        }
        acc == self.rhs
    }
}

/// One element of the encoder → solver constraint stream: a disjunctive
/// clause or a native parity constraint.
///
/// Solvers consume constraints through [`Solver::add_constraint`]; this is
/// the interface that lets an encoder keep XOR structure linear instead of
/// Tseitin-shredding it.
///
/// [`Solver::add_constraint`]: crate::Solver::add_constraint
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// A disjunction of literals.
    Clause(Vec<Lit>),
    /// A parity constraint.
    Xor(XorClause),
}

/// Column index sentinel: "no column".
const NONE: u32 = u32::MAX;

/// One stored row: `bits · x = rhs` over the engine's column space.
#[derive(Debug)]
struct XorRow {
    /// Coefficients, one bit per column (width kept uniform across rows).
    bits: BitVec,
    /// Right-hand parity.
    rhs: bool,
    /// The two watched columns (both set in `bits`, distinct).
    watch: [u32; 2],
    /// The row's pivot column (unique to this row in RREF).
    pivot: u32,
    /// Dead rows (eliminated to units/tautologies) are skipped lazily.
    alive: bool,
    /// Derivation provenance: the set of input xor constraints (ids in add
    /// order) whose GF(2) sum, after substituting `units`, equals this
    /// row. Maintained by symmetric difference under every row operation,
    /// so `fold(origin) ⊕ fold(units) = (bits, rhs)` is an invariant.
    origin: Vec<u32>,
    /// Top-level unit literals substituted into this row (each `l` stands
    /// for the singleton constraint `var(l) = polarity(l)`).
    units: Vec<Lit>,
}

/// A propagation discovered by the engine: `lit` is implied by row `row`
/// under the current assignment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct XorImplication {
    pub(crate) lit: Lit,
    pub(crate) row: u32,
}

/// The in-solver xor store and GF(2) propagation engine.
#[derive(Debug, Default)]
pub(crate) struct XorEngine {
    rows: Vec<XorRow>,
    /// Column → solver variable index.
    col_var: Vec<u32>,
    /// Variable index → column ([`NONE`] if the variable is in no xor).
    var_col: Vec<u32>,
    /// Column → row owning it as pivot ([`NONE`] if free).
    pivot_row: Vec<u32>,
    /// Column → rows watching it.
    watchers: Vec<Vec<u32>>,
    /// Uniform `bits` width of every live row (`>= col_var.len()`).
    width: usize,
    /// Live row count.
    num_live: usize,
    /// Input xor constraints seen so far (the next constraint's proof id).
    next_input_id: u32,
}

impl XorEngine {
    /// Number of live xor rows.
    pub(crate) fn num_rows(&self) -> usize {
        self.num_live
    }

    /// Whether `var` participates in any xor row (cheap propagation gate).
    pub(crate) fn involves(&self, var: usize) -> bool {
        self.var_col.get(var).is_some_and(|&c| c != NONE)
    }

    /// The column for `var`, creating one if needed.
    fn col_for(&mut self, var: Var) -> usize {
        let v = var.index();
        if self.var_col.len() <= v {
            self.var_col.resize(v + 1, NONE);
        }
        if self.var_col[v] == NONE {
            let col = self.col_var.len();
            self.var_col[v] = col as u32;
            self.col_var.push(v as u32);
            self.pivot_row.push(NONE);
            self.watchers.push(Vec::new());
            if col >= self.width {
                self.grow_width((col + 1).next_power_of_two().max(64));
            }
        }
        self.var_col[v] as usize
    }

    /// Widens every live row's `bits` to `new_width` columns.
    fn grow_width(&mut self, new_width: usize) {
        for row in self.rows.iter_mut().filter(|r| r.alive) {
            row.bits = row.bits.resized(new_width);
        }
        self.width = new_width;
    }

    /// Current value of the variable behind column `col`.
    fn col_value(&self, col: usize, assigns: &[LBool]) -> LBool {
        assigns[self.col_var[col] as usize]
    }

    /// Adds `⊕ vars = rhs` (already normalized) at decision level 0.
    ///
    /// Substitutes top-level assignments, reduces against the existing
    /// pivots (incremental Gauss–Jordan), and installs the surviving row,
    /// eliminating its pivot column from every other row. Implied
    /// top-level units are pushed to `units` for the caller to enqueue.
    /// Returns `false` if the xor system became inconsistent.
    pub(crate) fn add(
        &mut self,
        vars: &[Var],
        rhs: bool,
        assigns: &[LBool],
        units: &mut Vec<Lit>,
        proof: &mut ProofSink,
    ) -> bool {
        let id = self.next_input_id;
        self.next_input_id += 1;
        let mut origin = vec![id];
        let mut umeta: Vec<Lit> = Vec::new();

        // Substitute fixed variables, map the rest onto columns.
        let mut rhs = rhs;
        let mut cols: Vec<usize> = Vec::with_capacity(vars.len());
        for &v in vars {
            match assigns[v.index()] {
                LBool::True => {
                    rhs = !rhs;
                    umeta.push(Lit::positive(v));
                }
                LBool::False => umeta.push(Lit::negative(v)),
                LBool::Undef => cols.push(self.col_for(v)),
            }
        }
        umeta.sort_unstable();
        if self.width == 0 {
            // Every variable was substituted (and `col_for` grows the
            // width before the first real column): constant constraint.
            debug_assert!(cols.is_empty());
            if rhs {
                log_xor(proof, &[], &origin, &umeta);
            }
            return !rhs;
        }
        let mut bits = BitVec::zeros(self.width);
        for &c in &cols {
            bits.flip(c);
        }

        // Reduce against existing pivots. Pivot rows contain no *other*
        // pivot column (RREF), so a single ascending scan terminates.
        let mut scan = 0usize;
        while let Some(c) = first_one_from(&bits, scan) {
            let owner = self.pivot_row[c];
            if owner == NONE {
                scan = c + 1;
                continue;
            }
            let row = &self.rows[owner as usize];
            xor_into(&mut bits, &row.bits);
            rhs ^= row.rhs;
            sym_diff(&mut origin, &row.origin);
            sym_diff(&mut umeta, &row.units);
            scan = c + 1;
        }

        self.install(bits, rhs, origin, umeta, assigns, units, proof)
    }

    /// Installs a pivot-reduced row: registers its pivot, eliminates that
    /// column from every other live row, and sets up watches. Returns
    /// `false` on inconsistency.
    #[allow(clippy::too_many_arguments)] // internal seam; the tuple halves travel together
    fn install(
        &mut self,
        bits: BitVec,
        rhs: bool,
        origin: Vec<u32>,
        umeta: Vec<Lit>,
        assigns: &[LBool],
        units: &mut Vec<Lit>,
        proof: &mut ProofSink,
    ) -> bool {
        let Some(pivot) = bits.first_one() else {
            if rhs {
                log_xor(proof, &[], &origin, &umeta);
            }
            return !rhs;
        };
        if only_one(&bits) {
            // Singleton: a top-level unit, not a stored row.
            let unit = Lit::new(Var::from_index(self.col_var[pivot] as usize), rhs);
            log_xor(proof, &[unit], &origin, &umeta);
            units.push(unit);
            return true;
        }

        // Gauss–Jordan: clear the new pivot column from every other row.
        let mut touched: Vec<u32> = Vec::new();
        for ri in 0..self.rows.len() {
            if !self.rows[ri].alive || !self.rows[ri].bits.get(pivot) {
                continue;
            }
            let row = &mut self.rows[ri];
            xor_into_unsized(&mut row.bits, &bits);
            row.rhs ^= rhs;
            sym_diff(&mut row.origin, &origin);
            sym_diff(&mut row.units, &umeta);
            touched.push(ri as u32);
        }
        let mut ok = true;
        for &ri in &touched {
            ok &= self.repair_row(ri as usize, assigns, units, proof);
        }
        if !ok {
            return false;
        }

        let idx = self.rows.len();
        self.pivot_row[pivot] = idx as u32;
        self.rows.push(XorRow {
            bits,
            rhs,
            watch: [NONE, NONE],
            pivot: pivot as u32,
            alive: true,
            origin,
            units: umeta,
        });
        self.num_live += 1;
        self.attach_watches(idx, assigns, units, proof)
    }

    /// Re-examines a row whose bits just changed at level 0: it may have
    /// degenerated to empty (tautology or inconsistency), to a unit, or
    /// lost a watched column. Returns `false` on inconsistency.
    fn repair_row(
        &mut self,
        ri: usize,
        assigns: &[LBool],
        units: &mut Vec<Lit>,
        proof: &mut ProofSink,
    ) -> bool {
        if self.rows[ri].bits.is_zero() {
            let rhs = self.rows[ri].rhs;
            if rhs {
                log_xor(proof, &[], &self.rows[ri].origin, &self.rows[ri].units);
            }
            self.kill_row(ri);
            return !rhs;
        }
        self.unwatch_row(ri);
        self.attach_watches(ri, assigns, units, proof)
    }

    /// Drops both watcher-list registrations of row `ri`.
    fn unwatch_row(&mut self, ri: usize) {
        let watch = self.rows[ri].watch;
        self.rows[ri].watch = [NONE, NONE];
        for w in watch {
            if w == NONE {
                continue;
            }
            if let Some(pos) = self.watchers[w as usize]
                .iter()
                .position(|&r| r == ri as u32)
            {
                self.watchers[w as usize].swap_remove(pos);
            }
        }
    }

    /// Installs watches on two unassigned columns of live row `ri` (which
    /// must currently have no registered watches). If fewer than two
    /// columns are unassigned the row is resolved on the spot — unit
    /// (pushed to `units`), satisfied, or inconsistent (returns `false`) —
    /// and retired. Watching only unassigned columns is what keeps search
    /// propagation complete: a watch on an already-assigned variable never
    /// fires again.
    fn attach_watches(
        &mut self,
        ri: usize,
        assigns: &[LBool],
        units: &mut Vec<Lit>,
        proof: &mut ProofSink,
    ) -> bool {
        let mut unassigned = [NONE; 2];
        let mut count = 0;
        for c in self.rows[ri].bits.iter_ones() {
            if self.col_value(c, assigns) == LBool::Undef {
                unassigned[count] = c as u32;
                count += 1;
                if count == 2 {
                    break;
                }
            }
        }
        match count {
            2 => {
                self.rows[ri].watch = unassigned;
                for w in unassigned {
                    self.watchers[w as usize].push(ri as u32);
                }
                true
            }
            1 => {
                // Unit under the level-0 assignment.
                let target = unassigned[0] as usize;
                let rhs = self.row_residual(ri, target, assigns);
                let unit = Lit::new(Var::from_index(self.col_var[target] as usize), rhs);
                if proof.is_some() {
                    let meta = self.substituted_meta(ri, Some(target), assigns);
                    log_xor(proof, &[unit], &self.rows[ri].origin, &meta);
                }
                units.push(unit);
                self.kill_row(ri);
                true
            }
            _ => {
                // Fully assigned at level 0: satisfied or inconsistent.
                let mut acc = self.rows[ri].rhs;
                for c in self.rows[ri].bits.iter_ones() {
                    acc ^= self.col_value(c, assigns) == LBool::True;
                }
                if acc && proof.is_some() {
                    let meta = self.substituted_meta(ri, None, assigns);
                    log_xor(proof, &[], &self.rows[ri].origin, &meta);
                }
                self.kill_row(ri);
                !acc
            }
        }
    }

    /// The unit-substitution metadata of row `ri` after additionally
    /// substituting every assigned column except `skip`: the row's stored
    /// `units` xored with the trail literal of each assigned column. With
    /// these substitutions the row degenerates to the unit over `skip` (or
    /// to a constant), which is exactly what the proof step asserts.
    fn substituted_meta(&self, ri: usize, skip: Option<usize>, assigns: &[LBool]) -> Vec<Lit> {
        let row = &self.rows[ri];
        let mut meta = row.units.clone();
        let mut extra: Vec<Lit> = Vec::new();
        for c in row.bits.iter_ones() {
            if Some(c) == skip {
                continue;
            }
            let v = Var::from_index(self.col_var[c] as usize);
            match assigns[v.index()] {
                LBool::True => extra.push(Lit::positive(v)),
                LBool::False => extra.push(Lit::negative(v)),
                LBool::Undef => {}
            }
        }
        extra.sort_unstable();
        sym_diff(&mut meta, &extra);
        meta
    }

    /// Derivation provenance of row `ri` for proof logging: the input xor
    /// ids whose sum, after substituting the returned unit literals,
    /// equals the row.
    pub(crate) fn row_meta(&self, ri: u32) -> (&[u32], &[Lit]) {
        let row = &self.rows[ri as usize];
        (&row.origin, &row.units)
    }

    /// The parity forced on column `skip` by the rest of row `ri` under
    /// the current assignment (all other columns must be assigned).
    fn row_residual(&self, ri: usize, skip: usize, assigns: &[LBool]) -> bool {
        let row = &self.rows[ri];
        let mut acc = row.rhs;
        for c in row.bits.iter_ones() {
            if c != skip {
                acc ^= self.col_value(c, assigns) == LBool::True;
            }
        }
        acc
    }

    /// Marks a row dead and releases its pivot and watch entries.
    fn kill_row(&mut self, ri: usize) {
        let row = &mut self.rows[ri];
        if !row.alive {
            return;
        }
        row.alive = false;
        let pivot = row.pivot;
        let watch = row.watch;
        if pivot != NONE && self.pivot_row[pivot as usize] == ri as u32 {
            self.pivot_row[pivot as usize] = NONE;
        }
        for w in watch {
            if w == NONE {
                continue;
            }
            if let Some(pos) = self.watchers[w as usize]
                .iter()
                .position(|&r| r == ri as u32)
            {
                self.watchers[w as usize].swap_remove(pos);
            }
        }
        self.num_live -= 1;
    }

    /// Search-time hook: variable `v` was just assigned. Visits every row
    /// watching it; rows rewatch an unassigned column when one exists,
    /// otherwise they propagate their last column or report a conflict.
    /// Implications are appended to `out`; the first conflicting row index
    /// is returned (remaining watchers stay intact).
    pub(crate) fn on_assign(
        &mut self,
        v: usize,
        assigns: &[LBool],
        out: &mut Vec<XorImplication>,
    ) -> Option<u32> {
        let col = match self.var_col.get(v) {
            Some(&c) if c != NONE => c as usize,
            _ => return None,
        };
        let list = std::mem::take(&mut self.watchers[col]);
        let mut kept: Vec<u32> = Vec::with_capacity(list.len());
        let mut conflict = None;
        let mut i = 0;
        while i < list.len() {
            let ri = list[i];
            i += 1;
            if !self.rows[ri as usize].alive {
                continue; // drop stale entry
            }
            let watch = self.rows[ri as usize].watch;
            let slot = if watch[0] == col as u32 {
                0
            } else if watch[1] == col as u32 {
                1
            } else {
                continue; // stale entry for a moved watch
            };
            let other = watch[1 - slot];

            // Try to rewatch an unassigned column.
            let mut replacement = None;
            for c in self.rows[ri as usize].bits.iter_ones() {
                if c == col || c as u32 == other {
                    continue;
                }
                if self.col_value(c, assigns) == LBool::Undef {
                    replacement = Some(c);
                    break;
                }
            }
            if let Some(c) = replacement {
                self.rows[ri as usize].watch[slot] = c as u32;
                self.watchers[c].push(ri);
                continue;
            }

            // No replacement: every column but `other` is assigned.
            kept.push(ri);
            let rhs = self.row_residual(ri as usize, other as usize, assigns);
            let ov = self.col_var[other as usize] as usize;
            match assigns[ov] {
                LBool::Undef => out.push(XorImplication {
                    lit: Lit::new(Var::from_index(ov), rhs),
                    row: ri,
                }),
                val => {
                    if (val == LBool::True) != rhs {
                        conflict = Some(ri);
                        kept.extend_from_slice(&list[i..]);
                        break;
                    }
                }
            }
        }
        // Watchers processed after a conflict (or that kept their watch)
        // stay registered on this column.
        self.watchers[col].extend_from_slice(&kept);
        conflict
    }

    /// Pushes the falsified literal of every assigned column of row `ri`
    /// (skipping `skip_var`, the implied variable, when given). This is
    /// the clause-shaped reason CDCL analysis consumes.
    pub(crate) fn reason_lits(
        &self,
        ri: u32,
        skip_var: Option<Var>,
        assigns: &[LBool],
        out: &mut Vec<Lit>,
    ) {
        let row = &self.rows[ri as usize];
        let skip = skip_var.map(super::types::Var::index);
        for c in row.bits.iter_ones() {
            let v = self.col_var[c] as usize;
            if Some(v) == skip {
                continue;
            }
            // The literal currently false: the negation of the assignment.
            debug_assert_ne!(assigns[v], LBool::Undef);
            out.push(Lit::new(Var::from_index(v), assigns[v] == LBool::False));
        }
    }

    /// Structural invariant check: the matrix is in RREF, pivot maps are
    /// inverse, watches are registered, and the column maps are bijective.
    /// Violations are appended to `errors` as human-readable strings.
    pub(crate) fn audit(&self, errors: &mut Vec<String>) {
        let mut err = |msg: String| errors.push(format!("xor: {msg}"));
        // Column maps are inverse bijections.
        for (c, &v) in self.col_var.iter().enumerate() {
            if self.var_col.get(v as usize).copied() != Some(c as u32) {
                err(format!("col {c} maps to var {v} but not back"));
            }
        }
        for (v, &c) in self.var_col.iter().enumerate() {
            if c != NONE && self.col_var.get(c as usize).copied() != Some(v as u32) {
                err(format!("var {v} maps to col {c} but not back"));
            }
        }
        if self.width < self.col_var.len() {
            err(format!(
                "width {} < {} columns",
                self.width,
                self.col_var.len()
            ));
        }
        // Rows: alive count, pivot ownership, RREF shape, watch registration.
        let live = self.rows.iter().filter(|r| r.alive).count();
        if live != self.num_live {
            err(format!(
                "num_live {} but {} alive rows",
                self.num_live, live
            ));
        }
        for (ri, row) in self.rows.iter().enumerate() {
            if !row.alive {
                continue;
            }
            if row.bits.is_zero() {
                err(format!("live row {ri} is empty"));
                continue;
            }
            let pivot = row.pivot as usize;
            if !row.bits.get(pivot) {
                err(format!("row {ri} pivot col {pivot} not set in its bits"));
            }
            if self.pivot_row.get(pivot).copied() != Some(ri as u32) {
                err(format!("row {ri} does not own its pivot col {pivot}"));
            }
            // RREF: no other live row contains this row's pivot column.
            for (rj, other) in self.rows.iter().enumerate() {
                if rj != ri && other.alive && other.bits.get(pivot) {
                    err(format!("row {rj} contains row {ri}'s pivot col {pivot}"));
                }
            }
            for w in row.watch {
                if w == NONE {
                    err(format!("live row {ri} has an unset watch"));
                    continue;
                }
                if !row.bits.get(w as usize) {
                    err(format!("row {ri} watches col {w} not in its bits"));
                }
                if !self.watchers[w as usize].contains(&(ri as u32)) {
                    err(format!("row {ri} not registered on watched col {w}"));
                }
            }
            if row.watch[0] == row.watch[1] {
                err(format!("row {ri} watches the same column twice"));
            }
        }
        // Watcher lists may hold stale entries (dead rows, moved watches) —
        // that is the lazy-repair contract — but never out-of-range ones.
        for (c, list) in self.watchers.iter().enumerate() {
            for &ri in list {
                if ri as usize >= self.rows.len() {
                    err(format!("watcher list for col {c} has bogus row {ri}"));
                }
            }
        }
    }

    /// Snapshots the live rows as [`XorClause`]s (positive literals over
    /// each row's columns). The rows are the RREF of everything added — an
    /// equivalent, not textually identical, system.
    pub(crate) fn export(&self) -> Vec<XorClause> {
        self.rows
            .iter()
            .filter(|r| r.alive)
            .map(|r| XorClause {
                lits: r
                    .bits
                    .iter_ones()
                    .map(|c| Lit::positive(Var::from_index(self.col_var[c] as usize)))
                    .collect(),
                rhs: r.rhs,
            })
            .collect()
    }
}

/// `dst ^= src` where `src.len() <= dst.len()` (word-level; relies on the
/// [`BitVec`] tail invariant).
fn xor_into(dst: &mut BitVec, src: &BitVec) {
    debug_assert!(src.len() <= dst.len());
    for (d, s) in dst.as_words_mut().iter_mut().zip(src.as_words()) {
        *d ^= s;
    }
}

/// `dst ^= src`, resizing `dst` up first if `src` is wider.
fn xor_into_unsized(dst: &mut BitVec, src: &BitVec) {
    if dst.len() < src.len() {
        *dst = dst.resized(src.len());
    }
    xor_into(dst, src);
}

/// Index of the lowest set bit at or above `from`.
fn first_one_from(bits: &BitVec, from: usize) -> Option<usize> {
    bits.iter_ones().find(|&c| c >= from)
}

/// Whether exactly one bit is set.
fn only_one(bits: &BitVec) -> bool {
    bits.count_ones() == 1
}

/// Symmetric difference of two sorted deduplicated vectors, in place.
/// This is the metadata mirror of a GF(2) row xor: elements present in
/// both sides cancel.
fn sym_diff<T: Ord + Copy>(dst: &mut Vec<T>, src: &[T]) {
    if src.is_empty() {
        return;
    }
    let old = std::mem::take(dst);
    dst.reserve(old.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < src.len() {
        match (old.get(i), src.get(j)) {
            (Some(a), Some(b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                dst.push(*a);
                i += 1;
            }
            (Some(_), Some(b)) => {
                dst.push(*b);
                j += 1;
            }
            (Some(a), None) => {
                dst.push(*a);
                i += 1;
            }
            (None, Some(b)) => {
                dst.push(*b);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// Emits an xor-derived proof step if a logger is installed.
fn log_xor(proof: &mut ProofSink, lits: &[Lit], origin: &[u32], units: &[Lit]) {
    if let Some(p) = proof.as_mut() {
        p.add_xor_derived(lits, origin, units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[i64]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_dimacs(c)).collect()
    }

    #[test]
    fn normalization_folds_signs_and_pairs() {
        // ¬x1 ⊕ x2 ⊕ x1 ⊕ x2 ⊕ x3 = 1  ⇒  x3 = 0 (one sign flip).
        let xc = XorClause::new(lits(&[-1, 2, 1, 2, 3]), true);
        let (vars, rhs) = xc.normalized();
        assert_eq!(vars, vec![Var::from_index(2)]);
        assert!(!rhs);
        let canon = xc.canonical();
        assert_eq!(canon.lits, lits(&[3]));
        assert!(!canon.rhs);
    }

    #[test]
    fn normalization_cancels_triples_to_one() {
        let xc = XorClause::new(lits(&[1, 1, 1]), true);
        let (vars, rhs) = xc.normalized();
        assert_eq!(vars, vec![Var::from_index(0)]);
        assert!(rhs);
    }

    #[test]
    fn eval_checks_parity() {
        let xc = XorClause::new(lits(&[1, -2]), true);
        // x1 ⊕ ¬x2 = 1  ⇔  x1 = x2.
        assert!(xc.eval(&[true, true]));
        assert!(xc.eval(&[false, false]));
        assert!(!xc.eval(&[true, false]));
    }

    #[test]
    fn engine_reduces_duplicate_rows_to_nothing() {
        let mut eng = XorEngine::default();
        let assigns = vec![LBool::Undef; 4];
        let mut units = Vec::new();
        let mut proof: ProofSink = None;
        let vars: Vec<Var> = (0..3).map(Var::from_index).collect();
        assert!(eng.add(&vars, true, &assigns, &mut units, &mut proof));
        assert_eq!(eng.num_rows(), 1);
        // The same row again is redundant.
        assert!(eng.add(&vars, true, &assigns, &mut units, &mut proof));
        assert_eq!(eng.num_rows(), 1);
        assert!(units.is_empty());
        // The same row with flipped parity is inconsistent.
        assert!(!eng.add(&vars, false, &assigns, &mut units, &mut proof));
    }

    #[test]
    fn engine_derives_units_by_elimination() {
        // x0 ⊕ x1 = 1 and x0 ⊕ x1 ⊕ x2 = 1 force x2 = 0 by row reduction.
        let mut eng = XorEngine::default();
        let assigns = vec![LBool::Undef; 4];
        let mut units = Vec::new();
        let mut proof: ProofSink = None;
        let v: Vec<Var> = (0..3).map(Var::from_index).collect();
        assert!(eng.add(&[v[0], v[1]], true, &assigns, &mut units, &mut proof));
        assert!(eng.add(&[v[0], v[1], v[2]], true, &assigns, &mut units, &mut proof));
        assert_eq!(units, vec![Lit::negative(v[2])]);
        assert_eq!(eng.num_rows(), 1, "the combined row dies into the unit");
    }

    #[test]
    fn export_is_an_equivalent_system() {
        let mut eng = XorEngine::default();
        let assigns = vec![LBool::Undef; 8];
        let mut units = Vec::new();
        let mut proof: ProofSink = None;
        let v: Vec<Var> = (0..4).map(Var::from_index).collect();
        eng.add(&[v[0], v[1], v[2]], true, &assigns, &mut units, &mut proof);
        eng.add(&[v[1], v[2], v[3]], false, &assigns, &mut units, &mut proof);
        let rows = eng.export();
        assert_eq!(rows.len(), 2);
        // Brute-force: the exported system has the same solution set.
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let original = (a[0] ^ a[1] ^ a[2]) && !(a[1] ^ a[2] ^ a[3]);
            let exported = rows.iter().all(|r| r.eval(&a));
            assert_eq!(original, exported, "assignment {a:?}");
        }
    }
}
