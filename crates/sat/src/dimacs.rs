//! DIMACS CNF reading and writing.
//!
//! The standard interchange format for SAT instances: a `p cnf <vars>
//! <clauses>` header followed by whitespace-separated literal lists, each
//! clause terminated by `0`. Comment lines start with `c`; a trailing `%`
//! section (as emitted by some SATLIB generators) is tolerated.
//!
//! The CryptoMiniSat **`x`-line XOR extension** is supported: a line
//! starting with `x` declares a parity constraint — `x1 2 -3 0` means
//! `x1 ⊕ x2 ⊕ ¬x3 = 1` (the XOR of the listed literals is *true*; a
//! negated literal flips the effective right-hand side). X-lines count
//! toward the header's clause total, matching CryptoMiniSat. This lets
//! native-xor instances be dumped and diffed with external solvers.
//!
//! # Example
//!
//! ```
//! use satsolver::dimacs::Cnf;
//! use satsolver::SolveResult;
//!
//! let cnf = Cnf::parse("p cnf 3 2\n1 2 0\nx1 2 -3 0\n").unwrap();
//! assert_eq!(cnf.xors.len(), 1);
//! let (mut solver, vars) = cnf.to_solver();
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(Cnf::parse(&cnf.to_dimacs()).unwrap(), cnf);
//! # let _ = vars;
//! ```

use std::fmt;

use crate::types::{Lit, Var};
use crate::xor::XorClause;
use crate::Solver;

/// Largest variable count a formula may declare: literals pack the
/// variable index and sign into one `u32` (`var << 1 | negated`), so
/// DIMACS variable numbers above `2^31` would silently wrap.
pub const MAX_VARS: usize = (u32::MAX >> 1) as usize + 1;

/// A CNF formula held as plain clause lists, plus native xor constraints
/// (the CryptoMiniSat `x`-line extension).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`); may exceed the highest
    /// variable that actually occurs.
    pub num_vars: usize,
    /// The clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
    /// Native parity constraints, written/read as `x`-lines.
    pub xors: Vec<XorClause>,
}

impl Cnf {
    /// An empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
            xors: Vec::new(),
        }
    }

    /// Appends a clause, growing `num_vars` to cover its literals.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        let lits = lits.into();
        for l in &lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(lits);
    }

    /// Appends a parity constraint `⊕ lits = rhs`, growing `num_vars` to
    /// cover its literals. A trivially-true empty constraint (`⊕ ∅ = 0`)
    /// is dropped, because the `x`-line format has no spelling for it; an
    /// empty constraint with `rhs = true` is kept (it renders as `x 0`,
    /// an unsatisfiable line).
    pub fn add_xor(&mut self, lits: impl Into<Vec<Lit>>, rhs: bool) {
        let lits = lits.into();
        if lits.is_empty() && !rhs {
            return;
        }
        for l in &lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.xors.push(XorClause { lits, rhs });
    }

    /// Whether `assignment` (indexed by variable) satisfies every clause
    /// and every xor constraint.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        }) && self.xors.iter().all(|x| x.eval(assignment))
    }

    /// Parses DIMACS CNF text, including `x`-lines (see the module docs).
    ///
    /// The header is required. Fewer clauses than the header promises is an
    /// error; extra clauses are an error too (x-lines count toward the
    /// total). Literals must stay within the declared variable count. An
    /// `x` prefix opens a parity constraint — attached (`x1 2 0`) or
    /// standalone (`x 1 2 0`) — which may continue across lines like an
    /// ordinary clause.
    ///
    /// # Errors
    ///
    /// Returns the first [`DimacsError`] encountered.
    pub fn parse(input: &str) -> Result<Cnf, DimacsError> {
        let mut header: Option<(usize, usize)> = None;
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        let mut in_xor = false;
        let mut done = false;

        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('%') {
                done = true; // SATLIB end-of-file marker
                continue;
            }
            if done {
                // Tolerate the conventional lone "0" after the '%' marker.
                if line == "0" {
                    continue;
                }
                return Err(DimacsError::TrailingContent { line: lineno + 1 });
            }
            if let Some(rest) = line.strip_prefix('p') {
                if header.is_some() {
                    return Err(DimacsError::DuplicateHeader { line: lineno + 1 });
                }
                let fields: Vec<&str> = rest.split_whitespace().collect();
                let parsed = match fields.as_slice() {
                    ["cnf", v, c] => v.parse::<usize>().ok().zip(c.parse::<usize>().ok()),
                    _ => None,
                };
                match parsed {
                    Some((v, _)) if v > MAX_VARS => {
                        return Err(DimacsError::TooManyVariables {
                            line: lineno + 1,
                            vars: v,
                        });
                    }
                    Some((v, c)) => header = Some((v, c)),
                    None => return Err(DimacsError::BadHeader { line: lineno + 1 }),
                }
                cnf.num_vars = header.expect("just set").0;
                continue;
            }
            let Some((num_vars, num_clauses)) = header else {
                return Err(DimacsError::MissingHeader { line: lineno + 1 });
            };
            for tok in line.split_whitespace() {
                let mut tok = tok;
                // An 'x' prefix at the start of a constraint opens an
                // xor clause; `x1` carries the first literal attached.
                if !in_xor && current.is_empty() {
                    if let Some(rest) = tok.strip_prefix('x') {
                        in_xor = true;
                        if rest.is_empty() {
                            continue;
                        }
                        tok = rest;
                    }
                }
                let code: i64 = tok.parse().map_err(|_| DimacsError::BadLiteral {
                    line: lineno + 1,
                    token: tok.to_string(),
                })?;
                if code == 0 {
                    if cnf.clauses.len() + cnf.xors.len() == num_clauses {
                        return Err(DimacsError::TooManyClauses { line: lineno + 1 });
                    }
                    if in_xor {
                        // An x-line asserts XOR(listed literals) = true.
                        cnf.xors.push(XorClause {
                            lits: std::mem::take(&mut current),
                            rhs: true,
                        });
                        in_xor = false;
                    } else {
                        cnf.clauses.push(std::mem::take(&mut current));
                    }
                } else {
                    let var = code.unsigned_abs() as usize;
                    if var > num_vars {
                        return Err(DimacsError::VariableOutOfRange {
                            line: lineno + 1,
                            var,
                            num_vars,
                        });
                    }
                    current.push(Lit::from_dimacs(code));
                }
            }
        }

        let (_, num_clauses) = header.ok_or(DimacsError::MissingHeader { line: 1 })?;
        if !current.is_empty() || in_xor {
            return Err(DimacsError::UnterminatedClause);
        }
        if cnf.clauses.len() + cnf.xors.len() != num_clauses {
            return Err(DimacsError::ClauseCountMismatch {
                declared: num_clauses,
                found: cnf.clauses.len() + cnf.xors.len(),
            });
        }
        Ok(cnf)
    }

    /// Renders the formula as DIMACS CNF text (inverse of [`Cnf::parse`]).
    ///
    /// Xor constraints become `x`-lines. The format asserts the XOR of the
    /// listed literals is *true*, so a constraint with `rhs = false` is
    /// written with its first literal's sign flipped — logically identical,
    /// though re-parsing yields the sign-folded spelling (compare with
    /// [`XorClause::canonical`] when a structural round-trip is needed).
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "p cnf {} {}\n",
            self.num_vars,
            self.clauses.len() + self.xors.len()
        ));
        for c in &self.clauses {
            for l in c {
                out.push_str(&format!("{} ", l.to_dimacs()));
            }
            out.push_str("0\n");
        }
        for x in &self.xors {
            out.push('x');
            for (i, l) in x.lits.iter().enumerate() {
                let flip = i == 0 && !x.rhs;
                let code = if flip { -l.to_dimacs() } else { l.to_dimacs() };
                out.push_str(&format!("{code} "));
            }
            if x.lits.is_empty() {
                // `⊕ ∅ = 1`: an unsatisfiable empty x-line (`add_xor`
                // drops the trivially-true case, which has no spelling).
                debug_assert!(x.rhs);
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Builds a fresh [`Solver`] loaded with this formula — clauses plus
    /// native xor constraints. Returns the solver and the [`Var`] handles,
    /// where `vars[i]` is DIMACS variable `i + 1`.
    pub fn to_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| s.new_var()).collect();
        for c in &self.clauses {
            s.add_clause(c);
        }
        for x in &self.xors {
            s.add_xor(&x.lits, x.rhs);
        }
        (s, vars)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dimacs())
    }
}

/// Errors produced by [`Cnf::parse`]. Line numbers are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DimacsError {
    /// Clause data appeared before any `p cnf` header.
    MissingHeader {
        /// Offending line.
        line: usize,
    },
    /// A second `p` line appeared.
    DuplicateHeader {
        /// Offending line.
        line: usize,
    },
    /// A `p` line that is not `p cnf <vars> <clauses>`.
    BadHeader {
        /// Offending line.
        line: usize,
    },
    /// A token that is not an integer literal.
    BadLiteral {
        /// Offending line.
        line: usize,
        /// The unparsable token.
        token: String,
    },
    /// The header declares more variables than the packed literal
    /// representation supports ([`MAX_VARS`]).
    TooManyVariables {
        /// Offending line.
        line: usize,
        /// The header's variable count.
        vars: usize,
    },
    /// A literal references a variable above the header's count.
    VariableOutOfRange {
        /// Offending line.
        line: usize,
        /// The out-of-range (1-based) variable.
        var: usize,
        /// The header's variable count.
        num_vars: usize,
    },
    /// More clauses than the header declared.
    TooManyClauses {
        /// Offending line.
        line: usize,
    },
    /// Fewer clauses than the header declared.
    ClauseCountMismatch {
        /// Clause count from the header.
        declared: usize,
        /// Clauses actually read.
        found: usize,
    },
    /// The file ended inside a clause (missing terminating `0`).
    UnterminatedClause,
    /// Non-comment content after the `%` end marker.
    TrailingContent {
        /// Offending line.
        line: usize,
    },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::MissingHeader { line } => {
                write!(f, "line {line}: clause data before 'p cnf' header")
            }
            DimacsError::DuplicateHeader { line } => {
                write!(f, "line {line}: duplicate 'p' header")
            }
            DimacsError::BadHeader { line } => {
                write!(
                    f,
                    "line {line}: malformed header (expected 'p cnf <vars> <clauses>')"
                )
            }
            DimacsError::BadLiteral { line, token } => {
                write!(f, "line {line}: bad literal token {token:?}")
            }
            DimacsError::TooManyVariables { line, vars } => {
                write!(
                    f,
                    "line {line}: header declares {vars} variables, more than the supported {MAX_VARS}"
                )
            }
            DimacsError::VariableOutOfRange {
                line,
                var,
                num_vars,
            } => {
                write!(
                    f,
                    "line {line}: variable {var} exceeds declared count {num_vars}"
                )
            }
            DimacsError::TooManyClauses { line } => {
                write!(f, "line {line}: more clauses than the header declared")
            }
            DimacsError::ClauseCountMismatch { declared, found } => {
                write!(f, "header declared {declared} clauses but file has {found}")
            }
            DimacsError::UnterminatedClause => write!(f, "file ends inside a clause (no '0')"),
            DimacsError::TrailingContent { line } => {
                write!(f, "line {line}: content after '%' end marker")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_rejects_oversized_variable_count() {
        // 2^32 + 1 would wrap to variable 1 in the packed representation.
        let err = Cnf::parse("p cnf 4294967297 1\n4294967297 0\n").unwrap_err();
        assert!(
            matches!(
                err,
                DimacsError::TooManyVariables {
                    line: 1,
                    vars: 4_294_967_297
                }
            ),
            "got {err:?}"
        );
        // The largest representable count is accepted.
        let cnf = Cnf::parse(&format!("p cnf {MAX_VARS} 1\n{MAX_VARS} 0\n")).unwrap();
        assert_eq!(cnf.num_vars, MAX_VARS);
        assert_eq!(cnf.clauses[0][0].var().index(), MAX_VARS - 1);
    }

    #[test]
    fn parse_simple() {
        let cnf = Cnf::parse("c comment\np cnf 3 2\n1 -2 3 0\n-1 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 3);
        assert_eq!(cnf.clauses[0][1], Lit::from_dimacs(-2));
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = Cnf::parse("p cnf 4 1\n1 2\n3 4 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 4);
    }

    #[test]
    fn parse_empty_clause() {
        let cnf = Cnf::parse("p cnf 1 1\n0\n").unwrap();
        assert!(cnf.clauses[0].is_empty());
        let (mut s, _) = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn parse_satlib_percent_footer() {
        let cnf = Cnf::parse("p cnf 2 1\n1 -2 0\n%\n0\n\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
    }

    #[test]
    fn roundtrip_identity() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-3)]);
        cnf.add_clause(vec![Lit::from_dimacs(-5)]);
        cnf.add_clause(Vec::new());
        let text = cnf.to_dimacs();
        let back = Cnf::parse(&text).unwrap();
        assert_eq!(back, cnf);
        // And rendering again is a fixpoint.
        assert_eq!(back.to_dimacs(), text);
    }

    #[test]
    fn roundtrip_through_display() {
        let cnf = Cnf::parse("p cnf 3 2\n-1 2 0\n3 0\n").unwrap();
        assert_eq!(Cnf::parse(&cnf.to_string()).unwrap(), cnf);
    }

    #[test]
    fn error_missing_header() {
        assert_eq!(
            Cnf::parse("1 2 0\n"),
            Err(DimacsError::MissingHeader { line: 1 })
        );
    }

    #[test]
    fn error_bad_header() {
        assert_eq!(
            Cnf::parse("p cnf x 2\n"),
            Err(DimacsError::BadHeader { line: 1 })
        );
    }

    #[test]
    fn error_duplicate_header() {
        assert_eq!(
            Cnf::parse("p cnf 1 0\np cnf 1 0\n"),
            Err(DimacsError::DuplicateHeader { line: 2 })
        );
    }

    #[test]
    fn error_bad_literal() {
        let err = Cnf::parse("p cnf 2 1\n1 two 0\n").unwrap_err();
        assert!(matches!(err, DimacsError::BadLiteral { line: 2, .. }));
    }

    #[test]
    fn error_variable_out_of_range() {
        let err = Cnf::parse("p cnf 2 1\n1 -9 0\n").unwrap_err();
        assert_eq!(
            err,
            DimacsError::VariableOutOfRange {
                line: 2,
                var: 9,
                num_vars: 2
            }
        );
    }

    #[test]
    fn error_clause_count_mismatch() {
        let err = Cnf::parse("p cnf 2 3\n1 0\n").unwrap_err();
        assert_eq!(
            err,
            DimacsError::ClauseCountMismatch {
                declared: 3,
                found: 1
            }
        );
    }

    #[test]
    fn error_too_many_clauses() {
        let err = Cnf::parse("p cnf 2 1\n1 0\n2 0\n").unwrap_err();
        assert_eq!(err, DimacsError::TooManyClauses { line: 3 });
    }

    #[test]
    fn error_unterminated_clause() {
        assert_eq!(
            Cnf::parse("p cnf 2 1\n1 2\n"),
            Err(DimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn errors_display() {
        let err = Cnf::parse("p cnf 2 1\n1 two 0\n").unwrap_err();
        assert!(err.to_string().contains("bad literal"));
    }

    #[test]
    fn parse_xor_lines() {
        let cnf = Cnf::parse("p cnf 4 3\n1 2 0\nx1 2 -3 0\nx 3 4 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.xors.len(), 2);
        assert_eq!(
            cnf.xors[0],
            XorClause::new(
                vec![
                    Lit::from_dimacs(1),
                    Lit::from_dimacs(2),
                    Lit::from_dimacs(-3)
                ],
                true
            )
        );
        assert_eq!(
            cnf.xors[1],
            XorClause::new(vec![Lit::from_dimacs(3), Lit::from_dimacs(4)], true)
        );
    }

    #[test]
    fn parse_multiline_xor() {
        let cnf = Cnf::parse("p cnf 4 1\nx1 2\n3 4 0\n").unwrap();
        assert_eq!(cnf.xors.len(), 1);
        assert_eq!(cnf.xors[0].lits.len(), 4);
        assert!(cnf.xors[0].rhs);
    }

    #[test]
    fn xor_roundtrip_identity() {
        // Parsed x-lines always carry rhs = true, so parse ∘ to_dimacs is
        // the identity on parsed formulas.
        let text = "p cnf 5 3\n1 -5 0\nx1 2 -3 0\nx4 5 0\n";
        let cnf = Cnf::parse(text).unwrap();
        let rendered = cnf.to_dimacs();
        assert_eq!(Cnf::parse(&rendered).unwrap(), cnf);
        assert_eq!(rendered, text);
    }

    #[test]
    fn xor_roundtrip_folds_negative_rhs() {
        // rhs = false is spelled by flipping the first literal's sign;
        // the round trip is canonical-equal, not structurally equal.
        let mut cnf = Cnf::new(3);
        cnf.add_xor(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)], false);
        cnf.add_xor(vec![Lit::from_dimacs(-2), Lit::from_dimacs(3)], true);
        let back = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(back.xors.len(), 2);
        for (a, b) in back.xors.iter().zip(&cnf.xors) {
            assert_eq!(a.canonical(), b.canonical());
        }
        // And identical truth tables.
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(cnf.eval(&a), back.eval(&a), "assignment {a:?}");
        }
    }

    #[test]
    fn empty_xor_lines() {
        // Trivially-true `⊕ ∅ = 0` is dropped; `⊕ ∅ = 1` renders as an
        // unsatisfiable bare "x 0" line.
        let mut cnf = Cnf::new(1);
        cnf.add_xor(Vec::new(), false);
        assert!(cnf.xors.is_empty());
        cnf.add_xor(Vec::new(), true);
        assert_eq!(cnf.xors.len(), 1);
        let back = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(back.xors, cnf.xors);
        let (mut s, _) = back.to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_lines_count_toward_header_total() {
        assert_eq!(
            Cnf::parse("p cnf 2 1\n1 0\nx1 2 0\n"),
            Err(DimacsError::TooManyClauses { line: 3 })
        );
        assert_eq!(
            Cnf::parse("p cnf 2 3\n1 0\nx1 2 0\n"),
            Err(DimacsError::ClauseCountMismatch {
                declared: 3,
                found: 2
            })
        );
    }

    #[test]
    fn unterminated_xor_is_an_error() {
        assert_eq!(
            Cnf::parse("p cnf 2 1\nx1 2\n"),
            Err(DimacsError::UnterminatedClause)
        );
        assert_eq!(
            Cnf::parse("p cnf 2 1\nx\n"),
            Err(DimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn xor_variables_respect_declared_count() {
        let err = Cnf::parse("p cnf 2 1\nx1 -9 0\n").unwrap_err();
        assert!(matches!(
            err,
            DimacsError::VariableOutOfRange { var: 9, .. }
        ));
    }

    #[test]
    fn solve_parsed_xor_instance() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = 1 forces x2 = 0, x3 = 1.
        let cnf = Cnf::parse("p cnf 3 3\nx1 2 0\nx2 3 0\n1 0\n").unwrap();
        let (mut s, vars) = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(vars[0]), Some(true));
        assert_eq!(s.value(vars[1]), Some(false));
        assert_eq!(s.value(vars[2]), Some(true));
        let model: Vec<bool> = vars.iter().map(|&v| s.value(v).unwrap()).collect();
        assert!(cnf.eval(&model));
    }

    #[test]
    fn to_cnf_exports_xor_rows() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_xor(
            &[
                Lit::positive(vars[0]),
                Lit::positive(vars[1]),
                Lit::positive(vars[2]),
            ],
            true,
        );
        s.add_xor(
            &[
                Lit::positive(vars[1]),
                Lit::positive(vars[2]),
                Lit::positive(vars[3]),
            ],
            false,
        );
        let cnf = s.to_cnf();
        assert_eq!(cnf.xors.len(), 2);
        // The export is the RREF'd system: same solution set.
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let original = (a[0] ^ a[1] ^ a[2]) && !(a[1] ^ a[2] ^ a[3]);
            assert_eq!(cnf.eval(&a), original, "assignment {a:?}");
        }
        // And it survives a textual round trip.
        let back = Cnf::parse(&cnf.to_dimacs()).unwrap();
        for (a, b) in back.xors.iter().zip(&cnf.xors) {
            assert_eq!(a.canonical(), b.canonical());
        }
    }

    #[test]
    fn solve_parsed_instance() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c) forces b and c.
        let cnf = Cnf::parse("p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n").unwrap();
        let (mut s, vars) = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
        assert_eq!(s.value(vars[2]), Some(true));
        let model: Vec<bool> = vars.iter().map(|&v| s.value(v).unwrap()).collect();
        assert!(cnf.eval(&model));
    }
}
