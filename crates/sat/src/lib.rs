//! A from-scratch CDCL SAT solver.
//!
//! The paper runs the oracle-guided SAT attack with an off-the-shelf
//! solver (lingeling). This repository implements its own
//! conflict-driven clause-learning solver instead of depending on one —
//! the attack is solver-agnostic, and a self-contained solver keeps the
//! whole reproduction auditable (DESIGN.md §4).
//!
//! Feature set (MiniSat-class):
//!
//! * two-watched-literal propagation with blocker literals;
//! * first-UIP conflict analysis with reason-based clause minimization;
//! * VSIDS variable activities (exponential decay, indexed max-heap);
//! * phase saving;
//! * Luby-sequence restarts;
//! * learnt-clause database reduction by activity with arena compaction;
//! * incremental use: add clauses between `solve` calls, solve under
//!   assumptions;
//! * budgeted solving: per-call conflict / propagation / wall-clock
//!   limits ([`Budget`]) that return [`SolveResult::Unknown`] and leave
//!   the solver warm and resumable;
//! * native XOR constraints via an in-solver GF(2) engine — incremental
//!   Gauss–Jordan elimination plus watched-column propagation, with lazy
//!   reason clauses feeding ordinary conflict analysis ([`xor`]);
//! * DIMACS CNF reading/writing, including the CryptoMiniSat `x`-line
//!   XOR extension ([`dimacs`]).
//!
//! # Example
//!
//! ```
//! use satsolver::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::negative(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod clause;
pub mod dimacs;
mod heap;
pub mod proof;
mod solver;
mod types;
pub mod xor;

pub use budget::Budget;
pub use proof::{DratProof, ProofLogger, ProofStats};
pub use solver::{SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};
pub use xor::{Constraint, XorClause};
