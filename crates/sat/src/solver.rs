//! The CDCL search core.
//!
//! Architecture follows MiniSat 2.2: a trail-based backtracking search with
//! two-watched-literal propagation, first-UIP clause learning, VSIDS
//! branching, phase saving, Luby restarts and activity-driven learnt-clause
//! database reduction. Clauses live in the [`ClauseDb`] arena; watch lists
//! and reasons hold [`ClauseRef`] handles and are remapped when the arena
//! compacts.

use std::collections::HashMap;
use std::time::Instant;

use crate::budget::Budget;
use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::proof::ProofLogger;
use crate::types::{LBool, Lit, Var};
use crate::xor::{Constraint, ProofSink, XorClause, XorEngine, XorImplication};

/// Outcome of a [`Solver::solve`] / [`Solver::solve_assuming`] /
/// [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable (under the assumptions, if any were
    /// given).
    Unsat,
    /// A [`Budget`] limit tripped before the search reached an answer
    /// (only [`Solver::solve_limited`] can return this). The solver is
    /// left warm at decision level 0 with every learnt clause retained:
    /// call again — with or without a budget — to resume the search, or
    /// add more constraints first. No model is available.
    Unknown,
}

/// Work counters accumulated over the lifetime of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation or decision (trail pushes).
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added (including unit learnts).
    pub learnt_clauses: u64,
    /// Literals removed from learnt clauses by reason-side minimization.
    pub minimized_literals: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Literals implied by the GF(2) xor engine during search.
    pub xor_propagations: u64,
    /// Conflicts detected by the GF(2) xor engine.
    pub xor_conflicts: u64,
    /// Solve calls that returned [`SolveResult::Unknown`] because a
    /// [`Budget`] limit tripped.
    pub budget_exhaustions: u64,
}

/// Absolute thresholds computed from a [`Budget`] at `solve_limited`
/// entry (the budget itself is per-call; these are lifetime-counter
/// targets plus a wall-clock deadline).
struct ActiveLimits {
    conflicts: Option<u64>,
    propagations: Option<u64>,
    deadline: Option<Instant>,
}

impl ActiveLimits {
    fn from_budget(budget: &Budget, stats: &SolverStats) -> ActiveLimits {
        ActiveLimits {
            conflicts: budget.conflicts.map(|c| stats.conflicts.saturating_add(c)),
            propagations: budget
                .propagations
                .map(|p| stats.propagations.saturating_add(p)),
            deadline: budget.wall.map(|w| Instant::now() + w),
        }
    }

    /// Whether any limit has tripped. Counter compares are branch-cheap;
    /// the `Instant` read only happens when a wall limit is set.
    fn exhausted(&self, stats: &SolverStats) -> bool {
        if self.conflicts.is_some_and(|cap| stats.conflicts >= cap) {
            return true;
        }
        if self
            .propagations
            .is_some_and(|cap| stats.propagations >= cap)
        {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// What one bounded [`Solver::search`] episode concluded.
enum SearchOutcome {
    /// Full satisfying assignment found.
    Sat,
    /// Refuted (at level 0, or under the call's assumptions).
    Unsat,
    /// Restart budget spent; caller restarts the episode.
    Restart,
    /// A [`Budget`] limit tripped mid-search.
    OutOfBudget,
}

/// A watch-list entry: the watched clause plus a cached *blocker* literal
/// from the same clause. If the blocker is already true the clause cannot
/// be unit, and propagation skips it without touching the arena.
#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const VAR_RESCALE: f64 = 1e100;
const CLA_RESCALE: f32 = 1e20;
const RESTART_BASE: u64 = 100;

/// A conflict-driven clause-learning SAT solver.
///
/// See the crate-level documentation for the feature set and an example.
/// The solver is incremental: clauses may be added between `solve` calls
/// and each call may carry its own assumptions.
#[derive(Debug, Default)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by `lit.index()`: clauses to inspect when `lit`
    /// becomes **true** (they watch `¬lit`).
    watches: Vec<Vec<Watch>>,
    /// Current assignment, per variable.
    assigns: Vec<LBool>,
    /// Saved polarity, per variable (phase saving).
    phase: Vec<bool>,
    /// Implying clause, per assigned variable (`None` for decisions,
    /// assumptions and top-level units).
    reason: Vec<Option<ClauseRef>>,
    /// Decision level of the assignment, per assigned variable.
    level: Vec<u32>,
    /// Assignment stack in chronological order.
    trail: Vec<Lit>,
    /// `trail` index where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next `trail` position to propagate.
    qhead: usize,
    /// VSIDS activity, per variable.
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    cla_inc: f32,
    /// Live learnt clauses (for database reduction).
    learnts: Vec<ClauseRef>,
    max_learnts: f64,
    /// Per-variable scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// Literals whose `seen` marks must be cleared after analysis.
    analyze_toclear: Vec<Lit>,
    /// False once the clause set is known unsatisfiable at level 0.
    ok: bool,
    /// Model captured at the last `Sat` answer, per variable.
    model: Vec<Option<bool>>,
    /// Native xor constraints: the in-solver GF(2) engine.
    xors: XorEngine,
    /// Scratch buffer for xor implications (reused across propagations).
    xor_props: Vec<XorImplication>,
    /// A conflict clause materialized from an xor row; it exists only
    /// while conflict analysis reads it and is reclaimed right after.
    xor_conflict: Option<ClauseRef>,
    /// Proof sink for certifying runs ([`Solver::set_proof_logger`]);
    /// `None` (the default) makes every logging site a single branch.
    proof: ProofSink,
    /// Verbatim record of every added constraint, kept only when a
    /// certifying caller enabled it ([`Solver::enable_input_mirror`]).
    input_mirror: Option<crate::dimacs::Cnf>,
    stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            order: VarHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Introduces a fresh variable, initially unassigned with saved phase
    /// `false`.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len();
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.model.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(v + 1);
        self.order.insert(v, &self.activity);
        Var::from_index(v)
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem (non-learnt) clauses of length ≥ 2. Unit
    /// clauses are absorbed into the top-level assignment instead of being
    /// stored.
    pub fn num_clauses(&self) -> usize {
        self.db.num_original
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.db.num_learnt
    }

    /// Work counters.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Installs a proof logger; every inference from here on is streamed
    /// to it (DRAT+xor, see [`crate::proof`]). Install **before** adding
    /// constraints: add-time xor eliminations derive facts too, and a
    /// proof that misses them will not check. Pass an
    /// `Arc<Mutex<DratProof>>` clone to keep a readable handle.
    pub fn set_proof_logger(&mut self, logger: impl ProofLogger + 'static) {
        self.proof = Some(Box::new(logger));
    }

    /// Removes the proof logger, returning logging to zero-cost.
    pub fn clear_proof_logger(&mut self) {
        self.proof = None;
    }

    /// Starts recording every subsequently added clause and xor
    /// constraint verbatim (pre-simplification) into an input mirror.
    ///
    /// Certifying callers replay the mirror in a fresh proof-logging
    /// solver so the final answer is re-derived from the true inputs.
    /// [`Solver::to_cnf`] is not suitable for that: it snapshots the
    /// *processed* state, whose trail units are themselves unverified
    /// solver derivations. Enable before adding constraints.
    pub fn enable_input_mirror(&mut self) {
        if self.input_mirror.is_none() {
            self.input_mirror = Some(crate::dimacs::Cnf::new(self.num_vars()));
        }
    }

    /// The recorded input mirror, if [`Solver::enable_input_mirror`] was
    /// called.
    pub fn input_mirror(&self) -> Option<&crate::dimacs::Cnf> {
        self.input_mirror.as_ref()
    }

    /// Logs a clause addition step if a logger is installed.
    fn log_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add_clause(lits);
        }
    }

    /// Logs a clause deletion step if a logger is installed.
    fn log_delete(&mut self, cref: ClauseRef) {
        if self.proof.is_some() {
            let lits: Vec<Lit> = self
                .db
                .lits(cref)
                .iter()
                .map(|&raw| Lit::from_index(raw as usize))
                .collect();
            if let Some(p) = self.proof.as_mut() {
                p.delete_clause(&lits);
            }
        }
    }

    /// Logs an xor-derived clause (a materialized reason or conflict of
    /// row `row`) if a logger is installed.
    fn log_xor_derived(&mut self, row: u32, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            let (origin, units) = self.xors.row_meta(row);
            p.add_xor_derived(lits, origin, units);
        }
    }

    /// Whether the clause set has been proven unsatisfiable at the top
    /// level (in which case every future [`Solver::solve`] call returns
    /// [`SolveResult::Unsat`] immediately).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The model value of `var` from the most recent [`SolveResult::Sat`]
    /// answer, or `None` if the last call did not return `Sat`.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.model[var.index()]
    }

    /// The model value of a literal (see [`Solver::value`]).
    pub fn lit_model_value(&self, lit: Lit) -> Option<bool> {
        self.model[lit.var().index()].map(|b| b == lit.is_positive())
    }

    /// Snapshots the current problem as a [`crate::dimacs::Cnf`]: the
    /// top-level assignment as unit clauses, every live original clause,
    /// and the live xor rows as `x`-line constraints. Learnt clauses are
    /// omitted (they are implied). The exported xors are the engine's
    /// reduced row-echelon form — an equivalent system, not a textual copy
    /// of what was added. Call between `solve` calls, i.e. at decision
    /// level 0.
    pub fn to_cnf(&self) -> crate::dimacs::Cnf {
        debug_assert_eq!(self.decision_level(), 0);
        let mut cnf = crate::dimacs::Cnf::new(self.num_vars());
        if !self.ok {
            cnf.add_clause(Vec::new());
            return cnf;
        }
        for &l in &self.trail {
            cnf.add_clause(vec![l]);
        }
        for cref in self.db.iter_refs() {
            if !self.db.is_learnt(cref) {
                let lits: Vec<Lit> = self
                    .db
                    .lits(cref)
                    .iter()
                    .map(|&raw| Lit::from_index(raw as usize))
                    .collect();
                cnf.add_clause(lits);
            }
        }
        for x in self.xors.export() {
            cnf.add_xor(x.lits, x.rhs);
        }
        cnf
    }

    /// Exports the live learnt clauses plus the level-0 trail as unit
    /// clauses. Every returned clause is implied by the original formula
    /// alone (CDCL learnts never depend on assumptions), so re-adding them
    /// to a fresh solver over the same formula is sound and warm-starts it
    /// with this solver's deductions. Complements [`Solver::to_cnf`],
    /// which deliberately omits learnts. Call at decision level 0.
    pub fn learnt_clauses(&self) -> Vec<Vec<Lit>> {
        debug_assert_eq!(self.decision_level(), 0);
        let mut out: Vec<Vec<Lit>> = Vec::new();
        for &l in &self.trail {
            out.push(vec![l]);
        }
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                out.push(
                    self.db
                        .lits(cref)
                        .iter()
                        .map(|&raw| Lit::from_index(raw as usize))
                        .collect(),
                );
            }
        }
        out
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is now known unsatisfiable at the top
    /// level (e.g. the clause was empty after simplification, or a
    /// top-level propagation it triggered conflicted); `true` otherwise.
    /// Duplicate literals are removed, tautologies are dropped, and
    /// literals already false at level 0 are simplified away.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {}",
                l.var()
            );
        }
        if let Some(m) = self.input_mirror.as_mut() {
            m.add_clause(lits.to_vec());
        }

        // Sort by packed code: the two polarities of one variable become
        // adjacent, making duplicates and tautologies local checks.
        let mut simplified: Vec<Lit> = lits.to_vec();
        simplified.sort_unstable();
        simplified.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(simplified.len());
        for &l in &simplified {
            if out.last().is_some_and(|&prev| prev == !l) {
                return true; // tautology: contains l and ¬l
            }
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // falsified at level 0: drop
                LBool::Undef => out.push(l),
            }
        }

        match out.len() {
            0 => {
                self.log_add(&[]);
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    // Log the refutation before reclaiming the materialized
                    // conflict: its x-line must still be active for the
                    // empty clause's RUP check.
                    self.log_add(&[]);
                    self.release_xor_conflict();
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&out, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Adds a native parity constraint: the XOR of `lits` must equal
    /// `rhs`.
    ///
    /// The constraint goes to the in-solver GF(2) engine (incremental
    /// Gauss–Jordan plus watched-column propagation during search), not
    /// through a Tseitin clause expansion — see [`crate::xor`]. Signs
    /// fold into `rhs` and duplicate variables cancel. Returns `false` if
    /// the solver is now known unsatisfiable at the top level.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn add_xor(&mut self, lits: &[Lit], rhs: bool) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "xors are added at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {}",
                l.var()
            );
        }
        if let Some(m) = self.input_mirror.as_mut() {
            m.add_xor(lits.to_vec(), rhs);
        }
        let (vars, rhs) = XorClause {
            lits: lits.to_vec(),
            rhs,
        }
        .normalized();
        let mut units = Vec::new();
        if !self
            .xors
            .add(&vars, rhs, &self.assigns, &mut units, &mut self.proof)
        {
            // The engine logged the inconsistent row as an empty x-line.
            self.ok = false;
            return false;
        }
        for u in units {
            match self.lit_value(u) {
                LBool::True => {}
                LBool::False => {
                    // The derived unit (logged by the engine) contradicts
                    // the level-0 trail: the empty clause is now RUP.
                    self.log_add(&[]);
                    self.ok = false;
                    return false;
                }
                LBool::Undef => self.unchecked_enqueue(u, None),
            }
        }
        if self.propagate().is_some() {
            self.log_add(&[]);
            self.release_xor_conflict();
            self.ok = false;
        }
        self.ok
    }

    /// Adds one element of a constraint stream — the encoder → solver
    /// interface that keeps parity native (see [`Constraint`]). Returns
    /// `false` if the solver is now known unsatisfiable at the top level.
    pub fn add_constraint(&mut self, constraint: &Constraint) -> bool {
        match constraint {
            Constraint::Clause(lits) => self.add_clause(lits),
            Constraint::Xor(xc) => self.add_xor(&xc.lits, xc.rhs),
        }
    }

    /// Number of live xor rows held by the GF(2) engine. The engine keeps
    /// the system in reduced row-echelon form, so this is the rank of the
    /// added xor system minus constraints absorbed into top-level units.
    pub fn num_xors(&self) -> usize {
        self.xors.num_rows()
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under `assumptions`: each assumption literal is forced true
    /// for this call only (they act as pre-made decisions). A
    /// [`SolveResult::Unsat`] answer under assumptions does **not** poison
    /// the solver — later calls with different assumptions may still be
    /// satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, &Budget::new())
    }

    /// Solves under `assumptions` with a per-call work [`Budget`].
    ///
    /// Identical to [`Solver::solve_assuming`] until a budget dimension
    /// trips, at which point the call backtracks to decision level 0 and
    /// returns [`SolveResult::Unknown`] with the solver *warm*: every
    /// clause learnt so far is retained, `is_ok` is untouched, and a
    /// follow-up call (same or different assumptions, bigger or no
    /// budget) resumes the search rather than starting over. Exhaustions
    /// are counted in [`SolverStats::budget_exhaustions`].
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn solve_limited(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveResult {
        debug_assert_eq!(self.decision_level(), 0);
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {}",
                l.var()
            );
        }
        for m in &mut self.model {
            *m = None;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.log_add(&[]);
            self.release_xor_conflict();
            self.ok = false;
            return SolveResult::Unsat;
        }
        self.max_learnts = (self.db.num_original as f64 / 3.0).max(1000.0);

        let limits = ActiveLimits::from_budget(budget, &self.stats);
        let mut curr_restarts = 0u64;
        loop {
            let restart_cap = RESTART_BASE * luby(2, curr_restarts);
            let status = self.search(restart_cap, assumptions, &limits);
            match status {
                SearchOutcome::Sat => {
                    for (v, &a) in self.assigns.iter().enumerate() {
                        self.model[v] = match a {
                            LBool::True => Some(true),
                            LBool::False => Some(false),
                            // Unreachable in practice (search assigns every
                            // variable before answering Sat), but a default
                            // keeps the model total.
                            LBool::Undef => Some(false),
                        };
                    }
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    #[cfg(debug_assertions)]
                    {
                        let errs = self.audit();
                        assert!(errs.is_empty(), "solver audit failed at restart: {errs:#?}");
                    }
                }
                SearchOutcome::OutOfBudget => {
                    self.cancel_until(0);
                    self.stats.budget_exhaustions += 1;
                    return SolveResult::Unknown;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Runs CDCL until SAT, UNSAT, `max_conflicts` conflicts (restart), or
    /// a budget limit trips.
    fn search(
        &mut self,
        max_conflicts: u64,
        assumptions: &[Lit],
        limits: &ActiveLimits,
    ) -> SearchOutcome {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    // Conflict independent of any decision or assumption.
                    self.log_add(&[]);
                    self.release_xor_conflict();
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.log_add(&learnt);
                self.release_xor_conflict();
                self.cancel_until(backtrack);
                self.stats.learnt_clauses += 1;
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.db.alloc(&learnt, true);
                    self.learnts.push(cref);
                    self.attach_clause(cref);
                    self.cla_bump(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if limits.exhausted(&self.stats) {
                    return SearchOutcome::OutOfBudget;
                }
            } else {
                if limits.exhausted(&self.stats) {
                    return SearchOutcome::OutOfBudget;
                }
                if conflicts >= max_conflicts {
                    return SearchOutcome::Restart;
                }
                if self.learnts.len() as f64 >= self.max_learnts {
                    self.reduce_db();
                }

                // Take the next unsatisfied assumption as the decision, or
                // fall back to VSIDS once all assumptions hold.
                let mut next: Option<Lit> = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already true: open a dummy level so the
                            // level ↔ assumption-index correspondence holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(p) => p,
                        None => return SearchOutcome::Sat, // full assignment
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(next, None);
            }
        }
    }

    /// Current decision level.
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Picks an unassigned variable by VSIDS activity, signed by its saved
    /// phase.
    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Lit::new(Var::from_index(v), self.phase[v]));
            }
        }
        None
    }

    /// Undoes all assignments above `level`, saving phases and returning
    /// variables to the order heap.
    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for idx in (lim..self.trail.len()).rev() {
            let p = self.trail[idx];
            let v = p.var().index();
            self.phase[v] = p.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = lim;
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Current truth value of a literal.
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_positive()),
            LBool::False => LBool::from_bool(!l.is_positive()),
        }
    }

    /// Records `p` as true at the current level with the given reason.
    fn unchecked_enqueue(&mut self, p: Lit, reason: Option<ClauseRef>) {
        let v = p.var().index();
        debug_assert_eq!(self.assigns[v], LBool::Undef);
        self.assigns[v] = LBool::from_bool(p.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(p);
        self.stats.propagations += 1;
    }

    /// Starts watching a clause on its first two literals.
    fn attach_clause(&mut self, cref: ClauseRef) {
        let c0 = self.db.lit(cref, 0);
        let c1 = self.db.lit(cref, 1);
        self.watches[(!c0).index()].push(Watch { cref, blocker: c1 });
        self.watches[(!c1).index()].push(Watch { cref, blocker: c0 });
    }

    /// Removes a clause's two watch entries.
    fn detach_clause(&mut self, cref: ClauseRef) {
        for i in 0..2 {
            let w = (!self.db.lit(cref, i)).index();
            let pos = self.watches[w]
                .iter()
                .position(|e| e.cref == cref)
                .expect("watch entry present");
            self.watches[w].swap_remove(pos);
        }
    }

    /// Propagates all enqueued assignments. Returns the conflicting clause
    /// if one is found, `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut confl: Option<ClauseRef> = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;

            // Take the list so the arena and other lists stay borrowable.
            // New watches are only ever pushed onto *other* literals' lists
            // (the replacement watch is never `¬p`).
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'next_watch: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Cheap pre-check: a true blocker means the clause is
                // already satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize: the falsified watched literal sits at slot 1.
                if self.db.lit(cref, 0) == false_lit {
                    let other = self.db.lit(cref, 1);
                    self.db.set_lit(cref, 0, other);
                    self.db.set_lit(cref, 1, false_lit);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watch {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in 2..self.db.len(cref) {
                    let l = self.db.lit(cref, k);
                    if self.lit_value(l) != LBool::False {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!l).index()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        continue 'next_watch;
                    }
                }
                // Clause is unit (or conflicting) under the current
                // assignment; keep the watch.
                ws[j] = Watch {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    confl = Some(cref);
                    self.qhead = self.trail.len();
                    // Copy the rest of the list back verbatim.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            // GF(2) engine: wake xor rows watching this variable. Runs
            // after the clause watches of `p`, before the next trail
            // literal, so xor and unit propagation interleave.
            if confl.is_none() && self.xors.involves(p.var().index()) {
                confl = self.propagate_xor(p.var().index());
            }
            if confl.is_some() {
                break;
            }
        }
        confl
    }

    /// Processes the xor rows watching variable `v` after its assignment.
    /// Implications are enqueued with materialized reason clauses; a
    /// violated row becomes a materialized (temporary) conflict clause.
    fn propagate_xor(&mut self, v: usize) -> Option<ClauseRef> {
        let mut props = std::mem::take(&mut self.xor_props);
        props.clear();
        let conflict_row = self.xors.on_assign(v, &self.assigns, &mut props);
        let mut confl = None;
        for imp in &props {
            match self.lit_value(imp.lit) {
                // Another implication from this batch already assigned it
                // consistently.
                LBool::True => {}
                LBool::Undef => {
                    let cref = self.materialize_reason(imp.row, imp.lit);
                    self.unchecked_enqueue(imp.lit, Some(cref));
                    self.stats.xor_propagations += 1;
                }
                // Two rows disagreed on the variable: the later row is now
                // fully falsified.
                LBool::False => {
                    confl = Some(self.materialize_conflict(imp.row));
                    break;
                }
            }
        }
        if confl.is_none() {
            if let Some(ri) = conflict_row {
                confl = Some(self.materialize_conflict(ri));
            }
        }
        if confl.is_some() {
            self.qhead = self.trail.len();
        }
        self.xor_props = props;
        confl
    }

    /// Builds the clause-shaped reason for an xor implication — the
    /// implied literal plus the negations of the row's other (assigned)
    /// literals — as an ordinary learnt clause: attached, subject to
    /// database reduction (locked while it is a reason), remapped on
    /// compaction. This is CryptoMiniSat-style lazy reason generation;
    /// conflict analysis needs no xor-specific code.
    fn materialize_reason(&mut self, row: u32, implied: Lit) -> ClauseRef {
        let mut lits = vec![implied];
        self.xors
            .reason_lits(row, Some(implied.var()), &self.assigns, &mut lits);
        debug_assert!(lits.len() >= 2);
        self.log_xor_derived(row, &lits);
        // Slot 1 carries a highest-level false literal so the watch pair
        // stays valid across backtracking (same invariant as learnts).
        let mut max_i = 1;
        for i in 2..lits.len() {
            if self.level[lits[i].var().index()] > self.level[lits[max_i].var().index()] {
                max_i = i;
            }
        }
        lits.swap(1, max_i);
        let cref = self.db.alloc(&lits, true);
        self.learnts.push(cref);
        self.attach_clause(cref);
        self.stats.learnt_clauses += 1;
        cref
    }

    /// Builds the fully-falsified clause of a violated xor row for
    /// conflict analysis. The clause is not attached; it lives only until
    /// [`Solver::release_xor_conflict`] reclaims it.
    fn materialize_conflict(&mut self, row: u32) -> ClauseRef {
        let mut lits = Vec::new();
        self.xors.reason_lits(row, None, &self.assigns, &mut lits);
        debug_assert!(lits.len() >= 2);
        self.log_xor_derived(row, &lits);
        let cref = self.db.alloc(&lits, true);
        self.stats.xor_conflicts += 1;
        debug_assert!(self.xor_conflict.is_none());
        self.xor_conflict = Some(cref);
        cref
    }

    /// Reclaims the temporary xor conflict clause, if one is outstanding.
    /// Called at every site that consumes a conflict from
    /// [`Solver::propagate`].
    fn release_xor_conflict(&mut self) {
        if let Some(cref) = self.xor_conflict.take() {
            self.log_delete(cref);
            self.db.delete(cref);
        }
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // slot 0 = asserting lit
        let mut counter = 0usize; // literals of the current level still to resolve
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            if self.db.is_learnt(confl) {
                self.cla_bump(confl);
            }
            // Skip slot 0 (the literal this clause propagated) on reason
            // clauses; scan everything on the original conflict.
            let start = usize::from(p.is_some());
            for k in start..self.db.len(confl) {
                let q = self.db.lit(confl, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_bump(v);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pivot = self.trail[index];
            let v = pivot.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pivot; // the first UIP
                break;
            }
            p = Some(pivot);
            confl = self.reason[v].expect("non-decision literal has a reason");
        }

        // Reason-side minimization: drop any learnt literal whose negation
        // is implied by the rest of the clause through reason chains.
        self.analyze_toclear = learnt.clone();
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |m, l| m | self.abstract_level(l.var().index()));
        let before = learnt.len();
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reason[l.var().index()].is_none() || !self.lit_redundant(l, abstract_levels) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);
        self.stats.minimized_literals += (before - learnt.len()) as u64;

        // Clear the scratch marks (including those set by lit_redundant).
        for idx in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[idx].var().index();
            self.seen[v] = false;
        }
        self.analyze_toclear.clear();

        // Backtrack level: the second-highest level in the clause; that
        // literal moves to slot 1 so it is watched after attachment.
        if learnt.len() == 1 {
            return (learnt, 0);
        }
        let mut max_i = 1;
        for i in 2..learnt.len() {
            if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                max_i = i;
            }
        }
        learnt.swap(1, max_i);
        let backtrack = self.level[learnt[1].var().index()] as usize;
        (learnt, backtrack)
    }

    /// One-hot abstraction of a decision level, for the cheap set test in
    /// [`Solver::lit_redundant`].
    fn abstract_level(&self, v: usize) -> u32 {
        1 << (self.level[v] & 31)
    }

    /// Whether `p` is redundant in the learnt clause: every path from `p`
    /// through reason clauses bottoms out in level-0 facts or literals
    /// already in the clause (recursive check, MiniSat's `litRedundant`).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        let mut stack = vec![p];
        let top = self.analyze_toclear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("redundancy walk stays on implied lits");
            for k in 1..self.db.len(cref) {
                let l = self.db.lit(cref, k);
                let v = l.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                if self.reason[v].is_some() && (self.abstract_level(v) & abstract_levels) != 0 {
                    self.seen[v] = true;
                    stack.push(l);
                    self.analyze_toclear.push(l);
                } else {
                    // Not provably redundant: undo this walk's marks.
                    for idx in top..self.analyze_toclear.len() {
                        let u = self.analyze_toclear[idx].var().index();
                        self.seen[u] = false;
                    }
                    self.analyze_toclear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    /// Bumps a variable's VSIDS activity and restores heap order.
    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > VAR_RESCALE {
            for a in &mut self.activity {
                *a /= VAR_RESCALE;
            }
            self.var_inc /= VAR_RESCALE;
        }
        self.order.update(v, &self.activity);
    }

    /// Bumps a learnt clause's activity.
    fn cla_bump(&mut self, cref: ClauseRef) {
        let a = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, a);
        if a > CLA_RESCALE {
            for i in 0..self.learnts.len() {
                let c = self.learnts[i];
                let scaled = self.db.activity(c) / CLA_RESCALE;
                self.db.set_activity(c, scaled);
            }
            self.cla_inc /= CLA_RESCALE;
        }
    }

    // ------------------------------------------------------------------
    // Learnt database management
    // ------------------------------------------------------------------

    /// Whether a clause is the reason for its first literal's assignment
    /// (such clauses must survive database reduction).
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let c0 = self.db.lit(cref, 0);
        self.lit_value(c0) == LBool::True && self.reason[c0.var().index()] == Some(cref)
    }

    /// Deletes roughly half of the learnt clauses, lowest activity first.
    /// Binary and locked clauses are kept. Compacts the arena when a
    /// quarter of it is garbage.
    fn reduce_db(&mut self) {
        let learnts = {
            let mut ls = std::mem::take(&mut self.learnts);
            let db = &self.db;
            ls.sort_by(|&a, &b| {
                db.activity(a)
                    .partial_cmp(&db.activity(b))
                    .expect("clause activities are finite")
            });
            ls
        };
        let half = learnts.len() / 2;
        let extra_lim = self.cla_inc / learnts.len().max(1) as f32;
        let mut kept = Vec::with_capacity(learnts.len());
        for (i, &cref) in learnts.iter().enumerate() {
            let disposable = self.db.len(cref) > 2 && !self.is_locked(cref);
            if disposable && (i < half || self.db.activity(cref) < extra_lim) {
                self.log_delete(cref);
                self.detach_clause(cref);
                self.db.delete(cref);
                self.stats.deleted_clauses += 1;
            } else {
                kept.push(cref);
            }
        }
        self.learnts = kept;
        self.max_learnts *= 1.1;

        if self.db.wasted * 4 > self.db.arena_words() {
            self.compact();
        }
    }

    // ------------------------------------------------------------------
    // Invariant audit
    // ------------------------------------------------------------------

    /// Full-state invariant audit: watch-list ↔ clause-DB consistency,
    /// trail/reason sanity, xor matrix shape, and bookkeeping coherence.
    /// Returns one human-readable string per violation (empty = healthy).
    ///
    /// Runs automatically at every restart under `debug_assertions`
    /// (panicking on violations); call it from tests or after driving the
    /// solver through an unusual sequence. Cost is O(formula), so it is
    /// not for per-propagation use in release builds.
    pub fn audit(&self) -> Vec<String> {
        let mut errors: Vec<String> = Vec::new();
        let n = self.num_vars();

        // Parallel per-variable arrays agree on the variable count.
        for (name, len) in [
            ("phase", self.phase.len()),
            ("reason", self.reason.len()),
            ("level", self.level.len()),
            ("activity", self.activity.len()),
            ("seen", self.seen.len()),
            ("model", self.model.len()),
        ] {
            if len != n {
                errors.push(format!("{name} has {len} entries for {n} vars"));
            }
        }
        if self.watches.len() != 2 * n {
            errors.push(format!(
                "{} watch lists for {n} vars (expected {})",
                self.watches.len(),
                2 * n
            ));
        }

        // Trail: in range, consistent with `assigns`, levels match the
        // trail_lim structure, no variable assigned twice.
        if self.qhead > self.trail.len() {
            errors.push(format!(
                "qhead {} beyond trail length {}",
                self.qhead,
                self.trail.len()
            ));
        }
        let mut prev = 0usize;
        for (lvl, &lim) in self.trail_lim.iter().enumerate() {
            if lim < prev || lim > self.trail.len() {
                errors.push(format!("trail_lim[{lvl}] = {lim} out of order"));
            }
            prev = lim;
        }
        let mut on_trail = vec![false; n];
        for (idx, &p) in self.trail.iter().enumerate() {
            let v = p.var().index();
            if on_trail[v] {
                errors.push(format!("variable {} on the trail twice", p.var()));
                continue;
            }
            on_trail[v] = true;
            if self.lit_value(p) != LBool::True {
                errors.push(format!("trail literal {p:?} not assigned true"));
            }
            let expect = self.trail_lim.partition_point(|&lim| lim <= idx) as u32;
            if self.level[v] != expect {
                errors.push(format!(
                    "trail literal {p:?} at level {} (trail says {expect})",
                    self.level[v]
                ));
            }
        }
        for (v, &seen) in on_trail.iter().enumerate() {
            if (self.assigns[v] != LBool::Undef) != seen {
                errors.push(format!(
                    "variable {} assignment/trail mismatch",
                    Var::from_index(v)
                ));
            }
        }

        // Reasons: the implied literal leads its reason clause and every
        // other literal is false from no later a level.
        for &p in &self.trail {
            let v = p.var().index();
            let Some(cref) = self.reason[v] else { continue };
            if self.db.is_deleted(cref) {
                errors.push(format!("reason of {p:?} is a deleted clause"));
                continue;
            }
            if self.db.lit(cref, 0) != p {
                errors.push(format!("reason of {p:?} does not start with it"));
            }
            for k in 1..self.db.len(cref) {
                let q = self.db.lit(cref, k);
                if self.lit_value(q) != LBool::False {
                    errors.push(format!("reason of {p:?} has non-false literal {q:?}"));
                } else if self.level[q.var().index()] > self.level[v] {
                    errors.push(format!("reason of {p:?} uses a later-level literal {q:?}"));
                }
            }
        }

        // Watches ↔ clause DB: every live clause is watched on exactly its
        // first two literals, every watch entry points at a live clause
        // through the right list, and blockers come from their clause.
        if self.xor_conflict.is_some() {
            errors.push("dangling xor conflict clause outside analysis".to_string());
        }
        let mut watched: HashMap<ClauseRef, Vec<Lit>> = HashMap::new();
        for (i, ws) in self.watches.iter().enumerate() {
            // List `i` fires when `trigger` becomes true: entries watch its
            // negation.
            let trigger = Lit::from_index(i);
            for w in ws {
                if self.db.is_deleted(w.cref) {
                    errors.push(format!("watch list of {trigger:?} holds a deleted clause"));
                    continue;
                }
                let lits = self.db.lits(w.cref);
                let watched_lit = !trigger;
                if lits[0] != watched_lit.index() as u32 && lits[1] != watched_lit.index() as u32 {
                    errors.push(format!(
                        "clause watched on {watched_lit:?} which is not in its first two slots"
                    ));
                }
                if !lits.contains(&(w.blocker.index() as u32)) {
                    errors.push(format!("blocker {:?} not in its clause", w.blocker));
                }
                watched.entry(w.cref).or_default().push(watched_lit);
            }
        }
        let mut live_learnts = 0usize;
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                live_learnts += 1;
            }
            let mut expect = vec![self.db.lit(cref, 0), self.db.lit(cref, 1)];
            let mut got = watched.remove(&cref).unwrap_or_default();
            expect.sort_unstable();
            got.sort_unstable();
            if expect != got {
                errors.push(format!(
                    "clause {:?} watched on {got:?}, expected {expect:?}",
                    self.db.lits(cref)
                ));
            }
        }

        // Learnt bookkeeping: `learnts` is exactly the live learnt clauses.
        let mut learnt_set: Vec<ClauseRef> = self.learnts.clone();
        learnt_set.sort_unstable_by_key(|c| c.0);
        learnt_set.dedup();
        if learnt_set.len() != self.learnts.len() {
            errors.push("duplicate entries in the learnt list".to_string());
        }
        if learnt_set.len() != live_learnts {
            errors.push(format!(
                "learnt list tracks {} clauses, arena holds {live_learnts}",
                learnt_set.len()
            ));
        }
        for &cref in &learnt_set {
            if self.db.is_deleted(cref) {
                errors.push("learnt list holds a deleted clause".to_string());
            } else if !self.db.is_learnt(cref) {
                errors.push("learnt list holds an original clause".to_string());
            }
        }

        // The GF(2) engine's structural invariants (RREF, pivot maps,
        // watch registration).
        self.xors.audit(&mut errors);
        errors
    }

    /// Compacts the clause arena and remaps every stored [`ClauseRef`].
    fn compact(&mut self) {
        let mut map: HashMap<ClauseRef, ClauseRef> = HashMap::new();
        self.db.compact(|old, new| {
            map.insert(old, new);
        });
        for ws in &mut self.watches {
            for w in ws {
                w.cref = map[&w.cref];
            }
        }
        for r in self.reason.iter_mut().flatten() {
            *r = map[r];
        }
        for c in &mut self.learnts {
            *c = map[c];
        }
    }
}

/// The Luby restart sequence scaled by `y`: `y^luby_exponent(i)`
/// (1, 1, 2, 1, 1, 2, 4, ... for `y = 2`).
fn luby(y: u64, mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: i64) -> Lit {
        Lit::from_dimacs(code)
    }

    /// Builds a solver with `n` vars and the given DIMACS-coded clauses.
    fn solver_with(n: usize, clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&x| lit(x)).collect();
            s.add_clause(&lits);
        }
        s
    }

    #[test]
    fn input_mirror_records_constraints_verbatim() {
        let mut s = Solver::new();
        s.enable_input_mirror();
        for _ in 0..3 {
            s.new_var();
        }
        // The solver simplifies (dedups, drops satisfied clauses); the
        // mirror must keep the verbatim stream anyway.
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(1), lit(2), lit(2)]);
        s.add_xor(&[lit(2), lit(-3)], true);
        let m = s.input_mirror().expect("enabled");
        assert_eq!(m.clauses.len(), 2);
        assert_eq!(m.clauses[1], vec![lit(1), lit(2), lit(2)]);
        assert_eq!(m.xors.len(), 1);
        assert_eq!(m.xors[0].lits, vec![lit(2), lit(-3)]);
        // Solving derives facts but never touches the mirror.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.input_mirror().unwrap().clauses.len(), 2);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(|i| luby(2, i)).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(0)), Some(true));
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = solver_with(1, &[]);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = solver_with(2, &[&[1, -1]]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut s = solver_with(2, &[&[1, 1, 2, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let a = s.value(Var::from_index(0)).unwrap();
        let b = s.value(Var::from_index(1)).unwrap();
        assert!(a || b);
    }

    #[test]
    fn xor_chain_forces_search() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsatisfiable.
        let mut s = solver_with(
            3,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]],
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i64]] = &[
            &[1, 2, -3],
            &[-1, 3],
            &[-2, 3],
            &[1, -2],
            &[2, -4, 5],
            &[-5, 4],
        ];
        let mut s = solver_with(5, clauses);
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in clauses {
            assert!(
                c.iter()
                    .any(|&code| s.lit_model_value(lit(code)) == Some(true)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn assumptions_do_not_poison() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve_assuming(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert!(s.is_ok());
        assert_eq!(s.solve_assuming(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = solver_with(1, &[]);
        assert_eq!(s.solve_assuming(&[lit(1), lit(-1)]), SolveResult::Unsat);
        assert!(s.is_ok());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert!(s.add_clause(&[lit(-2)]) || !s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once top-level unsat, it stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_cleared_on_unsat() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(Var::from_index(0)).is_some());
        assert_eq!(s.solve_assuming(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert_eq!(s.value(Var::from_index(0)), None);
    }

    /// Pigeonhole principle instance: `pigeons` pigeons into `holes` holes.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let vars: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &vars {
            let c: Vec<Lit> = p.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&c);
        }
        for h in 0..holes {
            for (i, pi) in vars.iter().enumerate() {
                for pj in vars.iter().skip(i + 1) {
                    s.add_clause(&[Lit::negative(pi[h]), Lit::negative(pj[h])]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat_exercises_learning() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = *s.stats();
        assert!(st.conflicts > 0, "expected a real search: {st:?}");
        assert!(st.learnt_clauses > 0);
        assert!(st.decisions > 0);
    }

    #[test]
    fn pigeonhole_sat_when_room() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn native_xor_triangle_unsat_at_top_level() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1: the third row reduces to
        // 0 = 1 under Gauss–Jordan, so the solver is poisoned on add.
        let mut s = solver_with(3, &[]);
        assert!(s.add_xor(&[lit(1), lit(2)], true));
        assert!(s.add_xor(&[lit(2), lit(3)], true));
        assert!(!s.add_xor(&[lit(1), lit(3)], true));
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn native_xor_units_fix_variables() {
        let mut s = solver_with(3, &[]);
        // x1 ⊕ ¬x2 = 0 ⇔ x1 ≠ x2; x1 ⊕ x2 ⊕ x3 = 0; x1 = 1.
        assert!(s.add_xor(&[lit(1), lit(-2)], false));
        assert!(s.add_xor(&[lit(1), lit(2), lit(3)], false));
        assert!(s.add_xor(&[lit(1)], true));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(0)), Some(true));
        assert_eq!(s.value(Var::from_index(1)), Some(false));
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn xor_search_propagation_and_conflicts() {
        // Free variables force real decisions; the xor rows then propagate
        // and conflict during search rather than at add time.
        let mut s = solver_with(6, &[&[1, 2], &[3, 4], &[5, 6]]);
        assert!(s.add_xor(&[lit(1), lit(3), lit(5)], true));
        assert!(s.add_xor(&[lit(2), lit(4), lit(6)], true));
        assert!(s.add_xor(&[lit(1), lit(2), lit(3), lit(4)], false));
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = |code: i64| s.lit_model_value(lit(code)).unwrap();
        assert!(m(1) ^ m(3) ^ m(5));
        assert!(m(2) ^ m(4) ^ m(6));
        assert!(!(m(1) ^ m(2) ^ m(3) ^ m(4)));
        assert!(m(1) || m(2));
    }

    #[test]
    fn xor_with_assumptions_does_not_poison() {
        let mut s = solver_with(2, &[]);
        assert!(s.add_xor(&[lit(1), lit(2)], true));
        assert_eq!(s.solve_assuming(&[lit(1), lit(2)]), SolveResult::Unsat);
        assert!(s.is_ok());
        assert_eq!(s.solve_assuming(&[lit(1)]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(false));
        assert_eq!(s.solve_assuming(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn xor_constraint_stream_interface() {
        use crate::xor::{Constraint, XorClause};
        let mut s = solver_with(3, &[]);
        assert!(s.add_constraint(&Constraint::Clause(vec![lit(1), lit(2)])));
        assert!(s.add_constraint(&Constraint::Xor(XorClause::new(
            vec![lit(1), lit(2), lit(3)],
            true,
        ))));
        assert_eq!(s.num_xors(), 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = |code: i64| s.lit_model_value(lit(code)).unwrap();
        assert!(m(1) || m(2));
        assert!(m(1) ^ m(2) ^ m(3));
    }

    /// Exhaustive cross-check on small instances: random xor rows plus
    /// random clauses, solver answer vs brute-force enumeration. This
    /// drives the whole xor path — add-time elimination, watched-column
    /// propagation, reason materialization, conflict analysis — through
    /// thousands of states.
    #[test]
    fn xor_matches_brute_force_on_random_small_instances() {
        use gf2::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(0x0DDB1A5);
        for trial in 0..200u64 {
            let n = 3 + (trial as usize % 8); // 3..=10 vars
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            let mut xors: Vec<(Vec<usize>, bool)> = Vec::new();
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            let mut ok = true;
            for _ in 0..2 + rng.gen_index(n) {
                let k = 1 + rng.gen_index(n.min(4));
                let vars: Vec<usize> = (0..k).map(|_| rng.gen_index(n)).collect();
                let rhs = rng.gen_bool();
                let lits: Vec<Lit> = vars
                    .iter()
                    .map(|&v| Lit::new(Var::from_index(v), rng.gen_bool()))
                    .collect();
                // Track the *literal* parity: solver folds signs into rhs.
                let flips = lits.iter().filter(|l| !l.is_positive()).count();
                xors.push((vars.clone(), rhs ^ (flips % 2 == 1)));
                ok &= s.add_xor(&lits, rhs);
            }
            for _ in 0..rng.gen_index(2 * n) {
                let k = 1 + rng.gen_index(3);
                let c: Vec<(usize, bool)> =
                    (0..k).map(|_| (rng.gen_index(n), rng.gen_bool())).collect();
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| Lit::new(Var::from_index(v), pos))
                    .collect();
                clauses.push(c);
                ok &= s.add_clause(&lits);
            }

            let brute = (0..1u32 << n).any(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                xors.iter()
                    .all(|(vs, rhs)| vs.iter().fold(false, |acc, &v| acc ^ a[v]) == *rhs)
                    && clauses
                        .iter()
                        .all(|c| c.iter().any(|&(v, pos)| a[v] == pos))
            });
            let got = ok && s.solve() == SolveResult::Sat;
            assert_eq!(got, brute, "trial {trial} (n = {n}) diverged");
            if got {
                for (vs, rhs) in &xors {
                    let parity = vs
                        .iter()
                        .fold(false, |acc, &v| acc ^ s.value(Var::from_index(v)).unwrap());
                    assert_eq!(parity, *rhs, "trial {trial}: model violates an xor");
                }
            }
        }
    }

    #[test]
    fn wide_parity_bank_is_easy_natively() {
        // Two disagreeing 64-bit parities over the same variables, hidden
        // from add-time reduction by a fresh "selector" variable each, so
        // refutation needs search-time xor propagation. Plain CDCL over a
        // Tseitin expansion needs exponential resolution here.
        let mut s = Solver::new();
        let xs: Vec<Var> = (0..64).map(|_| s.new_var()).collect();
        let sel = [s.new_var(), s.new_var()];
        let mut even: Vec<Lit> = xs.iter().map(|&v| Lit::positive(v)).collect();
        even.push(Lit::positive(sel[0]));
        let mut odd: Vec<Lit> = xs.iter().map(|&v| Lit::positive(v)).collect();
        odd.push(Lit::positive(sel[1]));
        assert!(s.add_xor(&even, false));
        assert!(s.add_xor(&odd, true));
        // sel0 = sel1 = 0 makes the bank contradictory.
        assert!(s.add_clause(&[Lit::negative(sel[0])]));
        assert!(s.add_clause(&[Lit::negative(sel[1])]) || !s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut s = solver_with(2, &[&[1, 2]]);
        s.solve();
        let d1 = s.stats().decisions;
        s.solve();
        assert!(s.stats().decisions >= d1);
    }

    /// PHP(holes+1, holes): unsatisfiable with exponential resolution —
    /// a reliable conflict generator for budget tests.
    fn hard_unsat(holes: usize) -> Solver {
        let mut s = Solver::new();
        pigeonhole(&mut s, holes + 1, holes);
        s
    }

    #[test]
    fn conflict_budget_returns_unknown_and_solver_resumes() {
        let mut s = hard_unsat(7);
        let tight = Budget::new().with_conflicts(3);
        assert_eq!(s.solve_limited(&[], &tight), SolveResult::Unknown);
        assert_eq!(s.stats().budget_exhaustions, 1);
        assert!(s.is_ok(), "Unknown must not poison the solver");
        // The solver stays warm: an unlimited follow-up call finishes the
        // job, keeping the clauses learnt under the budgeted call.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.stats().budget_exhaustions, 1);
    }

    #[test]
    fn propagation_budget_trips() {
        let mut s = hard_unsat(7);
        let tight = Budget::new().with_propagations(5);
        assert_eq!(s.solve_limited(&[], &tight), SolveResult::Unknown);
        assert_eq!(s.stats().budget_exhaustions, 1);
    }

    #[test]
    fn unlimited_budget_matches_solve() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 3], &[-3]]);
        assert_eq!(s.solve_limited(&[], &Budget::new()), SolveResult::Sat);
        assert_eq!(s.stats().budget_exhaustions, 0);
    }

    #[test]
    fn budgeted_calls_accumulate_until_answer() {
        // Drive the same instance through many tiny budgets; each call
        // resumes from the previous one's learnt clauses and the total
        // eventually refutes the formula.
        let mut s = hard_unsat(5);
        let slice = Budget::new().with_conflicts(8);
        let mut rounds = 0u32;
        loop {
            match s.solve_limited(&[], &slice) {
                SolveResult::Unknown => {
                    rounds += 1;
                    assert!(rounds < 10_000, "budgeted loop failed to converge");
                }
                r => {
                    assert_eq!(r, SolveResult::Unsat);
                    break;
                }
            }
        }
        assert!(rounds > 0, "PHP(6,5) should not finish in 8 conflicts");
        assert_eq!(u64::from(rounds), s.stats().budget_exhaustions);
    }

    #[test]
    fn budget_respects_assumptions_across_resume() {
        // Unknown under assumptions must not leak the assumption into the
        // solver: a later call with the opposite assumption still works.
        let mut s = hard_unsat(6);
        let a = Lit::from_dimacs(1);
        let tight = Budget::new().with_conflicts(2);
        assert_eq!(s.solve_limited(&[a], &tight), SolveResult::Unknown);
        assert_eq!(s.solve_assuming(&[!a]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_clause_export_warm_starts_a_rebuild() {
        let mut s = hard_unsat(5);
        assert_eq!(
            s.solve_limited(&[], &Budget::new().with_conflicts(50)),
            SolveResult::Unknown
        );
        let learnt = s.learnt_clauses();
        assert!(!learnt.is_empty(), "50 conflicts should leave learnts");
        // Re-adding exported learnts to a fresh solver over the same
        // formula is sound: the answer is unchanged.
        let mut fresh = hard_unsat(5);
        for c in &learnt {
            fresh.add_clause(c);
        }
        assert_eq!(fresh.solve(), SolveResult::Unsat);
    }
}
