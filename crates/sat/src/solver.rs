//! The CDCL search core.
//!
//! Architecture follows MiniSat 2.2: a trail-based backtracking search with
//! two-watched-literal propagation, first-UIP clause learning, VSIDS
//! branching, phase saving, Luby restarts and activity-driven learnt-clause
//! database reduction. Clauses live in the [`ClauseDb`] arena; watch lists
//! and reasons hold [`ClauseRef`] handles and are remapped when the arena
//! compacts.

use std::collections::HashMap;

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::types::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] / [`Solver::solve_assuming`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable (under the assumptions, if any were
    /// given).
    Unsat,
}

/// Work counters accumulated over the lifetime of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation or decision (trail pushes).
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added (including unit learnts).
    pub learnt_clauses: u64,
    /// Literals removed from learnt clauses by reason-side minimization.
    pub minimized_literals: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

/// A watch-list entry: the watched clause plus a cached *blocker* literal
/// from the same clause. If the blocker is already true the clause cannot
/// be unit, and propagation skips it without touching the arena.
#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f32 = 0.999;
const VAR_RESCALE: f64 = 1e100;
const CLA_RESCALE: f32 = 1e20;
const RESTART_BASE: u64 = 100;

/// A conflict-driven clause-learning SAT solver.
///
/// See the crate-level documentation for the feature set and an example.
/// The solver is incremental: clauses may be added between `solve` calls
/// and each call may carry its own assumptions.
#[derive(Debug, Default)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by `lit.index()`: clauses to inspect when `lit`
    /// becomes **true** (they watch `¬lit`).
    watches: Vec<Vec<Watch>>,
    /// Current assignment, per variable.
    assigns: Vec<LBool>,
    /// Saved polarity, per variable (phase saving).
    phase: Vec<bool>,
    /// Implying clause, per assigned variable (`None` for decisions,
    /// assumptions and top-level units).
    reason: Vec<Option<ClauseRef>>,
    /// Decision level of the assignment, per assigned variable.
    level: Vec<u32>,
    /// Assignment stack in chronological order.
    trail: Vec<Lit>,
    /// `trail` index where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next `trail` position to propagate.
    qhead: usize,
    /// VSIDS activity, per variable.
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    cla_inc: f32,
    /// Live learnt clauses (for database reduction).
    learnts: Vec<ClauseRef>,
    max_learnts: f64,
    /// Per-variable scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// Literals whose `seen` marks must be cleared after analysis.
    analyze_toclear: Vec<Lit>,
    /// False once the clause set is known unsatisfiable at level 0.
    ok: bool,
    /// Model captured at the last `Sat` answer, per variable.
    model: Vec<Option<bool>>,
    stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            order: VarHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Introduces a fresh variable, initially unassigned with saved phase
    /// `false`.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len();
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.model.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(v + 1);
        self.order.insert(v, &self.activity);
        Var::from_index(v)
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem (non-learnt) clauses of length ≥ 2. Unit
    /// clauses are absorbed into the top-level assignment instead of being
    /// stored.
    pub fn num_clauses(&self) -> usize {
        self.db.num_original
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.db.num_learnt
    }

    /// Work counters.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Whether the clause set has been proven unsatisfiable at the top
    /// level (in which case every future [`Solver::solve`] call returns
    /// [`SolveResult::Unsat`] immediately).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The model value of `var` from the most recent [`SolveResult::Sat`]
    /// answer, or `None` if the last call did not return `Sat`.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.model[var.index()]
    }

    /// The model value of a literal (see [`Solver::value`]).
    pub fn lit_model_value(&self, lit: Lit) -> Option<bool> {
        self.model[lit.var().index()].map(|b| b == lit.is_positive())
    }

    /// Snapshots the current problem as a [`crate::dimacs::Cnf`]: the
    /// top-level assignment as unit clauses plus every live original
    /// clause. Learnt clauses are omitted (they are implied). Call between
    /// `solve` calls, i.e. at decision level 0.
    pub fn to_cnf(&self) -> crate::dimacs::Cnf {
        debug_assert_eq!(self.decision_level(), 0);
        let mut cnf = crate::dimacs::Cnf::new(self.num_vars());
        if !self.ok {
            cnf.add_clause(Vec::new());
            return cnf;
        }
        for &l in &self.trail {
            cnf.add_clause(vec![l]);
        }
        for cref in self.db.iter_refs() {
            if !self.db.is_learnt(cref) {
                let lits: Vec<Lit> = self
                    .db
                    .lits(cref)
                    .iter()
                    .map(|&raw| Lit::from_index(raw as usize))
                    .collect();
                cnf.add_clause(lits);
            }
        }
        cnf
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is now known unsatisfiable at the top
    /// level (e.g. the clause was empty after simplification, or a
    /// top-level propagation it triggered conflicted); `true` otherwise.
    /// Duplicate literals are removed, tautologies are dropped, and
    /// literals already false at level 0 are simplified away.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {}",
                l.var()
            );
        }

        // Sort by packed code: the two polarities of one variable become
        // adjacent, making duplicates and tautologies local checks.
        let mut simplified: Vec<Lit> = lits.to_vec();
        simplified.sort_unstable();
        simplified.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(simplified.len());
        for &l in &simplified {
            if out.last().is_some_and(|&prev| prev == !l) {
                return true; // tautology: contains l and ¬l
            }
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // falsified at level 0: drop
                LBool::Undef => out.push(l),
            }
        }

        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&out, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under `assumptions`: each assumption literal is forced true
    /// for this call only (they act as pre-made decisions). A
    /// [`SolveResult::Unsat`] answer under assumptions does **not** poison
    /// the solver — later calls with different assumptions may still be
    /// satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to a variable not created with
    /// [`Solver::new_var`].
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        debug_assert_eq!(self.decision_level(), 0);
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "unknown variable {}",
                l.var()
            );
        }
        for m in &mut self.model {
            *m = None;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        self.max_learnts = (self.db.num_original as f64 / 3.0).max(1000.0);

        let mut curr_restarts = 0u64;
        loop {
            let budget = RESTART_BASE * luby(2, curr_restarts);
            let status = self.search(budget, assumptions);
            match status {
                LBool::True => {
                    for (v, &a) in self.assigns.iter().enumerate() {
                        self.model[v] = match a {
                            LBool::True => Some(true),
                            LBool::False => Some(false),
                            // Unreachable in practice (search assigns every
                            // variable before answering Sat), but a default
                            // keeps the model total.
                            LBool::Undef => Some(false),
                        };
                    }
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                LBool::False => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                LBool::Undef => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Runs CDCL until SAT, UNSAT, or `max_conflicts` conflicts (restart).
    fn search(&mut self, max_conflicts: u64, assumptions: &[Lit]) -> LBool {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    // Conflict independent of any decision or assumption.
                    self.ok = false;
                    return LBool::False;
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.stats.learnt_clauses += 1;
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.db.alloc(&learnt, true);
                    self.learnts.push(cref);
                    self.attach_clause(cref);
                    self.cla_bump(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
            } else {
                if conflicts >= max_conflicts {
                    return LBool::Undef; // restart
                }
                if self.learnts.len() as f64 >= self.max_learnts {
                    self.reduce_db();
                }

                // Take the next unsatisfied assumption as the decision, or
                // fall back to VSIDS once all assumptions hold.
                let mut next: Option<Lit> = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already true: open a dummy level so the
                            // level ↔ assumption-index correspondence holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return LBool::False,
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(p) => p,
                        None => return LBool::True, // full assignment
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(next, None);
            }
        }
    }

    /// Current decision level.
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Picks an unassigned variable by VSIDS activity, signed by its saved
    /// phase.
    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v] == LBool::Undef {
                return Some(Lit::new(Var::from_index(v), self.phase[v]));
            }
        }
        None
    }

    /// Undoes all assignments above `level`, saving phases and returning
    /// variables to the order heap.
    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for idx in (lim..self.trail.len()).rev() {
            let p = self.trail[idx];
            let v = p.var().index();
            self.phase[v] = p.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = lim;
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Current truth value of a literal.
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_positive()),
            LBool::False => LBool::from_bool(!l.is_positive()),
        }
    }

    /// Records `p` as true at the current level with the given reason.
    fn unchecked_enqueue(&mut self, p: Lit, reason: Option<ClauseRef>) {
        let v = p.var().index();
        debug_assert_eq!(self.assigns[v], LBool::Undef);
        self.assigns[v] = LBool::from_bool(p.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(p);
        self.stats.propagations += 1;
    }

    /// Starts watching a clause on its first two literals.
    fn attach_clause(&mut self, cref: ClauseRef) {
        let c0 = self.db.lit(cref, 0);
        let c1 = self.db.lit(cref, 1);
        self.watches[(!c0).index()].push(Watch { cref, blocker: c1 });
        self.watches[(!c1).index()].push(Watch { cref, blocker: c0 });
    }

    /// Removes a clause's two watch entries.
    fn detach_clause(&mut self, cref: ClauseRef) {
        for i in 0..2 {
            let w = (!self.db.lit(cref, i)).index();
            let pos = self.watches[w]
                .iter()
                .position(|e| e.cref == cref)
                .expect("watch entry present");
            self.watches[w].swap_remove(pos);
        }
    }

    /// Propagates all enqueued assignments. Returns the conflicting clause
    /// if one is found, `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut confl: Option<ClauseRef> = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;

            // Take the list so the arena and other lists stay borrowable.
            // New watches are only ever pushed onto *other* literals' lists
            // (the replacement watch is never `¬p`).
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'next_watch: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Cheap pre-check: a true blocker means the clause is
                // already satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize: the falsified watched literal sits at slot 1.
                if self.db.lit(cref, 0) == false_lit {
                    let other = self.db.lit(cref, 1);
                    self.db.set_lit(cref, 0, other);
                    self.db.set_lit(cref, 1, false_lit);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watch {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in 2..self.db.len(cref) {
                    let l = self.db.lit(cref, k);
                    if self.lit_value(l) != LBool::False {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!l).index()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        continue 'next_watch;
                    }
                }
                // Clause is unit (or conflicting) under the current
                // assignment; keep the watch.
                ws[j] = Watch {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    confl = Some(cref);
                    self.qhead = self.trail.len();
                    // Copy the rest of the list back verbatim.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if confl.is_some() {
                break;
            }
        }
        confl
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // slot 0 = asserting lit
        let mut counter = 0usize; // literals of the current level still to resolve
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            if self.db.is_learnt(confl) {
                self.cla_bump(confl);
            }
            // Skip slot 0 (the literal this clause propagated) on reason
            // clauses; scan everything on the original conflict.
            let start = usize::from(p.is_some());
            for k in start..self.db.len(confl) {
                let q = self.db.lit(confl, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.var_bump(v);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pivot = self.trail[index];
            let v = pivot.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pivot; // the first UIP
                break;
            }
            p = Some(pivot);
            confl = self.reason[v].expect("non-decision literal has a reason");
        }

        // Reason-side minimization: drop any learnt literal whose negation
        // is implied by the rest of the clause through reason chains.
        self.analyze_toclear = learnt.clone();
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |m, l| m | self.abstract_level(l.var().index()));
        let before = learnt.len();
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reason[l.var().index()].is_none() || !self.lit_redundant(l, abstract_levels) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);
        self.stats.minimized_literals += (before - learnt.len()) as u64;

        // Clear the scratch marks (including those set by lit_redundant).
        for idx in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[idx].var().index();
            self.seen[v] = false;
        }
        self.analyze_toclear.clear();

        // Backtrack level: the second-highest level in the clause; that
        // literal moves to slot 1 so it is watched after attachment.
        if learnt.len() == 1 {
            return (learnt, 0);
        }
        let mut max_i = 1;
        for i in 2..learnt.len() {
            if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                max_i = i;
            }
        }
        learnt.swap(1, max_i);
        let backtrack = self.level[learnt[1].var().index()] as usize;
        (learnt, backtrack)
    }

    /// One-hot abstraction of a decision level, for the cheap set test in
    /// [`Solver::lit_redundant`].
    fn abstract_level(&self, v: usize) -> u32 {
        1 << (self.level[v] & 31)
    }

    /// Whether `p` is redundant in the learnt clause: every path from `p`
    /// through reason clauses bottoms out in level-0 facts or literals
    /// already in the clause (recursive check, MiniSat's `litRedundant`).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        let mut stack = vec![p];
        let top = self.analyze_toclear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("redundancy walk stays on implied lits");
            for k in 1..self.db.len(cref) {
                let l = self.db.lit(cref, k);
                let v = l.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                if self.reason[v].is_some() && (self.abstract_level(v) & abstract_levels) != 0 {
                    self.seen[v] = true;
                    stack.push(l);
                    self.analyze_toclear.push(l);
                } else {
                    // Not provably redundant: undo this walk's marks.
                    for idx in top..self.analyze_toclear.len() {
                        let u = self.analyze_toclear[idx].var().index();
                        self.seen[u] = false;
                    }
                    self.analyze_toclear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    /// Bumps a variable's VSIDS activity and restores heap order.
    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > VAR_RESCALE {
            for a in &mut self.activity {
                *a /= VAR_RESCALE;
            }
            self.var_inc /= VAR_RESCALE;
        }
        self.order.update(v, &self.activity);
    }

    /// Bumps a learnt clause's activity.
    fn cla_bump(&mut self, cref: ClauseRef) {
        let a = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, a);
        if a > CLA_RESCALE {
            for i in 0..self.learnts.len() {
                let c = self.learnts[i];
                let scaled = self.db.activity(c) / CLA_RESCALE;
                self.db.set_activity(c, scaled);
            }
            self.cla_inc /= CLA_RESCALE;
        }
    }

    // ------------------------------------------------------------------
    // Learnt database management
    // ------------------------------------------------------------------

    /// Whether a clause is the reason for its first literal's assignment
    /// (such clauses must survive database reduction).
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let c0 = self.db.lit(cref, 0);
        self.lit_value(c0) == LBool::True && self.reason[c0.var().index()] == Some(cref)
    }

    /// Deletes roughly half of the learnt clauses, lowest activity first.
    /// Binary and locked clauses are kept. Compacts the arena when a
    /// quarter of it is garbage.
    fn reduce_db(&mut self) {
        let learnts = {
            let mut ls = std::mem::take(&mut self.learnts);
            let db = &self.db;
            ls.sort_by(|&a, &b| {
                db.activity(a)
                    .partial_cmp(&db.activity(b))
                    .expect("clause activities are finite")
            });
            ls
        };
        let half = learnts.len() / 2;
        let extra_lim = self.cla_inc / learnts.len().max(1) as f32;
        let mut kept = Vec::with_capacity(learnts.len());
        for (i, &cref) in learnts.iter().enumerate() {
            let disposable = self.db.len(cref) > 2 && !self.is_locked(cref);
            if disposable && (i < half || self.db.activity(cref) < extra_lim) {
                self.detach_clause(cref);
                self.db.delete(cref);
                self.stats.deleted_clauses += 1;
            } else {
                kept.push(cref);
            }
        }
        self.learnts = kept;
        self.max_learnts *= 1.1;

        if self.db.wasted * 4 > self.db.arena_words() {
            self.compact();
        }
    }

    /// Compacts the clause arena and remaps every stored [`ClauseRef`].
    fn compact(&mut self) {
        let mut map: HashMap<ClauseRef, ClauseRef> = HashMap::new();
        self.db.compact(|old, new| {
            map.insert(old, new);
        });
        for ws in &mut self.watches {
            for w in ws {
                w.cref = map[&w.cref];
            }
        }
        for r in self.reason.iter_mut().flatten() {
            *r = map[r];
        }
        for c in &mut self.learnts {
            *c = map[c];
        }
    }
}

/// The Luby restart sequence scaled by `y`: `y^luby_exponent(i)`
/// (1, 1, 2, 1, 1, 2, 4, ... for `y = 2`).
fn luby(y: u64, mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: i64) -> Lit {
        Lit::from_dimacs(code)
    }

    /// Builds a solver with `n` vars and the given DIMACS-coded clauses.
    fn solver_with(n: usize, clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&x| lit(x)).collect();
            s.add_clause(&lits);
        }
        s
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..9).map(|i| luby(2, i)).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(0)), Some(true));
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert!(!s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = solver_with(1, &[]);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = solver_with(2, &[&[1, -1]]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut s = solver_with(2, &[&[1, 1, 2, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let a = s.value(Var::from_index(0)).unwrap();
        let b = s.value(Var::from_index(1)).unwrap();
        assert!(a || b);
    }

    #[test]
    fn xor_chain_forces_search() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsatisfiable.
        let mut s = solver_with(
            3,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]],
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i64]] = &[
            &[1, 2, -3],
            &[-1, 3],
            &[-2, 3],
            &[1, -2],
            &[2, -4, 5],
            &[-5, 4],
        ];
        let mut s = solver_with(5, clauses);
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in clauses {
            assert!(
                c.iter()
                    .any(|&code| s.lit_model_value(lit(code)) == Some(true)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn assumptions_do_not_poison() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve_assuming(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert!(s.is_ok());
        assert_eq!(s.solve_assuming(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = solver_with(1, &[]);
        assert_eq!(s.solve_assuming(&[lit(1), lit(-1)]), SolveResult::Unsat);
        assert!(s.is_ok());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
        assert!(s.add_clause(&[lit(-2)]) || !s.is_ok());
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once top-level unsat, it stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_cleared_on_unsat() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(Var::from_index(0)).is_some());
        assert_eq!(s.solve_assuming(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert_eq!(s.value(Var::from_index(0)), None);
    }

    /// Pigeonhole principle instance: `pigeons` pigeons into `holes` holes.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let vars: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in &vars {
            let c: Vec<Lit> = p.iter().map(|&v| Lit::positive(v)).collect();
            s.add_clause(&c);
        }
        for h in 0..holes {
            for (i, pi) in vars.iter().enumerate() {
                for pj in vars.iter().skip(i + 1) {
                    s.add_clause(&[Lit::negative(pi[h]), Lit::negative(pj[h])]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat_exercises_learning() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = *s.stats();
        assert!(st.conflicts > 0, "expected a real search: {st:?}");
        assert!(st.learnt_clauses > 0);
        assert!(st.decisions > 0);
    }

    #[test]
    fn pigeonhole_sat_when_room() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut s = solver_with(2, &[&[1, 2]]);
        s.solve();
        let d1 = s.stats().decisions;
        s.solve();
        assert!(s.stats().decisions >= d1);
    }
}
