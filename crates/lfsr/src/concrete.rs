//! Concrete (bit-level) LFSR simulation.

use gf2::BitVec;

use crate::TapSet;

/// A Fibonacci LFSR: on each step the register shifts by one and bit 0
/// receives the XOR of the tapped bits.
///
/// This is the PRNG inside the EFF-Dyn key selector (paper Fig. 2); the
/// locked chip steps it on **every** clock edge — shift and capture alike.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use lfsr::{Lfsr, TapSet};
///
/// let taps = TapSet::new(3, vec![1, 2]).unwrap(); // the paper's 3-bit demo
/// let mut l = Lfsr::new(taps, BitVec::from_u64(3, 0b001));
/// l.step();
/// // s'[0] = s[1]^s[2] = 0, s'[1] = s[0] = 1, s'[2] = s[1] = 0
/// assert_eq!(l.state().to_bools(), vec![false, true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    taps: TapSet,
    state: BitVec,
    steps: u64,
}

impl Lfsr {
    /// Creates an LFSR with the given seed as initial state.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != taps.width()`.
    pub fn new(taps: TapSet, seed: BitVec) -> Self {
        assert_eq!(seed.len(), taps.width(), "seed width mismatch");
        Lfsr {
            taps,
            state: seed,
            steps: 0,
        }
    }

    /// The tap set.
    pub fn taps(&self) -> &TapSet {
        &self.taps
    }

    /// Current state; bit `j` drives key gate `j` in the locked chip.
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// Number of steps taken since construction or the last reseed.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Reads state bit `j`.
    pub fn bit(&self, j: usize) -> bool {
        self.state.get(j)
    }

    /// Advances one clock.
    ///
    /// The register shift runs at word level (`s'[j] = s[j-1]` is one
    /// left-shift-with-carry per 64 bits); only the tap reads and the new
    /// bit 0 touch individual bits.
    pub fn step(&mut self) {
        let feedback = self
            .taps
            .taps()
            .iter()
            .fold(false, |acc, &t| acc ^ self.state.get(t));
        shift_up_words(&mut self.state);
        self.state.set(0, feedback);
        self.steps += 1;
    }

    /// Advances `n` clocks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets to a new seed (models power-on reset of the locked chip).
    ///
    /// # Panics
    ///
    /// Panics if the seed width mismatches.
    pub fn reseed(&mut self, seed: BitVec) {
        assert_eq!(seed.len(), self.taps.width(), "seed width mismatch");
        self.state = seed;
        self.steps = 0;
    }
}

/// A Galois LFSR over the same tap positions: the shifted-out bit is XORed
/// into the tapped positions instead of the tapped positions feeding the
/// input bit. Provided for completeness (some DOS-style implementations
/// use the Galois form); the attack model consumes any linear update
/// through its companion matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr {
    taps: TapSet,
    state: BitVec,
}

impl GaloisLfsr {
    /// Creates a Galois LFSR with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != taps.width()`.
    pub fn new(taps: TapSet, seed: BitVec) -> Self {
        assert_eq!(seed.len(), taps.width(), "seed width mismatch");
        GaloisLfsr { taps, state: seed }
    }

    /// Current state.
    pub fn state(&self) -> &BitVec {
        &self.state
    }

    /// Advances one clock: shift up; if the dropped bit (`width-1`) was
    /// set, XOR it into every tapped position (after the shift), and into
    /// bit 0.
    pub fn step(&mut self) {
        let w = self.state.len();
        let dropped = self.state.get(w - 1);
        shift_up_words(&mut self.state);
        if dropped {
            self.state.flip(0);
            for &t in self.taps.taps() {
                if t != w - 1 {
                    self.state.flip(t + 1);
                }
            }
        }
    }
}

/// Word-level register shift `s'[j] = s[j-1]` with `s'[0] = 0`: each word
/// shifts left by one and takes the previous word's top bit as carry.
fn shift_up_words(state: &mut BitVec) {
    let mut carry = 0u64;
    for w in state.as_words_mut() {
        let next_carry = *w >> 63;
        *w = (*w << 1) | carry;
        carry = next_carry;
    }
    // the shift can push a live bit past `len` inside the last word
    state.mask_tail();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{Rng64, SplitMix64};

    fn taps3() -> TapSet {
        TapSet::new(3, vec![1, 2]).unwrap()
    }

    #[test]
    fn paper_three_bit_sequence() {
        // Walk the 3-bit LFSR of paper Fig. 1 by hand:
        // state (s0,s1,s2), update s0' = s1^s2, shift others.
        let mut l = Lfsr::new(taps3(), BitVec::from_bools([true, false, false]));
        let expected = [
            [false, true, false],
            [true, false, true],
            [true, true, false],
            [true, true, true],
            [false, true, true],
            [false, false, true],
            [true, false, false], // back to the seed: period 7
        ];
        for (i, exp) in expected.iter().enumerate() {
            l.step();
            assert_eq!(l.state().to_bools(), exp.to_vec(), "step {}", i + 1);
        }
        assert_eq!(l.steps_taken(), 7);
    }

    #[test]
    fn zero_state_is_fixed_point() {
        let mut l = Lfsr::new(taps3(), BitVec::zeros(3));
        l.run(10);
        assert!(l.state().is_zero());
    }

    #[test]
    fn step_matches_companion_matrix_power() {
        let taps = TapSet::maximal(16).unwrap();
        let a = taps.companion_matrix();
        let mut rng = SplitMix64::new(4);
        let seed = BitVec::random(16, &mut rng);
        let mut l = Lfsr::new(taps, seed.clone());
        l.run(37);
        assert_eq!(l.state(), &a.pow(37).mul_vec(&seed));
    }

    #[test]
    fn reseed_resets_step_count() {
        let mut l = Lfsr::new(taps3(), BitVec::from_u64(3, 0b101));
        l.run(5);
        l.reseed(BitVec::from_u64(3, 0b011));
        assert_eq!(l.steps_taken(), 0);
        assert_eq!(l.state(), &BitVec::from_u64(3, 0b011));
    }

    #[test]
    fn run_is_linear_in_seed() {
        // L(s1 ^ s2) = L(s1) ^ L(s2) after any number of steps.
        let taps = TapSet::maximal(12).unwrap();
        let mut rng = SplitMix64::new(8);
        let s1 = BitVec::random(12, &mut rng);
        let s2 = BitVec::random(12, &mut rng);
        let mut sx = s1.clone();
        sx.xor_assign(&s2);
        let mut l1 = Lfsr::new(taps.clone(), s1);
        let mut l2 = Lfsr::new(taps.clone(), s2);
        let mut lx = Lfsr::new(taps, sx);
        for _ in 0..50 {
            l1.step();
            l2.step();
            lx.step();
        }
        let mut sum = l1.state().clone();
        sum.xor_assign(l2.state());
        assert_eq!(&sum, lx.state());
    }

    #[test]
    fn galois_step_is_invertible_walk() {
        // A Galois LFSR with valid taps must not collapse two states: walk
        // 1000 steps and require all distinct from a nonzero start.
        let taps = TapSet::maximal(12).unwrap();
        let mut g = GaloisLfsr::new(taps, BitVec::unit(12, 3));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(g.state().clone()), "state repeated early");
            g.step();
        }
    }

    #[test]
    fn galois_zero_fixed_point() {
        let taps = TapSet::maximal(8).unwrap();
        let mut g = GaloisLfsr::new(taps, BitVec::zeros(8));
        g.step();
        assert!(g.state().is_zero());
    }

    #[test]
    fn word_shift_matches_bit_shift_at_awkward_widths() {
        // Cross-check the word-level register shift against a bit-by-bit
        // reference at widths straddling word boundaries.
        for width in [3usize, 63, 64, 65, 67, 100, 130] {
            let taps = if width == 3 {
                taps3()
            } else {
                TapSet::new(width, vec![width / 2, width - 1]).unwrap()
            };
            let mut rng = SplitMix64::new(width as u64);
            let seed = BitVec::random(width, &mut rng);
            let mut fast = Lfsr::new(taps.clone(), seed.clone());
            let mut slow = seed;
            for step in 0..200 {
                let feedback = taps.taps().iter().fold(false, |acc, &t| acc ^ slow.get(t));
                for j in (1..width).rev() {
                    let below = slow.get(j - 1);
                    slow.set(j, below);
                }
                slow.set(0, feedback);
                fast.step();
                assert_eq!(fast.state(), &slow, "width {width} step {step}");
            }
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let taps = TapSet::maximal(16).unwrap();
        let mut rng = SplitMix64::new(6);
        let s1 = BitVec::random(16, &mut rng);
        let mut s2 = s1.clone();
        s2.flip(rng.gen_index(16));
        let mut l1 = Lfsr::new(taps.clone(), s1);
        let mut l2 = Lfsr::new(taps, s2);
        let mut diverged = false;
        for _ in 0..32 {
            if l1.state() != l2.state() {
                diverged = true;
            }
            l1.step();
            l2.step();
        }
        assert!(diverged);
    }
}
