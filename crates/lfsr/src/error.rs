//! Error type for LFSR construction.

use std::fmt;

/// Errors from constructing LFSR tap sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LfsrError {
    /// Width must be at least 2.
    WidthTooSmall {
        /// The rejected width.
        width: usize,
    },
    /// A tap position is outside `0..width`.
    TapOutOfRange {
        /// The offending tap.
        tap: usize,
        /// Register width.
        width: usize,
    },
    /// The tap set must include `width - 1` so the update is invertible
    /// (the bit shifted out must feed back).
    NotInvertible,
    /// Tap set is empty.
    NoTaps,
    /// No tap set reaching the requested period was found within the
    /// search budget.
    PeriodSearchFailed {
        /// Requested minimum period.
        min_period: u64,
    },
}

impl fmt::Display for LfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsrError::WidthTooSmall { width } => {
                write!(f, "LFSR width {width} is too small (need ≥ 2)")
            }
            LfsrError::TapOutOfRange { tap, width } => {
                write!(f, "tap {tap} out of range for width {width}")
            }
            LfsrError::NotInvertible => {
                write!(f, "tap set must include width-1 for an invertible update")
            }
            LfsrError::NoTaps => write!(f, "tap set is empty"),
            LfsrError::PeriodSearchFailed { min_period } => {
                write!(f, "no tap set with period ≥ {min_period} found")
            }
        }
    }
}

impl std::error::Error for LfsrError {}
