//! Seed recovery from scattered key-stream observations.
//!
//! If an attacker learns (or hypothesizes) the value of LFSR bit `j` at
//! cycle `t` — for any collection of `(t, j)` pairs — each observation is
//! one linear equation `row_j(A^t) · seed = bit`. Gaussian elimination
//! then pins the seed once `width` independent equations accumulate.
//!
//! The SAT attack produces such information implicitly (the CNF the paper
//! dumps "may reveal some of the seed bits"); this module is the explicit
//! linear-algebra version, used by tests, by the brute-force refinement
//! stage, and as a standalone demonstration of why per-cycle re-keying
//! adds no entropy beyond the seed.

use gf2::{BitVec, LinSolution, LinSolver, SolveError};

use crate::{SymbolicLfsr, TapSet};

/// One observed key-stream bit: LFSR bit `bit_index` at cycle `cycle` had
/// value `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Cycle count after reset (0 = the seed itself).
    pub cycle: u64,
    /// Which state bit was observed.
    pub bit_index: usize,
    /// The observed value.
    pub value: bool,
}

/// Incrementally recovers an LFSR seed from observations.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
/// use lfsr::{Lfsr, TapSet};
/// use lfsr::recover::{Observation, SeedRecovery};
///
/// let taps = TapSet::maximal(8).unwrap();
/// let secret = BitVec::from_u64(8, 0b1011_0010);
/// let mut chip = Lfsr::new(taps.clone(), secret.clone());
/// let mut rec = SeedRecovery::new(taps);
///
/// // watch bit 0 for 8 consecutive cycles
/// for cycle in 0..8 {
///     rec.observe(Observation { cycle, bit_index: 0, value: chip.bit(0) }).unwrap();
///     chip.step();
/// }
/// assert_eq!(rec.unique_seed(), Some(secret));
/// ```
#[derive(Debug, Clone)]
pub struct SeedRecovery {
    taps: TapSet,
    solver: LinSolver,
    /// Cached symbolic register, advanced monotonically; observations at
    /// earlier cycles restart it (rare in practice).
    sym: SymbolicLfsr,
}

impl SeedRecovery {
    /// Starts a recovery for the given register structure (the attacker
    /// knows the taps from reverse engineering — threat-model assumption).
    pub fn new(taps: TapSet) -> Self {
        SeedRecovery {
            sym: SymbolicLfsr::new(taps.clone()),
            solver: LinSolver::new(taps.width()),
            taps,
        }
    }

    /// Adds one observation.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the observation contradicts earlier ones
    /// (meaning the observations did not come from one seed, or the tap
    /// model is wrong).
    pub fn observe(&mut self, obs: Observation) -> Result<bool, SolveError> {
        let row = self.row_at(obs.cycle, obs.bit_index);
        self.solver.add_equation(row, obs.value)
    }

    /// Adds one observed *linear form*: `row · seed = value` for an
    /// arbitrary coefficient row over the seed bits.
    ///
    /// Single key-stream bits are the `row_j(A^t)` special case handled by
    /// [`observe`](SeedRecovery::observe); attacks that watch a bit only
    /// through XOR masks (DynUnlock's affine session masks are XORs of
    /// several keystream bits) learn sums of such rows instead, and feed
    /// them in here. Returns whether the equation was independent.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the equation contradicts earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the register width.
    pub fn observe_form(&mut self, row: BitVec, value: bool) -> Result<bool, SolveError> {
        self.solver.add_equation(row, value)
    }

    /// Adds one observed XOR of key-stream bits: the sum over GF(2) of
    /// LFSR bit `j` at cycle `t` for every `(t, j)` in `terms` equals
    /// `value`.
    ///
    /// Convenience wrapper building the coefficient row for
    /// [`observe_form`](SeedRecovery::observe_form) from the symbolic
    /// register. A term repeated an even number of times cancels, as XOR
    /// demands.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] on contradiction with earlier observations.
    pub fn observe_combination(
        &mut self,
        terms: &[(u64, usize)],
        value: bool,
    ) -> Result<bool, SolveError> {
        let mut row = BitVec::zeros(self.taps.width());
        for &(cycle, bit) in terms {
            row.xor_assign(&self.row_at(cycle, bit));
        }
        self.observe_form(row, value)
    }

    /// Adds a batch of observations, returning how many were independent.
    ///
    /// Observations are sorted by cycle first so the cached symbolic
    /// register advances monotonically (one word-parallel
    /// [`SymbolicLfsr::run`] sweep) instead of restarting on every
    /// out-of-order cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] at the first contradictory observation; all
    /// observations before it (in cycle order) remain incorporated.
    pub fn observe_all(
        &mut self,
        obs: impl IntoIterator<Item = Observation>,
    ) -> Result<usize, SolveError> {
        let mut batch: Vec<Observation> = obs.into_iter().collect();
        batch.sort_by_key(|o| o.cycle);
        let mut independent = 0;
        for o in batch {
            if self.observe(o)? {
                independent += 1;
            }
        }
        Ok(independent)
    }

    /// Number of independent equations gathered so far.
    pub fn rank(&self) -> usize {
        self.solver.rank()
    }

    /// Number of seed candidates still consistent (`2^nullity`), saturated
    /// at `u128::MAX`.
    pub fn candidate_count(&self) -> u128 {
        self.solution().count()
    }

    /// The affine solution set.
    pub fn solution(&self) -> LinSolution {
        self.solver
            .solve()
            .expect("solver state is consistent by construction")
    }

    /// The seed, if uniquely determined.
    pub fn unique_seed(&self) -> Option<BitVec> {
        let sol = self.solution();
        sol.nullspace.is_empty().then_some(sol.particular)
    }

    /// Value of seed bit `bit_index` if the equations gathered so far pin
    /// it uniquely, even when the full seed is still ambiguous. This is
    /// the per-bit confidence signal a partial attack result reports:
    /// `Some` bits are certain, `None` bits are still free.
    ///
    /// # Panics
    ///
    /// Panics if `bit_index` is outside the register width.
    pub fn pinned_bit(&self, bit_index: usize) -> Option<bool> {
        assert!(bit_index < self.taps.width(), "bit index out of range");
        self.solver.pinned_value(bit_index)
    }

    /// Enumerates up to `cap` candidate seeds.
    pub fn candidates(&self, cap: usize) -> Vec<BitVec> {
        self.solution().enumerate(cap)
    }

    fn row_at(&mut self, cycle: u64, bit_index: usize) -> BitVec {
        assert!(bit_index < self.taps.width(), "bit index out of range");
        if self.sym.steps_taken() > cycle {
            self.sym = SymbolicLfsr::new(self.taps.clone());
        }
        self.sym.run(cycle - self.sym.steps_taken());
        self.sym.row(bit_index).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lfsr;
    use gf2::{Rng64, SplitMix64};

    fn watch(
        taps: &TapSet,
        secret: &BitVec,
        cycles: impl IntoIterator<Item = (u64, usize)>,
    ) -> SeedRecovery {
        let mut rec = SeedRecovery::new(taps.clone());
        let mut chip = Lfsr::new(taps.clone(), secret.clone());
        let mut obs: Vec<(u64, usize)> = cycles.into_iter().collect();
        obs.sort_unstable();
        for (cycle, bit) in obs {
            chip.run(cycle - chip.steps_taken());
            rec.observe(Observation {
                cycle,
                bit_index: bit,
                value: chip.bit(bit),
            })
            .expect("honest observations are consistent");
        }
        rec
    }

    #[test]
    fn consecutive_bit0_observations_pin_seed() {
        let taps = TapSet::maximal(16).unwrap();
        let secret = BitVec::from_u64(16, 0xBEEF);
        let rec = watch(&taps, &secret, (0..16).map(|c| (c, 0)));
        assert_eq!(rec.unique_seed(), Some(secret));
    }

    #[test]
    fn scattered_observations_also_work() {
        let taps = TapSet::maximal(12).unwrap();
        let mut rng = SplitMix64::new(7);
        let secret = BitVec::random(12, &mut rng);
        // random (cycle, bit) pairs; 30 of them almost surely span 12 dims
        let obs: Vec<(u64, usize)> = (0..30)
            .map(|_| (rng.gen_range(200), rng.gen_index(12)))
            .collect();
        let rec = watch(&taps, &secret, obs);
        assert_eq!(rec.unique_seed(), Some(secret));
    }

    #[test]
    fn underdetermined_keeps_true_seed_among_candidates() {
        let taps = TapSet::maximal(10).unwrap();
        let secret = BitVec::from_u64(10, 0b11_0110_0101 & 0x3FF);
        let rec = watch(&taps, &secret, (0..6).map(|c| (c, 0)));
        assert!(rec.unique_seed().is_none());
        assert_eq!(rec.candidate_count(), 1 << 4);
        let cands = rec.candidates(1 << 10);
        assert!(cands.contains(&secret));
    }

    #[test]
    fn pinned_bits_track_partial_knowledge() {
        let taps = TapSet::maximal(10).unwrap();
        let secret = BitVec::from_u64(10, 0b11_0110_0101 & 0x3FF);
        // Cycle-0 observations of bits 0..4 pin exactly those seed bits.
        let rec = watch(&taps, &secret, (0..4).map(|b| (0, b as usize)));
        for b in 0..4 {
            assert_eq!(rec.pinned_bit(b), Some(secret.get(b)), "bit {b}");
        }
        assert!(
            (4..10).all(|b| rec.pinned_bit(b).is_none()),
            "unobserved bits must stay free"
        );
        // Full watch pins everything, consistently with unique_seed.
        let full = watch(&taps, &secret, (0..10).map(|c| (c, 0)));
        let seed = full.unique_seed().unwrap();
        for b in 0..10 {
            assert_eq!(full.pinned_bit(b), Some(seed.get(b)));
        }
    }

    #[test]
    fn contradiction_is_reported() {
        let taps = TapSet::maximal(8).unwrap();
        let mut rec = SeedRecovery::new(taps);
        rec.observe(Observation {
            cycle: 0,
            bit_index: 3,
            value: true,
        })
        .unwrap();
        let err = rec.observe(Observation {
            cycle: 0,
            bit_index: 3,
            value: false,
        });
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_observation_is_dependent() {
        let taps = TapSet::maximal(8).unwrap();
        let mut rec = SeedRecovery::new(taps);
        assert!(rec
            .observe(Observation {
                cycle: 5,
                bit_index: 2,
                value: true
            })
            .unwrap());
        assert!(!rec
            .observe(Observation {
                cycle: 5,
                bit_index: 2,
                value: true
            })
            .unwrap());
        assert_eq!(rec.rank(), 1);
    }

    #[test]
    fn observe_all_matches_one_at_a_time() {
        let taps = TapSet::maximal(12).unwrap();
        let mut rng = SplitMix64::new(13);
        let secret = BitVec::random(12, &mut rng);
        let pairs: Vec<(u64, usize)> = (0..25)
            .map(|_| (rng.gen_range(100), rng.gen_index(12)))
            .collect();
        // collect the true values
        let mut chip = Lfsr::new(taps.clone(), secret.clone());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        let mut values = std::collections::HashMap::new();
        for &(cycle, bit) in &sorted {
            chip.run(cycle - chip.steps_taken());
            values.insert((cycle, bit), chip.bit(bit));
        }
        let observations: Vec<Observation> = pairs
            .iter()
            .map(|&(cycle, bit)| Observation {
                cycle,
                bit_index: bit,
                value: values[&(cycle, bit)],
            })
            .collect();

        // batch (deliberately unsorted input)
        let mut batch = SeedRecovery::new(taps.clone());
        let independent = batch.observe_all(observations.clone()).unwrap();
        assert_eq!(independent, batch.rank());

        // one-at-a-time reference, sorted ascending
        let mut single = SeedRecovery::new(taps);
        let mut obs_sorted = observations;
        obs_sorted.sort_by_key(|o| o.cycle);
        for o in obs_sorted {
            single.observe(o).unwrap();
        }
        assert_eq!(batch.rank(), single.rank());
        assert_eq!(batch.solution(), single.solution());
    }

    #[test]
    fn observe_all_reports_contradiction() {
        let taps = TapSet::maximal(8).unwrap();
        let mut rec = SeedRecovery::new(taps);
        let err = rec.observe_all([
            Observation {
                cycle: 2,
                bit_index: 1,
                value: true,
            },
            Observation {
                cycle: 2,
                bit_index: 1,
                value: false,
            },
        ]);
        assert!(err.is_err());
        assert_eq!(rec.rank(), 1, "first observation survives");
    }

    #[test]
    fn observed_forms_pin_seed() {
        // Watch only XORs of keystream bits (as a masked scan chain would
        // expose) and still recover the seed.
        let taps = TapSet::maximal(12).unwrap();
        let mut rng = SplitMix64::new(21);
        let secret = BitVec::random(12, &mut rng);
        let mut rec = SeedRecovery::new(taps.clone());
        let mut chip = Lfsr::new(taps, secret.clone());
        let mut stream = Vec::new(); // (cycle, bit) -> value, bits 0..3
        for cycle in 0..40u64 {
            for bit in 0..3 {
                stream.push(((cycle, bit), chip.bit(bit)));
            }
            chip.step();
        }
        while rec.unique_seed().is_none() {
            let k = 2 + rng.gen_index(3);
            let picks: Vec<usize> = (0..k).map(|_| rng.gen_index(stream.len())).collect();
            let terms: Vec<(u64, usize)> = picks.iter().map(|&i| stream[i].0).collect();
            let value = picks.iter().fold(false, |acc, &i| acc ^ stream[i].1);
            rec.observe_combination(&terms, value)
                .expect("honest combinations are consistent");
        }
        assert_eq!(rec.unique_seed(), Some(secret));
    }

    #[test]
    fn repeated_terms_cancel() {
        let taps = TapSet::maximal(8).unwrap();
        let mut rec = SeedRecovery::new(taps);
        // x ⊕ x = 0: an even repetition is the trivially-true equation...
        assert!(!rec.observe_combination(&[(3, 1), (3, 1)], false).unwrap());
        assert_eq!(rec.rank(), 0);
        // ...and claiming it equals 1 is a contradiction.
        assert!(rec.observe_combination(&[(3, 1), (3, 1)], true).is_err());
    }

    #[test]
    fn observe_form_matches_observe() {
        let taps = TapSet::maximal(10).unwrap();
        let secret = BitVec::from_u64(10, 0x155 & 0x3FF);
        let mut chip = Lfsr::new(taps.clone(), secret.clone());
        let mut via_obs = SeedRecovery::new(taps.clone());
        let mut via_form = SeedRecovery::new(taps);
        for cycle in 0..10u64 {
            let value = chip.bit(0);
            via_obs
                .observe(Observation {
                    cycle,
                    bit_index: 0,
                    value,
                })
                .unwrap();
            let row = via_form.row_at(cycle, 0);
            via_form.observe_form(row, value).unwrap();
            chip.step();
        }
        assert_eq!(via_obs.rank(), via_form.rank());
        assert_eq!(via_obs.solution(), via_form.solution());
        assert_eq!(via_form.unique_seed(), Some(secret));
    }

    #[test]
    fn out_of_order_cycles_allowed() {
        let taps = TapSet::maximal(10).unwrap();
        let secret = BitVec::from_u64(10, 0x2A5 & 0x3FF);
        // descending cycle order forces the symbolic register restart path
        let mut rec = SeedRecovery::new(taps.clone());
        let mut chip = Lfsr::new(taps, secret.clone());
        let mut values = Vec::new();
        for _ in 0..10u64 {
            values.push(chip.bit(0));
            chip.step();
        }
        for c in (0..10u64).rev() {
            rec.observe(Observation {
                cycle: c,
                bit_index: 0,
                value: values[c as usize],
            })
            .unwrap();
        }
        assert_eq!(rec.unique_seed(), Some(secret));
    }
}
