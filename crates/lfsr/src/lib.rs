//! Linear feedback shift registers: the defense's PRNG and the attack's
//! linear model of it.
//!
//! EFF-Dyn generates a fresh key every clock cycle from an LFSR seeded
//! with the 128-bit secret. Because an LFSR is linear over GF(2), every
//! key bit at every cycle is a known XOR of seed bits — the observation
//! DynUnlock is built on. This crate provides:
//!
//! * [`TapSet`] — validated feedback tap positions, known maximal-length
//!   sets for common widths, and verified generation for arbitrary widths
//!   (the paper sweeps key sizes 128–368);
//! * [`Lfsr`] — the concrete Fibonacci LFSR the locked chip clocks;
//! * [`GaloisLfsr`] — the Galois form, for completeness;
//! * [`SymbolicLfsr`] — every state bit at every cycle as a [`gf2::BitVec`]
//!   linear form over the seed bits (row of the companion-matrix power);
//! * [`recover`] — seed recovery from scattered key-stream observations by
//!   Gaussian elimination, the linear-algebra core reused by the attack.
//!
//! # Conventions
//!
//! State bits are `s[0..width]`. One step computes
//! `s'[0] = XOR of s[t] for t in taps` and `s'[j] = s[j-1]` for `j ≥ 1`
//! (paper Algorithm 1 uses exactly this shift-with-feedback form). A tap
//! set must include `width-1` so the update is invertible.
//!
//! # Example
//!
//! ```
//! use lfsr::{Lfsr, TapSet};
//! use gf2::BitVec;
//!
//! let taps = TapSet::maximal(8).unwrap();
//! let mut l = Lfsr::new(taps, BitVec::from_u64(8, 0b1));
//! let before = l.state().clone();
//! for _ in 0..255 { l.step(); }          // maximal period for width 8
//! assert_eq!(l.state(), &before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concrete;
mod error;
pub mod recover;
mod symbolic;
mod taps;

pub use concrete::{GaloisLfsr, Lfsr};
pub use error::LfsrError;
pub use symbolic::SymbolicLfsr;
pub use taps::TapSet;
