//! Symbolic LFSR expansion: state bits as linear forms over the seed.

use std::collections::VecDeque;

use gf2::{BitMatrix, BitVec};

use crate::TapSet;

/// Tracks, cycle by cycle, the linear form of every LFSR state bit as a
/// function of the seed bits.
///
/// After `t` steps, state bit `j` equals `row(j) · seed` over GF(2); the
/// rows are exactly the rows of the companion-matrix power `A^t`, but
/// computed incrementally in `O(width²/64)` per step instead of a matrix
/// multiplication — the attack walks `2·FF + captures` cycles, so this is
/// the inner loop of model construction.
///
/// # Example
///
/// ```
/// use lfsr::{Lfsr, SymbolicLfsr, TapSet};
/// use gf2::BitVec;
///
/// let taps = TapSet::maximal(8).unwrap();
/// let seed = BitVec::from_u64(8, 0xA5);
/// let mut sym = SymbolicLfsr::new(taps.clone());
/// let mut conc = Lfsr::new(taps, seed.clone());
/// for _ in 0..20 {
///     sym.step();
///     conc.step();
/// }
/// // symbolic row · seed == concrete bit, for every bit
/// for j in 0..8 {
///     assert_eq!(sym.row(j).dot(&seed), conc.bit(j));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicLfsr {
    taps: TapSet,
    /// `rows[j]` is the linear form of state bit `j`.
    rows: VecDeque<BitVec>,
    /// Reused feedback accumulator: `step` swaps it with the evicted row,
    /// so batch stepping allocates nothing after construction.
    scratch: BitVec,
    steps: u64,
}

impl SymbolicLfsr {
    /// Creates the symbolic register at time 0 (identity: bit `j` = seed
    /// bit `j`).
    pub fn new(taps: TapSet) -> Self {
        let w = taps.width();
        let rows = (0..w).map(|j| BitVec::unit(w, j)).collect();
        SymbolicLfsr {
            taps,
            rows,
            scratch: BitVec::zeros(w),
            steps: 0,
        }
    }

    /// The tap set.
    pub fn taps(&self) -> &TapSet {
        &self.taps
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Linear form of state bit `j` at the current time.
    pub fn row(&self, j: usize) -> &BitVec {
        &self.rows[j]
    }

    /// Advances one cycle: the new bit-0 form is the XOR of the tapped
    /// forms; all other forms shift up.
    ///
    /// The accumulation is word-parallel (`xor_assign` works 64 seed
    /// coefficients per instruction) and allocation-free: the evicted
    /// bottom row's storage is recycled as the next feedback accumulator.
    pub fn step(&mut self) {
        self.scratch.as_words_mut().fill(0);
        for &t in self.taps.taps() {
            self.scratch.xor_assign(&self.rows[t]);
        }
        let mut evicted = self.rows.pop_back().expect("width is at least 1");
        std::mem::swap(&mut evicted, &mut self.scratch);
        self.rows.push_front(evicted);
        self.steps += 1;
    }

    /// Advances `n` cycles. This is the batch path the attack walks for
    /// `2·FF + captures` cycles per model build; it reuses one scratch row
    /// across all `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The full state matrix `A^t` (row `j` = form of bit `j`).
    pub fn state_matrix(&self) -> BitMatrix {
        BitMatrix::from_rows(self.rows.iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lfsr;
    use gf2::SplitMix64;

    #[test]
    fn time_zero_is_identity() {
        let taps = TapSet::maximal(8).unwrap();
        let sym = SymbolicLfsr::new(taps);
        assert!(sym.state_matrix().is_identity());
    }

    #[test]
    fn matches_companion_matrix_powers() {
        let taps = TapSet::maximal(12).unwrap();
        let a = taps.companion_matrix();
        let mut sym = SymbolicLfsr::new(taps);
        for t in 1..=40u64 {
            sym.step();
            assert_eq!(sym.state_matrix(), a.pow(t), "cycle {t}");
        }
    }

    #[test]
    fn predicts_concrete_bits_for_random_seeds() {
        let taps = TapSet::maximal(16).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..5 {
            let seed = BitVec::random(16, &mut rng);
            let mut sym = SymbolicLfsr::new(taps.clone());
            let mut conc = Lfsr::new(taps.clone(), seed.clone());
            for t in 0..100 {
                for j in 0..16 {
                    assert_eq!(sym.row(j).dot(&seed), conc.bit(j), "bit {j} at cycle {t}");
                }
                sym.step();
                conc.step();
            }
        }
    }

    #[test]
    fn rows_stay_invertible() {
        // A^t is invertible for all t when taps include width-1.
        let taps = TapSet::maximal(10).unwrap();
        let mut sym = SymbolicLfsr::new(taps);
        sym.run(123);
        assert_eq!(sym.state_matrix().rank(), 10);
    }

    #[test]
    fn run_equals_repeated_step() {
        let taps = TapSet::maximal(9).unwrap();
        let mut a = SymbolicLfsr::new(taps.clone());
        let mut b = SymbolicLfsr::new(taps);
        a.run(17);
        for _ in 0..17 {
            b.step();
        }
        assert_eq!(a.state_matrix(), b.state_matrix());
        assert_eq!(a.steps_taken(), 17);
    }
}
