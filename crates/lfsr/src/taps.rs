//! Feedback tap sets: validation, known maximal-length tables, searched
//! generation for arbitrary widths.

use gf2::{BitMatrix, BitVec, Rng64};

use crate::{Lfsr, LfsrError};

/// Known maximal-length Fibonacci tap sets, `(width, taps)`, in the
/// convention of this crate (`s'[0] = XOR of s[t]`, `t` 0-based).
///
/// Derived from the classic XAPP052-style table (1-based positions, shifted
/// down by one); each small-width entry is verified to reach period
/// `2^w - 1` by the test suite.
const MAXIMAL_TABLE: &[(usize, &[usize])] = &[
    (2, &[0, 1]),
    (3, &[1, 2]),
    (4, &[2, 3]),
    (5, &[2, 4]),
    (6, &[4, 5]),
    (7, &[5, 6]),
    (8, &[3, 4, 5, 7]),
    (9, &[4, 8]),
    (10, &[6, 9]),
    (11, &[8, 10]),
    (12, &[0, 3, 5, 11]),
    (13, &[0, 2, 3, 12]),
    (14, &[0, 2, 4, 13]),
    (15, &[13, 14]),
    (16, &[3, 12, 14, 15]),
    (17, &[13, 16]),
    (18, &[10, 17]),
    (19, &[0, 1, 5, 18]),
    (20, &[16, 19]),
    (21, &[18, 20]),
    (22, &[20, 21]),
    (23, &[17, 22]),
    (24, &[16, 21, 22, 23]),
    (25, &[21, 24]),
    (28, &[24, 27]),
    (31, &[27, 30]),
    (32, &[0, 1, 21, 31]),
    (64, &[59, 60, 62, 63]),
    (128, &[98, 100, 125, 127]),
];

/// A validated set of feedback taps for a `width`-bit LFSR.
///
/// Invariants: taps are sorted, unique, within `0..width`, and include
/// `width - 1` (so the state update is a bijection and the companion
/// matrix invertible — a defense whose PRNG loses state would eventually
/// cycle into a tiny orbit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TapSet {
    width: usize,
    taps: Vec<usize>,
}

impl TapSet {
    /// Validates and creates a tap set.
    ///
    /// # Errors
    ///
    /// Rejects widths < 2, out-of-range taps, empty tap lists, and sets
    /// lacking `width - 1` (non-invertible update).
    pub fn new(width: usize, taps: impl Into<Vec<usize>>) -> Result<Self, LfsrError> {
        if width < 2 {
            return Err(LfsrError::WidthTooSmall { width });
        }
        let mut taps = taps.into();
        if taps.is_empty() {
            return Err(LfsrError::NoTaps);
        }
        taps.sort_unstable();
        taps.dedup();
        if let Some(&bad) = taps.iter().find(|&&t| t >= width) {
            return Err(LfsrError::TapOutOfRange { tap: bad, width });
        }
        if *taps.last().expect("nonempty") != width - 1 {
            return Err(LfsrError::NotInvertible);
        }
        Ok(TapSet { width, taps })
    }

    /// A known maximal-length tap set for `width`, if tabulated.
    ///
    /// Widths covered: 2–25, 28, 31, 32, 64, 128. For other widths use
    /// [`TapSet::generate`].
    pub fn maximal(width: usize) -> Option<TapSet> {
        MAXIMAL_TABLE
            .iter()
            .find(|(w, _)| *w == width)
            .map(|(w, t)| TapSet {
                width: *w,
                taps: t.to_vec(),
            })
    }

    /// Best available tap set for `width`: the tabulated maximal set when
    /// known, otherwise a searched set whose period provably exceeds
    /// `min_period` (verified by simulation from a fixed state).
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError::PeriodSearchFailed`] from [`TapSet::generate`].
    pub fn for_width<R: Rng64>(
        width: usize,
        min_period: u64,
        rng: &mut R,
    ) -> Result<TapSet, LfsrError> {
        if let Some(t) = TapSet::maximal(width) {
            return Ok(t);
        }
        TapSet::generate(width, min_period, rng)
    }

    /// Searches for a tap set whose period from the unit state exceeds
    /// `min_period`.
    ///
    /// The defense only needs the key schedule not to repeat within one
    /// test session (`2·FF + capture` cycles ≈ 3500 for the largest
    /// benchmark), so verified-period generation is sound for widths the
    /// maximal table misses — this is how the paper's 144…368-bit sweeps
    /// are built.
    ///
    /// # Errors
    ///
    /// Returns [`LfsrError::PeriodSearchFailed`] after 200 failed draws
    /// (practically unreachable for `min_period` ≪ 2^width).
    pub fn generate<R: Rng64>(
        width: usize,
        min_period: u64,
        rng: &mut R,
    ) -> Result<TapSet, LfsrError> {
        if width < 2 {
            return Err(LfsrError::WidthTooSmall { width });
        }
        for _attempt in 0..200 {
            // 2 or 4 taps including width-1 (even tap counts are necessary
            // for maximal length; keep the parity-friendly shape).
            let extra = if rng.gen_bool() { 1 } else { 3 };
            let mut taps = rng.sample_indices(width - 1, extra.min(width - 1));
            taps.push(width - 1);
            let ts = TapSet::new(width, taps).expect("constructed taps are valid");
            if ts.verified_period_at_least(min_period) {
                return Ok(ts);
            }
        }
        Err(LfsrError::PeriodSearchFailed { min_period })
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The tap positions, sorted ascending.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// The companion matrix `A` with `state_{t+1} = A · state_t`:
    /// row 0 has ones at the taps; row `j` has a one at column `j-1`.
    pub fn companion_matrix(&self) -> BitMatrix {
        let mut a = BitMatrix::zeros(self.width, self.width);
        for &t in &self.taps {
            a.set(0, t, true);
        }
        for j in 1..self.width {
            a.set(j, j - 1, true);
        }
        a
    }

    /// Checks by simulation that the period from the unit state exceeds
    /// `min_period` (exact period is not computed; the walk stops at the
    /// bound).
    pub fn verified_period_at_least(&self, min_period: u64) -> bool {
        let start = BitVec::unit(self.width, 0);
        let mut l = Lfsr::new(self.clone(), start.clone());
        for _ in 0..min_period {
            l.step();
            if l.state() == &start {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::SplitMix64;

    #[test]
    fn small_maximal_sets_reach_full_period() {
        // Exhaustively verify 2^w - 1 for tabulated small widths.
        for width in 2..=16 {
            let Some(taps) = TapSet::maximal(width) else {
                panic!("width {width} missing from table");
            };
            let start = BitVec::unit(width, 0);
            let mut l = Lfsr::new(taps, start.clone());
            let mut period = 0u64;
            loop {
                l.step();
                period += 1;
                if l.state() == &start {
                    break;
                }
                assert!(period <= 1 << width, "runaway at width {width}");
            }
            assert_eq!(period, (1u64 << width) - 1, "width {width} not maximal");
        }
    }

    #[test]
    fn large_tabulated_sets_have_long_periods() {
        for width in [24, 32, 64, 128] {
            let taps = TapSet::maximal(width).unwrap();
            assert!(
                taps.verified_period_at_least(100_000),
                "width {width} repeats too early"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_sets() {
        assert_eq!(
            TapSet::new(1, vec![0]).unwrap_err(),
            LfsrError::WidthTooSmall { width: 1 }
        );
        assert_eq!(TapSet::new(8, Vec::new()).unwrap_err(), LfsrError::NoTaps);
        assert_eq!(
            TapSet::new(8, vec![8, 7]).unwrap_err(),
            LfsrError::TapOutOfRange { tap: 8, width: 8 }
        );
        assert_eq!(
            TapSet::new(8, vec![0, 3]).unwrap_err(),
            LfsrError::NotInvertible
        );
    }

    #[test]
    fn taps_are_sorted_and_deduped() {
        let t = TapSet::new(8, vec![7, 3, 3, 5]).unwrap();
        assert_eq!(t.taps(), &[3, 5, 7]);
    }

    #[test]
    fn companion_matrix_is_invertible_and_steps_state() {
        let t = TapSet::maximal(8).unwrap();
        let a = t.companion_matrix();
        assert!(a.inverse().is_some(), "companion must be invertible");
        // one concrete step == one matrix multiply
        let mut rng = SplitMix64::new(3);
        let seed = BitVec::random(8, &mut rng);
        let mut l = Lfsr::new(t, seed.clone());
        l.step();
        assert_eq!(l.state(), &a.mul_vec(&seed));
    }

    #[test]
    fn generate_meets_period_bound() {
        let mut rng = SplitMix64::new(9);
        for width in [33, 50, 100, 144, 368] {
            let t = TapSet::generate(width, 8_000, &mut rng).unwrap();
            assert_eq!(t.width(), width);
            assert!(t.verified_period_at_least(8_000));
        }
    }

    #[test]
    fn for_width_prefers_table() {
        let mut rng = SplitMix64::new(1);
        let t = TapSet::for_width(16, 1000, &mut rng).unwrap();
        assert_eq!(t, TapSet::maximal(16).unwrap());
    }

    #[test]
    fn generate_is_deterministic_in_rng() {
        let t1 = TapSet::generate(77, 5_000, &mut SplitMix64::new(5)).unwrap();
        let t2 = TapSet::generate(77, 5_000, &mut SplitMix64::new(5)).unwrap();
        assert_eq!(t1, t2);
    }
}
