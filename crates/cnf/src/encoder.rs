//! The Tseitin encoder.

use gf2::BitVec;
use netlist::{Circuit, GateKind, NetId};
use satsolver::{Lit, Solver};

/// SAT literals for one combinational frame of a circuit.
///
/// Produced by [`Encoder::comb`]; every driven net of the frame has a
/// literal, addressable either structurally (`po`, `next_state`) or by
/// [`NetId`] via [`net`](CombCone::net).
#[derive(Debug, Clone)]
pub struct CombCone {
    /// One literal per primary output, in circuit order.
    pub po: Vec<Lit>,
    /// One literal per flop D pin (the state *after* this frame's clock
    /// edge), in `circuit.dffs()` order.
    pub next_state: Vec<Lit>,
    net_lits: Vec<Option<Lit>>,
}

impl CombCone {
    /// The literal carrying `net` in this frame, if the net exists.
    pub fn net(&self, net: NetId) -> Option<Lit> {
        self.net_lits.get(net.index()).copied().flatten()
    }
}

/// Incremental Tseitin encoder owning a [`Solver`].
///
/// The encoder hands out fresh variables, caches a single pinned constant
/// variable, and knows how to turn gates, parities, and whole
/// combinational frames into clauses. Callers keep pushing structure into
/// the same solver instance — that is what makes the DynUnlock DIP loop
/// incremental: each oracle observation adds a cone, nothing is re-encoded.
///
/// Returned literals are *logically* equal to the encoded function in every
/// model of the clause set; gate outputs use fresh definition variables,
/// while trivial cases (buffers, single-input gates, constant folding) are
/// resolved to existing literals without new clauses.
#[derive(Debug, Default)]
pub struct Encoder {
    solver: Solver,
    const_true: Option<Lit>,
}

impl Encoder {
    /// A new encoder over an empty solver.
    pub fn new() -> Encoder {
        Encoder {
            solver: Solver::new(),
            const_true: None,
        }
    }

    /// The underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver (to solve, assume, or add
    /// ad-hoc clauses).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Consumes the encoder, returning the solver with everything encoded
    /// so far.
    pub fn into_solver(self) -> Solver {
        self.solver
    }

    /// A fresh, unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::positive(self.solver.new_var())
    }

    /// `n` fresh, unconstrained literals.
    pub fn fresh_many(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// The literal for a Boolean constant.
    ///
    /// All constants share one pinned variable, created lazily; encoding a
    /// thousand constant nets costs one variable and one unit clause.
    pub fn constant(&mut self, value: bool) -> Lit {
        let t = match self.const_true {
            Some(t) => t,
            None => {
                let t = self.fresh();
                self.solver.add_clause(&[t]);
                self.const_true = Some(t);
                t
            }
        };
        if value {
            t
        } else {
            !t
        }
    }

    /// If `lit` is (a polarity of) the pinned constant, its value.
    fn as_const(&self, lit: Lit) -> Option<bool> {
        let t = self.const_true?;
        if lit == t {
            Some(true)
        } else if lit == !t {
            Some(false)
        } else {
            None
        }
    }

    /// Adds a clause. Returns `false` if the solver became unsatisfiable.
    pub fn assert_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }

    /// Pins a literal true. Returns `false` on conflict.
    pub fn assert_lit(&mut self, lit: Lit) -> bool {
        self.solver.add_clause(&[lit])
    }

    /// Constrains two literals to be equal. Returns `false` on conflict.
    pub fn assert_equal(&mut self, a: Lit, b: Lit) -> bool {
        self.solver.add_clause(&[!a, b]) && self.solver.add_clause(&[a, !b])
    }

    /// A literal equal to `a ⊕ b`.
    ///
    /// Folds constants and syntactic (in)equality to existing literals; the
    /// general case introduces one definition variable and four clauses.
    pub fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if let Some(va) = self.as_const(a) {
            return if va { !b } else { b };
        }
        if let Some(vb) = self.as_const(b) {
            return if vb { !a } else { a };
        }
        if a == b {
            return self.constant(false);
        }
        if a == !b {
            return self.constant(true);
        }
        let z = self.fresh();
        self.solver.add_clause(&[!z, a, b]);
        self.solver.add_clause(&[!z, !a, !b]);
        self.solver.add_clause(&[z, !a, b]);
        self.solver.add_clause(&[z, a, !b]);
        z
    }

    /// A literal equal to the XOR of all `lits` (false for an empty list).
    pub fn parity(&mut self, lits: &[Lit]) -> Lit {
        match lits.split_first() {
            None => self.constant(false),
            Some((&first, rest)) => rest.iter().fold(first, |acc, &l| self.xor2(acc, l)),
        }
    }

    /// A literal equal to `row · lits` over GF(2): the XOR of every literal
    /// whose row bit is set.
    ///
    /// This is how the attack turns a [`lfsr::SymbolicLfsr`] keystream row
    /// into a mask literal over the seed variables.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != lits.len()`.
    ///
    /// [`lfsr::SymbolicLfsr`]: https://docs.rs/lfsr
    pub fn linear_form(&mut self, lits: &[Lit], row: &BitVec) -> Lit {
        assert_eq!(lits.len(), row.len(), "row width must match literal count");
        let selected: Vec<Lit> = row.iter_ones().map(|i| lits[i]).collect();
        self.parity(&selected)
    }

    /// A literal equal to the AND of `lits`, after folding constants.
    fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut kept = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.as_const(l) {
                Some(false) => return self.constant(false),
                Some(true) => {}
                None => kept.push(l),
            }
        }
        match kept.len() {
            0 => self.constant(true),
            1 => kept[0],
            _ => {
                let z = self.fresh();
                let mut top = Vec::with_capacity(kept.len() + 1);
                top.push(z);
                for &a in &kept {
                    self.solver.add_clause(&[!z, a]);
                    top.push(!a);
                }
                self.solver.add_clause(&top);
                z
            }
        }
    }

    /// A literal equal to the OR of `lits`, after folding constants.
    fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let flipped: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&flipped)
    }

    /// A literal equal to `kind(inputs...)`.
    ///
    /// # Panics
    ///
    /// Panics if the arity is illegal for the kind (same contract as
    /// [`GateKind::eval`]).
    pub fn gate(&mut self, kind: GateKind, inputs: &[Lit]) -> Lit {
        assert!(
            kind.arity_ok(inputs.len()),
            "{kind} cannot take {} inputs",
            inputs.len()
        );
        match kind {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => self.and_many(inputs),
            GateKind::Nand => !self.and_many(inputs),
            GateKind::Or => self.or_many(inputs),
            GateKind::Nor => !self.or_many(inputs),
            GateKind::Xor => self.parity(inputs),
            GateKind::Xnor => !self.parity(inputs),
            GateKind::Const0 => self.constant(false),
            GateKind::Const1 => self.constant(true),
        }
    }

    /// Encodes one combinational frame of `circuit`: given literals for the
    /// primary inputs and the current flop outputs, returns literals for
    /// every driven net, the primary outputs, and the next state.
    ///
    /// Call repeatedly with the previous frame's `next_state` to time-unroll
    /// a sequential circuit; each call only appends clauses, so the solver
    /// instance (and everything it has learned) stays warm.
    ///
    /// # Panics
    ///
    /// Panics if `pis` or `state` have the wrong length.
    pub fn comb(&mut self, circuit: &Circuit, pis: &[Lit], state: &[Lit]) -> CombCone {
        assert_eq!(pis.len(), circuit.inputs().len(), "PI count mismatch");
        assert_eq!(state.len(), circuit.dffs().len(), "state length mismatch");
        let mut net_lits: Vec<Option<Lit>> = vec![None; circuit.num_nets()];
        for (i, &net) in circuit.inputs().iter().enumerate() {
            net_lits[net.index()] = Some(pis[i]);
        }
        for (i, dff) in circuit.dffs().iter().enumerate() {
            net_lits[dff.q.index()] = Some(state[i]);
        }
        for &gi in circuit.topo_gates() {
            let gate = &circuit.gates()[gi];
            let ins: Vec<Lit> = gate
                .inputs
                .iter()
                .map(|n| net_lits[n.index()].expect("topo order drives all fanins"))
                .collect();
            net_lits[gate.output.index()] = Some(self.gate(gate.kind, &ins));
        }
        let po = circuit
            .outputs()
            .iter()
            .map(|n| net_lits[n.index()].expect("outputs are driven"))
            .collect();
        let next_state = circuit
            .dffs()
            .iter()
            .map(|d| net_lits[d.d.index()].expect("D pins are driven"))
            .collect();
        CombCone {
            po,
            next_state,
            net_lits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{Rng64, SplitMix64};
    use netlist::generator::{s208_like, GeneratorConfig};
    use satsolver::SolveResult;
    use sim::Evaluator;

    /// Assumption literals pinning `lits[i]` to `values[i]`.
    fn pin(lits: &[Lit], values: &[bool]) -> Vec<Lit> {
        lits.iter()
            .zip(values)
            .map(|(&l, &v)| if v { l } else { !l })
            .collect()
    }

    /// Cross-checks the encoder against the interpreter on every driven
    /// net for a batch of random stimuli.
    fn cross_check(circuit: &netlist::Circuit, stimuli: usize, seed: u64) {
        let mut enc = Encoder::new();
        let pis = enc.fresh_many(circuit.inputs().len());
        let state = enc.fresh_many(circuit.num_dffs());
        let cone = enc.comb(circuit, &pis, &state);
        let mut ev = Evaluator::new(circuit);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..stimuli {
            let pi_vals: Vec<bool> = (0..pis.len()).map(|_| rng.gen_bool()).collect();
            let st_vals: Vec<bool> = (0..state.len()).map(|_| rng.gen_bool()).collect();
            let mut assumptions = pin(&pis, &pi_vals);
            assumptions.extend(pin(&state, &st_vals));
            assert_eq!(
                enc.solver_mut().solve_assuming(&assumptions),
                SolveResult::Sat,
                "pinning free inputs is always satisfiable"
            );
            ev.eval(&pi_vals, &st_vals);
            for idx in 0..circuit.num_nets() {
                let net = circuit
                    .gates()
                    .iter()
                    .map(|g| g.output)
                    .chain(circuit.inputs().iter().copied())
                    .chain(circuit.dffs().iter().map(|d| d.q))
                    .find(|n| n.index() == idx);
                let Some(net) = net else { continue };
                let lit = cone.net(net).expect("driven net has a literal");
                assert_eq!(
                    enc.solver().lit_model_value(lit),
                    Some(ev.value(net)),
                    "net {net} disagrees on {pi_vals:?}/{st_vals:?}"
                );
            }
        }
    }

    #[test]
    fn s208_matches_evaluator_on_every_net() {
        cross_check(&s208_like(), 16, 0xA1);
    }

    #[test]
    fn random_circuits_match_evaluator() {
        for seed in 0..4u64 {
            let c = GeneratorConfig::new("xcheck", 6, 4, 10, 90)
                .with_seed(seed)
                .generate();
            cross_check(&c, 8, seed.wrapping_mul(0x9E37));
        }
    }

    #[test]
    fn parity_and_linear_form_agree_with_bitvec_dot() {
        let mut enc = Encoder::new();
        let lits = enc.fresh_many(9);
        let mut rng = SplitMix64::new(5);
        for _ in 0..12 {
            let row = BitVec::random(9, &mut rng);
            let form = enc.linear_form(&lits, &row);
            let values: Vec<bool> = (0..9).map(|_| rng.gen_bool()).collect();
            let mut assumptions = pin(&lits, &values);
            assumptions.push(form);
            let expect = row.dot(&BitVec::from_bools(values.iter().copied()));
            let sat = enc.solver_mut().solve_assuming(&assumptions) == SolveResult::Sat;
            assert_eq!(sat, expect, "form must equal row·x for row {row:?}");
        }
    }

    #[test]
    fn xor2_folds_constants_and_duplicates() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let t = enc.constant(true);
        let f = enc.constant(false);
        assert_eq!(enc.xor2(a, f), a);
        assert_eq!(enc.xor2(a, t), !a);
        assert_eq!(enc.xor2(t, a), !a);
        assert_eq!(enc.xor2(a, a), f);
        assert_eq!(enc.xor2(a, !a), t);
        // Nothing above should have created definition clauses: one unit
        // clause for the pinned constant is all there is.
        assert_eq!(enc.solver().num_clauses(), 0, "units live on the trail");
        assert_eq!(enc.solver().num_vars(), 2);
    }

    #[test]
    fn constant_is_cached_and_pinned() {
        let mut enc = Encoder::new();
        let t1 = enc.constant(true);
        let f = enc.constant(false);
        let t2 = enc.constant(true);
        assert_eq!(t1, t2);
        assert_eq!(f, !t1);
        assert_eq!(enc.solver_mut().solve_assuming(&[f]), SolveResult::Unsat);
    }

    #[test]
    fn gate_encoding_is_exhaustively_correct() {
        // Every kind, arities 1..=3 where legal, all input combinations.
        for kind in GateKind::ALL {
            for arity in 0..=3usize {
                if !kind.arity_ok(arity) {
                    continue;
                }
                for bits in 0..1u32 << arity {
                    let mut enc = Encoder::new();
                    let ins = enc.fresh_many(arity);
                    let out = enc.gate(kind, &ins);
                    let vals: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
                    let mut assumptions = pin(&ins, &vals);
                    let expect = kind.eval(&vals);
                    assumptions.push(if expect { out } else { !out });
                    assert_eq!(
                        enc.solver_mut().solve_assuming(&assumptions),
                        SolveResult::Sat,
                        "{kind} on {vals:?} must be {expect}"
                    );
                    let mut refute = pin(&ins, &vals);
                    refute.push(if expect { !out } else { out });
                    assert_eq!(
                        enc.solver_mut().solve_assuming(&refute),
                        SolveResult::Unsat,
                        "{kind} on {vals:?} must not be {}",
                        !expect
                    );
                }
            }
        }
    }

    #[test]
    fn unrolled_frames_track_sequential_evaluation() {
        let c = s208_like();
        let mut enc = Encoder::new();
        let mut rng = SplitMix64::new(77);
        let frames = 4;
        let all_pis: Vec<Vec<Lit>> = (0..frames)
            .map(|_| enc.fresh_many(c.inputs().len()))
            .collect();
        let mut state = enc.fresh_many(c.num_dffs());
        let init = state.clone();
        let mut cones = Vec::new();
        for pis in &all_pis {
            let cone = enc.comb(&c, pis, &state);
            state = cone.next_state.clone();
            cones.push(cone);
        }

        let st0: Vec<bool> = (0..c.num_dffs()).map(|_| rng.gen_bool()).collect();
        let stimuli: Vec<Vec<bool>> = (0..frames)
            .map(|_| (0..c.inputs().len()).map(|_| rng.gen_bool()).collect())
            .collect();
        let mut assumptions = pin(&init, &st0);
        for (pis, vals) in all_pis.iter().zip(&stimuli) {
            assumptions.extend(pin(pis, vals));
        }
        assert_eq!(
            enc.solver_mut().solve_assuming(&assumptions),
            SolveResult::Sat
        );

        let mut ev = Evaluator::new(&c);
        let mut st = st0;
        for (cone, vals) in cones.iter().zip(&stimuli) {
            ev.eval(vals, &st);
            let po: Vec<Option<bool>> = cone
                .po
                .iter()
                .map(|&l| enc.solver().lit_model_value(l))
                .collect();
            let expect: Vec<Option<bool>> = ev.output_values().into_iter().map(Some).collect();
            assert_eq!(po, expect, "PO mismatch in an unrolled frame");
            st = ev.next_state();
        }
    }
}
