//! The constraint encoder: Tseitin for gates, native GF(2) for parity.

use gf2::BitVec;
use netlist::{Circuit, GateKind, NetId};
use satsolver::{Constraint, Lit, Solver, XorClause};

/// How the encoder emits parity structure (`xor2`, `parity`,
/// `linear_form`, and XOR/XNOR gates).
///
/// [`Native`](XorMode::Native) keeps parity linear: one definition
/// variable and one [`XorClause`] per constraint, handled by the solver's
/// in-solver GF(2) engine. [`Tseitin`](XorMode::Tseitin) is the classical
/// clause expansion — a chain of 4-clause xor definitions — kept as a
/// differential reference; CDCL must prove parity facts over it by
/// resolution, which is exponential in the chain length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum XorMode {
    /// Emit native xor constraints to the solver's GF(2) engine.
    #[default]
    Native,
    /// Expand parity to clauses via auxiliary-variable chains.
    Tseitin,
}

/// SAT literals for one combinational frame of a circuit.
///
/// Produced by [`Encoder::comb`]; every driven net of the frame has a
/// literal, addressable either structurally (`po`, `next_state`) or by
/// [`NetId`] via [`net`](CombCone::net).
#[derive(Debug, Clone)]
pub struct CombCone {
    /// One literal per primary output, in circuit order.
    pub po: Vec<Lit>,
    /// One literal per flop D pin (the state *after* this frame's clock
    /// edge), in `circuit.dffs()` order.
    pub next_state: Vec<Lit>,
    net_lits: Vec<Option<Lit>>,
}

impl CombCone {
    /// The literal carrying `net` in this frame, if the net exists.
    pub fn net(&self, net: NetId) -> Option<Lit> {
        self.net_lits.get(net.index()).copied().flatten()
    }
}

/// Incremental constraint encoder owning a [`Solver`].
///
/// The encoder hands out fresh variables, caches a single pinned constant
/// variable, and knows how to turn gates, parities, and whole
/// combinational frames into a constraint stream ([`Constraint`]) for the
/// solver: clauses for gate logic, native xor constraints for parity
/// (under the default [`XorMode::Native`]). Callers keep pushing structure
/// into the same solver instance — that is what makes the DynUnlock DIP
/// loop incremental: each oracle observation adds a cone, nothing is
/// re-encoded.
///
/// Returned literals are *logically* equal to the encoded function in every
/// model of the constraint set; gate outputs use fresh definition variables,
/// while trivial cases (buffers, single-input gates, constant folding) are
/// resolved to existing literals without new constraints.
#[derive(Debug, Default)]
pub struct Encoder {
    solver: Solver,
    const_true: Option<Lit>,
    mode: XorMode,
}

impl Encoder {
    /// A new encoder over an empty solver, with native xor emission.
    pub fn new() -> Encoder {
        Encoder::with_mode(XorMode::default())
    }

    /// A new encoder with an explicit parity-emission mode.
    pub fn with_mode(mode: XorMode) -> Encoder {
        Encoder {
            solver: Solver::new(),
            const_true: None,
            mode,
        }
    }

    /// The parity-emission mode this encoder was built with.
    pub fn xor_mode(&self) -> XorMode {
        self.mode
    }

    /// The underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver (to solve, assume, or add
    /// ad-hoc clauses).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Consumes the encoder, returning the solver with everything encoded
    /// so far.
    pub fn into_solver(self) -> Solver {
        self.solver
    }

    /// A fresh, unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::positive(self.solver.new_var())
    }

    /// `n` fresh, unconstrained literals.
    pub fn fresh_many(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// The literal for a Boolean constant.
    ///
    /// All constants share one pinned variable, created lazily; encoding a
    /// thousand constant nets costs one variable and one unit clause.
    pub fn constant(&mut self, value: bool) -> Lit {
        let t = match self.const_true {
            Some(t) => t,
            None => {
                let t = self.fresh();
                self.solver.add_clause(&[t]);
                self.const_true = Some(t);
                t
            }
        };
        if value {
            t
        } else {
            !t
        }
    }

    /// If `lit` is (a polarity of) the pinned constant, its value.
    fn as_const(&self, lit: Lit) -> Option<bool> {
        let t = self.const_true?;
        if lit == t {
            Some(true)
        } else if lit == !t {
            Some(false)
        } else {
            None
        }
    }

    /// Adds one constraint-stream element. Returns `false` if the solver
    /// became unsatisfiable.
    pub fn assert_constraint(&mut self, constraint: &Constraint) -> bool {
        self.solver.add_constraint(constraint)
    }

    /// Adds a clause. Returns `false` if the solver became unsatisfiable.
    pub fn assert_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }

    /// Constrains `⊕ lits = rhs`, respecting the encoder's [`XorMode`].
    /// Returns `false` if the solver became unsatisfiable.
    pub fn assert_xor(&mut self, lits: &[Lit], rhs: bool) -> bool {
        match self.mode {
            XorMode::Native => self
                .solver
                .add_constraint(&Constraint::Xor(XorClause::new(lits.to_vec(), rhs))),
            XorMode::Tseitin => {
                let p = self.parity(lits);
                self.assert_lit(if rhs { p } else { !p })
            }
        }
    }

    /// Pins a literal true. Returns `false` on conflict.
    pub fn assert_lit(&mut self, lit: Lit) -> bool {
        self.solver.add_clause(&[lit])
    }

    /// Constrains two literals to be equal. Returns `false` on conflict.
    pub fn assert_equal(&mut self, a: Lit, b: Lit) -> bool {
        self.solver.add_clause(&[!a, b]) && self.solver.add_clause(&[a, !b])
    }

    /// A literal equal to `a ⊕ b`.
    ///
    /// Folds constants and syntactic (in)equality to existing literals
    /// regardless of mode. The general case introduces one definition
    /// variable: under [`XorMode::Native`] it is defined by one xor
    /// constraint (`z ⊕ a ⊕ b = 0`), under [`XorMode::Tseitin`] by four
    /// clauses.
    pub fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if let Some(va) = self.as_const(a) {
            return if va { !b } else { b };
        }
        if let Some(vb) = self.as_const(b) {
            return if vb { !a } else { a };
        }
        if a == b {
            return self.constant(false);
        }
        if a == !b {
            return self.constant(true);
        }
        let z = self.fresh();
        match self.mode {
            XorMode::Native => {
                self.solver
                    .add_constraint(&Constraint::Xor(XorClause::new(vec![z, a, b], false)));
            }
            XorMode::Tseitin => {
                self.solver.add_clause(&[!z, a, b]);
                self.solver.add_clause(&[!z, !a, !b]);
                self.solver.add_clause(&[z, !a, b]);
                self.solver.add_clause(&[z, a, !b]);
            }
        }
        z
    }

    /// A literal equal to the XOR of all `lits` (false for an empty list).
    ///
    /// Under [`XorMode::Native`] a `k`-ary parity is **one** wide xor row
    /// (`z ⊕ l1 ⊕ … ⊕ lk = 0`) — no auxiliary chain, so the solver's GF(2)
    /// engine sees the whole constraint at once. Under
    /// [`XorMode::Tseitin`] it is the classical fold of binary xors
    /// (`k - 1` auxiliary variables, `4(k - 1)` clauses).
    pub fn parity(&mut self, lits: &[Lit]) -> Lit {
        match (self.mode, lits.split_first()) {
            (_, None) => self.constant(false),
            (_, Some((&only, []))) => only,
            (XorMode::Native, _) => {
                // Fold constants into the right-hand side so the pinned
                // constant variable stays out of the xor system.
                let mut rhs = false;
                let mut kept: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
                for &l in lits {
                    match self.as_const(l) {
                        Some(v) => rhs ^= v,
                        None => kept.push(l),
                    }
                }
                match kept.len() {
                    0 => self.constant(rhs),
                    1 => {
                        if rhs {
                            !kept[0]
                        } else {
                            kept[0]
                        }
                    }
                    _ => {
                        let z = self.fresh();
                        kept.push(z);
                        self.solver
                            .add_constraint(&Constraint::Xor(XorClause::new(kept, rhs)));
                        z
                    }
                }
            }
            (XorMode::Tseitin, Some((&first, rest))) => {
                rest.iter().fold(first, |acc, &l| self.xor2(acc, l))
            }
        }
    }

    /// A literal equal to `row · lits` over GF(2): the XOR of every literal
    /// whose row bit is set.
    ///
    /// This is how the attack turns a [`lfsr::SymbolicLfsr`] keystream row
    /// into a mask literal over the seed variables.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != lits.len()`.
    ///
    /// [`lfsr::SymbolicLfsr`]: https://docs.rs/lfsr
    pub fn linear_form(&mut self, lits: &[Lit], row: &BitVec) -> Lit {
        assert_eq!(lits.len(), row.len(), "row width must match literal count");
        let selected: Vec<Lit> = row.iter_ones().map(|i| lits[i]).collect();
        self.parity(&selected)
    }

    /// A literal equal to the AND of `lits`, after folding constants.
    fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut kept = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.as_const(l) {
                Some(false) => return self.constant(false),
                Some(true) => {}
                None => kept.push(l),
            }
        }
        match kept.len() {
            0 => self.constant(true),
            1 => kept[0],
            _ => {
                let z = self.fresh();
                let mut top = Vec::with_capacity(kept.len() + 1);
                top.push(z);
                for &a in &kept {
                    self.solver.add_clause(&[!z, a]);
                    top.push(!a);
                }
                self.solver.add_clause(&top);
                z
            }
        }
    }

    /// A literal equal to the OR of `lits`, after folding constants.
    fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let flipped: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&flipped)
    }

    /// A literal equal to `kind(inputs...)`.
    ///
    /// # Panics
    ///
    /// Panics if the arity is illegal for the kind (same contract as
    /// [`GateKind::eval`]).
    pub fn gate(&mut self, kind: GateKind, inputs: &[Lit]) -> Lit {
        assert!(
            kind.arity_ok(inputs.len()),
            "{kind} cannot take {} inputs",
            inputs.len()
        );
        match kind {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => self.and_many(inputs),
            GateKind::Nand => !self.and_many(inputs),
            GateKind::Or => self.or_many(inputs),
            GateKind::Nor => !self.or_many(inputs),
            GateKind::Xor => self.parity(inputs),
            GateKind::Xnor => !self.parity(inputs),
            GateKind::Const0 => self.constant(false),
            GateKind::Const1 => self.constant(true),
        }
    }

    /// Encodes one combinational frame of `circuit`: given literals for the
    /// primary inputs and the current flop outputs, returns literals for
    /// every driven net, the primary outputs, and the next state.
    ///
    /// Call repeatedly with the previous frame's `next_state` to time-unroll
    /// a sequential circuit; each call only appends clauses, so the solver
    /// instance (and everything it has learned) stays warm.
    ///
    /// # Panics
    ///
    /// Panics if `pis` or `state` have the wrong length.
    pub fn comb(&mut self, circuit: &Circuit, pis: &[Lit], state: &[Lit]) -> CombCone {
        assert_eq!(pis.len(), circuit.inputs().len(), "PI count mismatch");
        assert_eq!(state.len(), circuit.dffs().len(), "state length mismatch");
        let mut net_lits: Vec<Option<Lit>> = vec![None; circuit.num_nets()];
        for (i, &net) in circuit.inputs().iter().enumerate() {
            net_lits[net.index()] = Some(pis[i]);
        }
        for (i, dff) in circuit.dffs().iter().enumerate() {
            net_lits[dff.q.index()] = Some(state[i]);
        }
        for &gi in circuit.topo_gates() {
            let gate = &circuit.gates()[gi];
            let ins: Vec<Lit> = gate
                .inputs
                .iter()
                .map(|n| net_lits[n.index()].expect("topo order drives all fanins"))
                .collect();
            net_lits[gate.output.index()] = Some(self.gate(gate.kind, &ins));
        }
        let po = circuit
            .outputs()
            .iter()
            .map(|n| net_lits[n.index()].expect("outputs are driven"))
            .collect();
        let next_state = circuit
            .dffs()
            .iter()
            .map(|d| net_lits[d.d.index()].expect("D pins are driven"))
            .collect();
        CombCone {
            po,
            next_state,
            net_lits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{Rng64, SplitMix64};
    use netlist::generator::{s208_like, GeneratorConfig};
    use satsolver::SolveResult;
    use sim::Evaluator;

    /// Assumption literals pinning `lits[i]` to `values[i]`.
    fn pin(lits: &[Lit], values: &[bool]) -> Vec<Lit> {
        lits.iter()
            .zip(values)
            .map(|(&l, &v)| if v { l } else { !l })
            .collect()
    }

    /// Cross-checks the encoder against the interpreter on every driven
    /// net for a batch of random stimuli.
    fn cross_check(circuit: &netlist::Circuit, stimuli: usize, seed: u64) {
        let mut enc = Encoder::new();
        let pis = enc.fresh_many(circuit.inputs().len());
        let state = enc.fresh_many(circuit.num_dffs());
        let cone = enc.comb(circuit, &pis, &state);
        let mut ev = Evaluator::new(circuit);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..stimuli {
            let pi_vals: Vec<bool> = (0..pis.len()).map(|_| rng.gen_bool()).collect();
            let st_vals: Vec<bool> = (0..state.len()).map(|_| rng.gen_bool()).collect();
            let mut assumptions = pin(&pis, &pi_vals);
            assumptions.extend(pin(&state, &st_vals));
            assert_eq!(
                enc.solver_mut().solve_assuming(&assumptions),
                SolveResult::Sat,
                "pinning free inputs is always satisfiable"
            );
            ev.eval(&pi_vals, &st_vals);
            for idx in 0..circuit.num_nets() {
                let net = circuit
                    .gates()
                    .iter()
                    .map(|g| g.output)
                    .chain(circuit.inputs().iter().copied())
                    .chain(circuit.dffs().iter().map(|d| d.q))
                    .find(|n| n.index() == idx);
                let Some(net) = net else { continue };
                let lit = cone.net(net).expect("driven net has a literal");
                assert_eq!(
                    enc.solver().lit_model_value(lit),
                    Some(ev.value(net)),
                    "net {net} disagrees on {pi_vals:?}/{st_vals:?}"
                );
            }
        }
    }

    #[test]
    fn s208_matches_evaluator_on_every_net() {
        cross_check(&s208_like(), 16, 0xA1);
    }

    #[test]
    fn random_circuits_match_evaluator() {
        for seed in 0..4u64 {
            let c = GeneratorConfig::new("xcheck", 6, 4, 10, 90)
                .with_seed(seed)
                .generate();
            cross_check(&c, 8, seed.wrapping_mul(0x9E37));
        }
    }

    #[test]
    fn parity_and_linear_form_agree_with_bitvec_dot() {
        for mode in [XorMode::Native, XorMode::Tseitin] {
            let mut enc = Encoder::with_mode(mode);
            let lits = enc.fresh_many(9);
            let mut rng = SplitMix64::new(5);
            for _ in 0..12 {
                let row = BitVec::random(9, &mut rng);
                let form = enc.linear_form(&lits, &row);
                let values: Vec<bool> = (0..9).map(|_| rng.gen_bool()).collect();
                let mut assumptions = pin(&lits, &values);
                assumptions.push(form);
                let expect = row.dot(&BitVec::from_bools(values.iter().copied()));
                let sat = enc.solver_mut().solve_assuming(&assumptions) == SolveResult::Sat;
                assert_eq!(sat, expect, "{mode:?} form must equal row·x for {row:?}");
            }
        }
    }

    #[test]
    fn native_parity_is_one_xor_row_no_clauses() {
        let mut enc = Encoder::new();
        assert_eq!(enc.xor_mode(), XorMode::Native);
        let lits = enc.fresh_many(16);
        let p = enc.parity(&lits);
        assert_eq!(enc.solver().num_clauses(), 0, "no Tseitin expansion");
        assert_eq!(enc.solver().num_xors(), 1, "one wide row");
        assert_eq!(enc.solver().num_vars(), 17, "one definition variable");
        // The wide row really defines the parity.
        let mut assumptions = pin(&lits, &[true; 16]);
        assumptions.push(p);
        assert_eq!(
            enc.solver_mut().solve_assuming(&assumptions),
            SolveResult::Unsat,
            "16 ones have even parity"
        );
    }

    #[test]
    fn tseitin_parity_still_expands_to_clauses() {
        let mut enc = Encoder::with_mode(XorMode::Tseitin);
        let lits = enc.fresh_many(16);
        let _ = enc.parity(&lits);
        assert_eq!(enc.solver().num_xors(), 0, "no native rows in Tseitin mode");
        assert_eq!(enc.solver().num_clauses(), 4 * 15, "4 clauses per xor2");
        assert_eq!(enc.solver().num_vars(), 16 + 15, "a chain of aux vars");
    }

    #[test]
    fn native_parity_folds_constants_into_rhs() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let b = enc.fresh();
        let t = enc.constant(true);
        let f = enc.constant(false);
        // Constants must not enter the xor system as columns.
        let p = enc.parity(&[a, t, b, f]);
        assert_eq!(enc.solver().num_xors(), 1);
        // p = a ⊕ b ⊕ 1: equal inputs give p = 1, unequal give p = 0.
        assert_eq!(
            enc.solver_mut().solve_assuming(&[a, b, p]),
            SolveResult::Sat
        );
        assert_eq!(
            enc.solver_mut().solve_assuming(&[a, !b, p]),
            SolveResult::Unsat
        );
        // Single-survivor and no-survivor folds stay constraint-free.
        let before = enc.solver().num_xors();
        assert_eq!(enc.parity(&[a, t]), !a);
        assert_eq!(enc.parity(&[t, f]), enc.constant(true));
        assert_eq!(enc.solver().num_xors(), before);
    }

    #[test]
    fn assert_xor_pins_parity_in_both_modes() {
        for mode in [XorMode::Native, XorMode::Tseitin] {
            let mut enc = Encoder::with_mode(mode);
            let lits = enc.fresh_many(5);
            assert!(enc.assert_xor(&lits, true));
            assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
            let parity = lits.iter().fold(false, |acc, &l| {
                acc ^ enc.solver().lit_model_value(l).unwrap()
            });
            assert!(parity, "{mode:?}: model must have odd parity");
            // Pinning all five false contradicts the constraint.
            let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
            assert_eq!(
                enc.solver_mut().solve_assuming(&negated),
                SolveResult::Unsat
            );
        }
    }

    #[test]
    fn modes_agree_on_xor_heavy_circuits() {
        // XOR/XNOR-rich random circuits: both encoders must assign every
        // PO identically to the interpreter.
        for seed in 0..3u64 {
            let c = GeneratorConfig::new("xorheavy", 5, 3, 8, 60)
                .with_seed(0xE0E + seed)
                .generate();
            let mut rng = SplitMix64::new(seed + 1);
            let mut encs = [
                Encoder::with_mode(XorMode::Native),
                Encoder::with_mode(XorMode::Tseitin),
            ];
            let mut ev = Evaluator::new(&c);
            for _ in 0..6 {
                let pi_vals: Vec<bool> = (0..c.inputs().len()).map(|_| rng.gen_bool()).collect();
                let st_vals: Vec<bool> = (0..c.num_dffs()).map(|_| rng.gen_bool()).collect();
                ev.eval(&pi_vals, &st_vals);
                let expect = ev.output_values();
                for enc in &mut encs {
                    let pis = enc.fresh_many(c.inputs().len());
                    let state = enc.fresh_many(c.num_dffs());
                    let cone = enc.comb(&c, &pis, &state);
                    let mut assumptions = pin(&pis, &pi_vals);
                    assumptions.extend(pin(&state, &st_vals));
                    assert_eq!(
                        enc.solver_mut().solve_assuming(&assumptions),
                        SolveResult::Sat
                    );
                    let po: Vec<bool> = cone
                        .po
                        .iter()
                        .map(|&l| enc.solver().lit_model_value(l).unwrap())
                        .collect();
                    assert_eq!(po, expect, "{:?} diverged on seed {seed}", enc.xor_mode());
                }
            }
        }
    }

    #[test]
    fn xor2_folds_constants_and_duplicates() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let t = enc.constant(true);
        let f = enc.constant(false);
        assert_eq!(enc.xor2(a, f), a);
        assert_eq!(enc.xor2(a, t), !a);
        assert_eq!(enc.xor2(t, a), !a);
        assert_eq!(enc.xor2(a, a), f);
        assert_eq!(enc.xor2(a, !a), t);
        // Nothing above should have created definition clauses: one unit
        // clause for the pinned constant is all there is.
        assert_eq!(enc.solver().num_clauses(), 0, "units live on the trail");
        assert_eq!(enc.solver().num_vars(), 2);
    }

    #[test]
    fn constant_is_cached_and_pinned() {
        let mut enc = Encoder::new();
        let t1 = enc.constant(true);
        let f = enc.constant(false);
        let t2 = enc.constant(true);
        assert_eq!(t1, t2);
        assert_eq!(f, !t1);
        assert_eq!(enc.solver_mut().solve_assuming(&[f]), SolveResult::Unsat);
    }

    #[test]
    fn gate_encoding_is_exhaustively_correct() {
        // Every kind, arities 1..=3 where legal, all input combinations.
        for kind in GateKind::ALL {
            for arity in 0..=3usize {
                if !kind.arity_ok(arity) {
                    continue;
                }
                for bits in 0..1u32 << arity {
                    let mut enc = Encoder::new();
                    let ins = enc.fresh_many(arity);
                    let out = enc.gate(kind, &ins);
                    let vals: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
                    let mut assumptions = pin(&ins, &vals);
                    let expect = kind.eval(&vals);
                    assumptions.push(if expect { out } else { !out });
                    assert_eq!(
                        enc.solver_mut().solve_assuming(&assumptions),
                        SolveResult::Sat,
                        "{kind} on {vals:?} must be {expect}"
                    );
                    let mut refute = pin(&ins, &vals);
                    refute.push(if expect { !out } else { out });
                    assert_eq!(
                        enc.solver_mut().solve_assuming(&refute),
                        SolveResult::Unsat,
                        "{kind} on {vals:?} must not be {}",
                        !expect
                    );
                }
            }
        }
    }

    #[test]
    fn unrolled_frames_track_sequential_evaluation() {
        let c = s208_like();
        let mut enc = Encoder::new();
        let mut rng = SplitMix64::new(77);
        let frames = 4;
        let all_pis: Vec<Vec<Lit>> = (0..frames)
            .map(|_| enc.fresh_many(c.inputs().len()))
            .collect();
        let mut state = enc.fresh_many(c.num_dffs());
        let init = state.clone();
        let mut cones = Vec::new();
        for pis in &all_pis {
            let cone = enc.comb(&c, pis, &state);
            state = cone.next_state.clone();
            cones.push(cone);
        }

        let st0: Vec<bool> = (0..c.num_dffs()).map(|_| rng.gen_bool()).collect();
        let stimuli: Vec<Vec<bool>> = (0..frames)
            .map(|_| (0..c.inputs().len()).map(|_| rng.gen_bool()).collect())
            .collect();
        let mut assumptions = pin(&init, &st0);
        for (pis, vals) in all_pis.iter().zip(&stimuli) {
            assumptions.extend(pin(pis, vals));
        }
        assert_eq!(
            enc.solver_mut().solve_assuming(&assumptions),
            SolveResult::Sat
        );

        let mut ev = Evaluator::new(&c);
        let mut st = st0;
        for (cone, vals) in cones.iter().zip(&stimuli) {
            ev.eval(vals, &st);
            let po: Vec<Option<bool>> = cone
                .po
                .iter()
                .map(|&l| enc.solver().lit_model_value(l))
                .collect();
            let expect: Vec<Option<bool>> = ev.output_values().into_iter().map(Some).collect();
            assert_eq!(po, expect, "PO mismatch in an unrolled frame");
            st = ev.next_state();
        }
    }
}
