//! Constraint encoding of [`netlist`] circuits onto the [`satsolver`]:
//! Tseitin clauses for gate logic, native GF(2) xor constraints for
//! parity.
//!
//! The bridge between the structural world (gates, nets, flops) and the
//! constraint world the solver lives in. One [`Encoder`] owns a
//! [`satsolver::Solver`] and incrementally appends structure to it as a
//! stream of [`satsolver::Constraint`]s:
//!
//! * [`Encoder::gate`] — one gate of any [`netlist::GateKind`], with
//!   constant folding and definition-variable introduction only where a
//!   gate genuinely needs one;
//! * [`Encoder::comb`] — a whole combinational frame, returning a
//!   [`CombCone`] with a literal for every driven net (time-unroll a
//!   sequential circuit by chaining `next_state` into the next call);
//! * [`Encoder::linear_form`] — `row · x` parities over GF(2), the piece
//!   that lets the DynUnlock attack express LFSR keystream bits as
//!   literals over seed variables. Under the default [`XorMode::Native`]
//!   each form is **one** wide xor constraint handled by the solver's
//!   GF(2) engine; [`XorMode::Tseitin`] keeps the classical clause
//!   expansion as a differential reference.
//!
//! Everything is *incremental*: encoding never resets the solver, so DIP
//! loops keep one warm instance and just keep adding cones and
//! constraints between [`solve_assuming`](satsolver::Solver::solve_assuming)
//! calls.
//!
//! # Example
//!
//! ```
//! use cnf::Encoder;
//! use netlist::generator::s208_like;
//! use satsolver::SolveResult;
//!
//! let c = s208_like();
//! let mut enc = Encoder::new();
//! let pis = enc.fresh_many(c.inputs().len());
//! let state = enc.fresh_many(c.num_dffs());
//! let cone = enc.comb(&c, &pis, &state);
//!
//! // Ask the solver for a stimulus that drives the primary output high.
//! assert_eq!(enc.solver_mut().solve_assuming(&[cone.po[0]]), SolveResult::Sat);
//! let pi_vals: Vec<bool> = pis.iter().map(|&l| enc.solver().lit_model_value(l).unwrap()).collect();
//! let st_vals: Vec<bool> = state.iter().map(|&l| enc.solver().lit_model_value(l).unwrap()).collect();
//!
//! // The interpreter confirms the witness.
//! let mut ev = sim::Evaluator::new(&c);
//! ev.eval(&pi_vals, &st_vals);
//! assert!(ev.output_values()[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoder;

pub use encoder::{CombCone, Encoder, XorMode};
