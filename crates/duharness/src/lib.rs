//! Reproduction harness for the DynUnlock paper tables.
//!
//! The paper's Tables II/III report, per benchmark, how many SAT (DIP)
//! iterations and how much solver time DynUnlock needs to break EFF-Dyn.
//! This crate re-creates that experiment over the synthetic
//! [`netlist::generator::profiles`] circuits: lock each profile with a
//! random EFF-Dyn instance, run [`dynunlock::unlock`] against the locked
//! chip as a black-box [`sim::ScanAccess`] oracle, and tabulate the
//! results. The `dynunlock` bench target prints the table and emits
//! `BENCH_dynunlock.json` (schema in DESIGN.md §5, with DIP-iteration and
//! solve-time metrics per row).
//!
//! Absolute numbers are not comparable to the paper (synthetic circuits,
//! different solver, scaled sizes — see DESIGN.md §6); the *shape* is the
//! reproduced claim: every profile unlocks, in a handful of DIPs, in
//! solver time that stays far below the attack-resilience targets the
//! defense advertised.
//!
//! # Example
//!
//! ```
//! let cfg = duharness::HarnessConfig::tiny();
//! let rows = duharness::run_profiles(&cfg);
//! assert_eq!(rows.len(), cfg.profiles.len());
//! assert!(rows.iter().all(|r| r.unlock.verified));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynunlock::{
    unlock, AttackConfig, AttackState, FaultStats, RobustConfig, RobustOutcome, Step, Unlock,
};
use gf2::{BitVec, Xoshiro256};
use lfsr::TapSet;
use netlist::profiles::{by_name, BenchmarkProfile};
use netlist::Circuit;
use scanlock::{LockSpec, LockedScanChip};
use sim::{FaultSpec, FaultyOracle, ScanChain};

/// What to attack and how hard.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Paper benchmark names to run (must exist in
    /// [`netlist::profiles::PAPER_BENCHMARKS`]).
    pub profiles: Vec<&'static str>,
    /// Interface-size scale factor applied to each profile (the paper's
    /// full sizes are out of reach for a single-thread CDCL reproduction
    /// run on every CI push; DESIGN.md §6 discusses the substitution).
    pub scale: f64,
    /// Key-LFSR width (the paper's *key size*; Table III sweeps this).
    pub key_width: usize,
    /// Extra key widths to sweep: the first profile is re-attacked once
    /// per listed width and reported as `"{name}@w{width}"`. This is how
    /// the harness shows the paper's Table III claim — attack cost grows
    /// mildly with key size — without re-running every profile at every
    /// width.
    pub width_sweep: Vec<usize>,
    /// Key gates per chain, as a fraction of the flop count (≥ 2).
    pub gate_fraction: f64,
    /// Capture cycles per session.
    pub captures: usize,
    /// Use a shuffled (non-natural) scan stitching.
    pub shuffled_chains: bool,
    /// Deterministic variant seed for circuit synthesis and lock drawing.
    pub variant: u64,
    /// Worker-thread request for the word-parallel simulation substrate
    /// (`None` = `DU_THREADS`, then hardware; see [`par::resolve`]). The
    /// *resolved* count is recorded per row so a `BENCH_dynunlock.json`
    /// number can always be traced back to its execution shape.
    pub threads: Option<usize>,
    /// Packed-simulation lane width the run is recorded under (64 for the
    /// `u64` path, 256 for [`sim::W256`]).
    pub lane_width: usize,
    /// Certify each attack's convergence UNSAT with a checked DRAT+xor
    /// proof ([`AttackConfig::certify`]); proof size and check time are
    /// then recorded per row.
    pub certify: bool,
    /// Re-attack each profile through a seeded [`FaultyOracle`] (bit-flip
    /// noise + transient errors) with the fault-tolerant
    /// [`AttackState`] machine, reported as `"{name}+faults"` rows with
    /// `retries` / `repaired_bits` / `checkpoint_bytes` metrics
    /// (`DU_FAULTS=1`).
    pub faults: bool,
}

impl HarnessConfig {
    /// CI smoke sizes: three profiles, small circuits, 64-bit keys with
    /// one 80-bit sweep row.
    pub fn smoke() -> Self {
        HarnessConfig {
            profiles: vec!["s5378", "s13207", "s15850"],
            scale: 0.04,
            key_width: 64,
            width_sweep: vec![80],
            gate_fraction: 0.5,
            captures: 1,
            shuffled_chains: true,
            variant: 1,
            threads: None,
            lane_width: 64,
            certify: false,
            faults: false,
        }
    }

    /// Full bench sizes: four profiles (both suites), 64-bit keys with a
    /// 32- and 80-bit sweep.
    ///
    /// 64 bits matches the paper's headline key size. The old harness
    /// capped the width at 20 because the solver's resolution-only UNSAT
    /// proof over the mask parities blew up past ~24 bits; the native
    /// GF(2) xor engine removed that cliff, so the sweep now brackets the
    /// paper range from both sides (DESIGN.md §6).
    pub fn full() -> Self {
        HarnessConfig {
            profiles: vec!["s5378", "s13207", "s15850", "b20"],
            scale: 0.07,
            key_width: 64,
            width_sweep: vec![32, 80],
            gate_fraction: 0.5,
            captures: 1,
            shuffled_chains: true,
            variant: 1,
            threads: None,
            lane_width: 64,
            certify: false,
            faults: false,
        }
    }

    /// Debug-build test sizes: everything clamped tiny.
    pub fn tiny() -> Self {
        HarnessConfig {
            profiles: vec!["s5378", "b20"],
            scale: 0.01,
            key_width: 8,
            width_sweep: vec![],
            gate_fraction: 0.75,
            captures: 1,
            shuffled_chains: true,
            variant: 1,
            threads: None,
            lane_width: 64,
            certify: false,
            faults: false,
        }
    }

    /// [`smoke`](HarnessConfig::smoke) under `BENCH_SMOKE=1`, otherwise
    /// [`full`](HarnessConfig::full); `DU_CERTIFY=1` switches proof
    /// certification on for every attack in the run; `DU_FAULTS=1` adds
    /// the fault-injected `"{name}+faults"` rows.
    pub fn from_env() -> Self {
        let mut cfg = if bench::smoke() {
            HarnessConfig::smoke()
        } else {
            HarnessConfig::full()
        };
        cfg.certify = std::env::var("DU_CERTIFY").is_ok_and(|v| v == "1");
        cfg.faults = std::env::var("DU_FAULTS").is_ok_and(|v| v == "1");
        cfg
    }
}

/// One row of the reproduced table: the attacked instance and the attack's
/// outcome.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Paper benchmark name.
    pub name: String,
    /// Scan flop count of the attacked (scaled) circuit.
    pub flops: usize,
    /// Combinational gate count of the attacked circuit.
    pub gates: usize,
    /// Key-LFSR width.
    pub key_width: usize,
    /// Number of key gates on the chain.
    pub key_gates: usize,
    /// Resolved worker-thread count the run executed under (from
    /// [`HarnessConfig::threads`] via [`par::resolve`]).
    pub threads: usize,
    /// Packed-simulation lane width (see [`HarnessConfig::lane_width`]).
    pub lane_width: usize,
    /// The attack result.
    pub unlock: Unlock,
    /// Fault-handling counters, for `"{name}+faults"` rows run through
    /// the [`AttackState`] machine against a [`FaultyOracle`].
    pub faults: Option<FaultStats>,
    /// Size of a mid-attack checkpoint taken during the run, for fault
    /// rows (the serialized `duckpt` document, in bytes).
    pub checkpoint_bytes: Option<usize>,
}

/// Locks one (scaled) profile and runs the attack against it.
///
/// # Panics
///
/// Panics if the profile name is unknown or the attack fails — the
/// harness reproduces a table of successes; a failure is a bug, not a
/// data point.
pub fn attack_profile(profile: &BenchmarkProfile, cfg: &HarnessConfig) -> AttackRow {
    let inst = LockedInstance::build(profile, cfg);
    let mut oracle = inst.oracle();
    let attack_cfg = AttackConfig {
        captures: cfg.captures,
        certify: cfg.certify,
        ..AttackConfig::default()
    };
    let unlock = unlock(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        &mut oracle,
        &attack_cfg,
    )
    .unwrap_or_else(|e| panic!("attack on {} failed: {e}", profile.name));
    inst.row(profile.name.to_string(), cfg, unlock, None, None)
}

/// Re-attacks one profile through a seeded [`FaultyOracle`] (bit-flip
/// noise plus transient query errors) with the fault-tolerant
/// [`AttackState`] machine: majority-vote replication repairs the noise,
/// retry + backoff absorbs the transients, and a mid-run checkpoint is
/// taken so the row can report its serialized size.
///
/// # Panics
///
/// Panics if the profile name is unknown or the attack degrades — the
/// configured fault schedule is within what the machine must repair.
pub fn attack_profile_faulty(profile: &BenchmarkProfile, cfg: &HarnessConfig) -> AttackRow {
    let inst = LockedInstance::build(profile, cfg);
    let robust = RobustConfig {
        base: AttackConfig {
            captures: cfg.captures,
            certify: cfg.certify,
            ..AttackConfig::default()
        },
        replication: 3,
        ..RobustConfig::default()
    };
    // Deterministic fault schedule, decorrelated from the lock drawing.
    let fault_seed = cfg.variant ^ (inst.circuit.num_dffs() as u64).rotate_left(17) ^ 0xFA_07;
    let mut oracle = FaultyOracle::new(
        inst.oracle(),
        FaultSpec::new(fault_seed)
            .with_bit_flips(1_000)
            .with_transients(20_000),
    );
    let mut state = AttackState::new(&inst.circuit, &inst.chain, &inst.spec, robust);
    let mut checkpoint_bytes = None;
    loop {
        match state.step(&mut oracle) {
            Step::Dip | Step::OutOfBudget => {
                // One checkpoint per run, once there is real state in it.
                if checkpoint_bytes.is_none() {
                    checkpoint_bytes = Some(state.checkpoint().to_bytes().len());
                }
            }
            Step::Converged => break,
            Step::Degraded(reason) => {
                panic!("fault-mode attack on {} degraded: {reason}", profile.name)
            }
        }
    }
    let checkpoint_bytes = checkpoint_bytes.unwrap_or_else(|| state.checkpoint().to_bytes().len());
    match state.finish(&mut oracle) {
        RobustOutcome::Unlocked { unlock, faults } => inst.row(
            format!("{}+faults", profile.name),
            cfg,
            unlock,
            Some(faults),
            Some(checkpoint_bytes),
        ),
        RobustOutcome::Partial(report) => {
            panic!(
                "fault-mode attack on {} degraded in verification: {}",
                profile.name, report.reason
            )
        }
    }
}

/// One locked instance, built deterministically from a profile and the
/// harness knobs — shared by the reliable and fault-injected attack paths
/// so both attack the *same* lock.
struct LockedInstance {
    circuit: Circuit,
    chain: ScanChain,
    spec: LockSpec,
    secret: BitVec,
}

impl LockedInstance {
    fn build(profile: &BenchmarkProfile, cfg: &HarnessConfig) -> LockedInstance {
        let scaled = profile.scaled(cfg.scale);
        let circuit = scaled.build(cfg.variant);
        let n = circuit.num_dffs();
        let mut rng = Xoshiro256::new(cfg.variant.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (n as u64));
        let chain = if cfg.shuffled_chains {
            ScanChain::shuffled(n, &mut rng)
        } else {
            ScanChain::natural(n)
        };
        // A session is 2n + c edges; the key schedule must not wrap inside it.
        let min_period = (2 * n + cfg.captures) as u64;
        let taps = TapSet::for_width(cfg.key_width, min_period, &mut rng)
            .expect("a usable tap set exists for the configured key width");
        let num_gates = ((n as f64 * cfg.gate_fraction) as usize).clamp(2, n);
        let spec = LockSpec::random(taps, n, num_gates, &mut rng);
        let secret = spec.random_seed(&mut rng);
        LockedInstance {
            circuit,
            chain,
            spec,
            secret,
        }
    }

    fn oracle(&self) -> LockedScanChip<'_> {
        LockedScanChip::new(
            &self.circuit,
            self.chain.clone(),
            self.spec.clone(),
            self.secret.clone(),
        )
    }

    fn row(
        &self,
        name: String,
        cfg: &HarnessConfig,
        unlock: Unlock,
        faults: Option<FaultStats>,
        checkpoint_bytes: Option<usize>,
    ) -> AttackRow {
        AttackRow {
            name,
            flops: self.circuit.num_dffs(),
            gates: self.circuit.num_gates(),
            key_width: self.spec.width(),
            key_gates: self.spec.gates().len(),
            threads: par::resolve(cfg.threads),
            lane_width: cfg.lane_width,
            unlock,
            faults,
            checkpoint_bytes,
        }
    }
}

/// Runs [`attack_profile`] over every configured profile, then re-attacks
/// the first profile once per [`HarnessConfig::width_sweep`] width,
/// reporting those rows as `"{name}@w{width}"`. With
/// [`HarnessConfig::faults`] set, every configured profile is additionally
/// re-attacked through a faulty oracle ([`attack_profile_faulty`]) as a
/// `"{name}+faults"` row.
///
/// # Panics
///
/// Panics on unknown profile names or attack failures.
pub fn run_profiles(cfg: &HarnessConfig) -> Vec<AttackRow> {
    let mut rows: Vec<AttackRow> = cfg
        .profiles
        .iter()
        .map(|name| {
            let profile = by_name(name).unwrap_or_else(|| panic!("unknown profile {name:?}"));
            attack_profile(profile, cfg)
        })
        .collect();
    if let Some(first) = cfg.profiles.first() {
        let profile = by_name(first).unwrap_or_else(|| panic!("unknown profile {first:?}"));
        for &width in &cfg.width_sweep {
            let mut swept = cfg.clone();
            swept.key_width = width;
            let mut row = attack_profile(profile, &swept);
            row.name = format!("{}@w{width}", row.name);
            rows.push(row);
        }
    }
    if cfg.faults {
        for name in &cfg.profiles {
            let profile = by_name(name).unwrap_or_else(|| panic!("unknown profile {name:?}"));
            rows.push(attack_profile_faulty(profile, cfg));
        }
    }
    rows
}

/// Prints the rows in the paper's table layout.
pub fn print_table(rows: &[AttackRow]) {
    println!(
        "{:<10} {:>6} {:>7} {:>5} {:>6} {:>6} {:>8} {:>12} {:>12} {:>9}",
        "bench", "flops", "gates", "key", "kgates", "DIPs", "queries", "solve", "total", "exact"
    );
    for r in rows {
        println!(
            "{:<10} {:>6} {:>7} {:>5} {:>6} {:>6} {:>8} {:>12?} {:>12?} {:>9}",
            r.name,
            r.flops,
            r.gates,
            r.key_width,
            r.key_gates,
            r.unlock.dip_iterations,
            r.unlock.oracle_queries,
            r.unlock.solve_time,
            r.unlock.total_time,
            if r.unlock.nullity == 0 {
                "yes"
            } else {
                "class"
            },
        );
    }
}

/// Records the rows into a [`bench::Reporter`] with the DIP-iteration and
/// solve-time columns as per-case metrics.
pub fn record(rows: &[AttackRow], reporter: &mut bench::Reporter) {
    for r in rows {
        let id = format!("dynunlock/{}", r.name);
        reporter.record_timed(&id, r.flops as u64, r.unlock.total_time);
        reporter.add_metric(&id, "dip_iterations", r.unlock.dip_iterations as f64);
        reporter.add_metric(&id, "oracle_queries", r.unlock.oracle_queries as f64);
        reporter.add_metric(&id, "solve_ns", r.unlock.solve_time.as_nanos() as f64);
        reporter.add_metric(&id, "key_width", r.key_width as f64);
        reporter.add_metric(&id, "key_gates", r.key_gates as f64);
        reporter.add_metric(&id, "threads", r.threads as f64);
        reporter.add_metric(&id, "lane_width", r.lane_width as f64);
        reporter.add_metric(&id, "rank", r.unlock.rank as f64);
        reporter.add_metric(&id, "verified", if r.unlock.verified { 1.0 } else { 0.0 });
        let st = &r.unlock.solver_stats;
        reporter.add_metric(&id, "solver_decisions", st.decisions as f64);
        reporter.add_metric(&id, "solver_conflicts", st.conflicts as f64);
        reporter.add_metric(&id, "solver_restarts", st.restarts as f64);
        reporter.add_metric(&id, "solver_propagations", st.propagations as f64);
        reporter.add_metric(&id, "budget_exhaustions", st.budget_exhaustions as f64);
        if let Some(faults) = &r.faults {
            reporter.add_metric(&id, "retries", faults.retries as f64);
            reporter.add_metric(&id, "repaired_bits", faults.repaired_bits as f64);
            reporter.add_metric(&id, "backoff_ns", faults.backoff.as_nanos() as f64);
        }
        if let Some(bytes) = r.checkpoint_bytes {
            reporter.add_metric(&id, "checkpoint_bytes", bytes as f64);
        }
        if let Some(cert) = &r.unlock.certificate {
            reporter.add_metric(&id, "proof_steps", cert.stats.steps() as f64);
            reporter.add_metric(&id, "proof_bytes", cert.proof.len() as f64);
            reporter.add_metric(&id, "certify_ns", r.unlock.certify_time.as_nanos() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profiles_unlock_and_record() {
        let cfg = HarnessConfig::tiny();
        let rows = run_profiles(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.unlock.verified, "{} must verify", r.name);
            assert!(r.key_gates >= 2);
        }
        let mut rep = bench::Reporter::new("dynunlock-selftest");
        record(&rows, &mut rep);
        let dir = std::env::temp_dir().join(format!("duharness-selftest-{}", std::process::id()));
        let path = rep.finish_to(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for needle in [
            "dynunlock/s5378",
            "dynunlock/b20",
            "dip_iterations",
            "solve_ns",
            "\"threads\":",
            "\"lane_width\": 64",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn certified_rows_record_proof_metrics() {
        let mut cfg = HarnessConfig::tiny();
        cfg.profiles = vec!["s5378"];
        cfg.certify = true;
        let rows = run_profiles(&cfg);
        let cert = rows[0]
            .unlock
            .certificate
            .as_ref()
            .expect("certified run carries a certificate");
        assert!(cert.stats.steps() > 0);
        let mut rep = bench::Reporter::new("dynunlock-certify-selftest");
        record(&rows, &mut rep);
        let dir = std::env::temp_dir().join(format!("duharness-certify-{}", std::process::id()));
        let path = rep.finish_to(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for needle in ["proof_steps", "proof_bytes", "certify_ns"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn rows_record_an_explicit_thread_request_verbatim() {
        let mut cfg = HarnessConfig::tiny();
        cfg.threads = Some(3);
        let row = attack_profile(by_name("s5378").unwrap(), &cfg);
        assert_eq!(row.threads, 3);
        assert_eq!(row.lane_width, 64);
        // Unrequested: resolved from DU_THREADS / hardware, never zero.
        cfg.threads = None;
        let row = attack_profile(by_name("s5378").unwrap(), &cfg);
        assert!(row.threads >= 1);
    }

    #[test]
    fn rows_are_deterministic_in_the_variant() {
        let cfg = HarnessConfig::tiny();
        let a = attack_profile(by_name("s5378").unwrap(), &cfg);
        let b = attack_profile(by_name("s5378").unwrap(), &cfg);
        assert_eq!(a.unlock.seed, b.unlock.seed);
        assert_eq!(a.unlock.dip_iterations, b.unlock.dip_iterations);
    }

    #[test]
    fn ci_profiles_run_at_paper_key_widths() {
        // Refactor guard: the paper's headline key size is 64 bits, and
        // both CI-facing profiles must exercise it, with an 80-bit sweep
        // row proving there is headroom past the paper.
        for cfg in [HarnessConfig::smoke(), HarnessConfig::full()] {
            assert!(
                cfg.key_width >= 64,
                "CI profiles must run at paper key widths (got {})",
                cfg.key_width
            );
            assert!(
                cfg.width_sweep.contains(&80),
                "CI profiles must sweep a row at 80 bits"
            );
        }
    }

    #[test]
    fn width_sweep_adds_labelled_rows() {
        let mut cfg = HarnessConfig::tiny();
        cfg.width_sweep = vec![12];
        let rows = run_profiles(&cfg);
        assert_eq!(rows.len(), cfg.profiles.len() + 1);
        let swept = rows.last().unwrap();
        assert_eq!(swept.name, "s5378@w12");
        assert_eq!(swept.key_width, 12);
        assert!(swept.unlock.verified);
    }

    #[test]
    fn fault_rows_unlock_and_record_fault_metrics() {
        let mut cfg = HarnessConfig::tiny();
        cfg.profiles = vec!["s5378"];
        cfg.faults = true;
        let rows = run_profiles(&cfg);
        assert_eq!(rows.len(), 2, "one reliable row plus one fault row");
        let fault_row = rows.last().unwrap();
        assert_eq!(fault_row.name, "s5378+faults");
        assert!(fault_row.unlock.verified, "fault row must still verify");
        // Same lock as the reliable row, so the recovered seed agrees.
        assert_eq!(fault_row.unlock.seed, rows[0].unlock.seed);
        let ckpt = fault_row.checkpoint_bytes.expect("fault rows checkpoint");
        assert!(ckpt > 0);
        assert!(fault_row.faults.is_some());

        let mut rep = bench::Reporter::new("dynunlock-faults-selftest");
        record(&rows, &mut rep);
        let dir = std::env::temp_dir().join(format!("duharness-faults-{}", std::process::id()));
        let path = rep.finish_to(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for needle in [
            "s5378+faults",
            "retries",
            "repaired_bits",
            "checkpoint_bytes",
            "solver_restarts",
            "solver_decisions",
            "budget_exhaustions",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown profile")]
    fn unknown_profile_panics() {
        let mut cfg = HarnessConfig::tiny();
        cfg.profiles = vec!["nonesuch"];
        run_profiles(&cfg);
    }
}
