//! The DynUnlock reproduction table (paper Tables II/III shape).
//!
//! Locks each configured benchmark profile with a random EFF-Dyn instance
//! and times the full attack: DIP loop, linear seed recovery, and
//! verification probes. Emits `BENCH_dynunlock.json` with per-row
//! `dip_iterations` / `solve_ns` / `oracle_queries` metrics.
//!
//! `BENCH_SMOKE=1` runs the reduced CI configuration.

fn main() {
    let cfg = duharness::HarnessConfig::from_env();
    println!(
        "dynunlock reproduction: {} profiles, scale {}, key width {} (sweep {:?})",
        cfg.profiles.len(),
        cfg.scale,
        cfg.key_width,
        cfg.width_sweep
    );
    let rows = duharness::run_profiles(&cfg);
    print_rows(&rows);
    if let Some(first) = rows.first() {
        println!(
            "execution shape: {} worker thread(s), {}-lane packed words",
            first.threads, first.lane_width
        );
    }
    let mut reporter = bench::Reporter::new("dynunlock");
    duharness::record(&rows, &mut reporter);
    reporter.finish();
}

fn print_rows(rows: &[duharness::AttackRow]) {
    duharness::print_table(rows);
    let total_dips: usize = rows.iter().map(|r| r.unlock.dip_iterations).sum();
    println!(
        "all {} profiles unlocked ({} DIPs total)",
        rows.len(),
        total_dips
    );
}
