//! Small deterministic PRNGs.
//!
//! Synthetic benchmark generation must be reproducible bit-for-bit across
//! platforms and library versions, so the repository carries its own
//! generators instead of depending on an external crate whose stream might
//! change between releases. These are the public-domain SplitMix64 and
//! xoshiro256** algorithms.

/// A source of uniformly distributed 64-bit values.
///
/// Implemented by [`SplitMix64`] and [`Xoshiro256`]; generic consumers
/// (circuit generator, fuzz helpers) accept any `Rng64`.
pub trait Rng64 {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly random value in `[0, bound)` using rejection
    /// sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a random boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns a random `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)`, returned sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.gen_index(n - i);
            idx.swap(i, j);
        }
        let mut out = idx[..k].to_vec();
        out.sort_unstable();
        out
    }
}

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seeding and for
/// low-volume decisions.
///
/// # Example
///
/// ```
/// use gf2::{Rng64, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator for bulk random data
/// (benchmark circuits, random seeds for locked chips).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the 64-bit seed through SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng64 for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 1234567 (from the public-domain C code).
        let mut rng = SplitMix64::new(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism across fresh instances.
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(first, rng2.next_u64());
        assert_eq!(second, rng2.next_u64());
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds_differ() {
        let mut a = Xoshiro256::new(5);
        let mut b = Xoshiro256::new(5);
        let mut c = Xoshiro256::new(6);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Xoshiro256::new(99);
        for _ in 0..1000 {
            assert!(rng.gen_range(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut rng = Xoshiro256::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = Xoshiro256::new(17);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = SplitMix64::new(1);
        let s = rng.sample_indices(10, 10);
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::new(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(0).gen_range(0);
    }
}
