//! Gaussian elimination over GF(2): solving, nullspaces, solution counting.

use std::fmt;

use crate::{BitMatrix, BitVec};

/// Error returned when a linear system `A·x = b` has no solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveError;

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("linear system over GF(2) is inconsistent")
    }
}

impl std::error::Error for SolveError {}

/// The full solution set of a consistent linear system over GF(2).
///
/// Every solution is `particular ⊕ (some XOR-combination of nullspace basis
/// vectors)`; the set has exactly `2^nullity` elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinSolution {
    /// One solution of `A·x = b`.
    pub particular: BitVec,
    /// Basis of the solution space of `A·x = 0`.
    pub nullspace: Vec<BitVec>,
}

impl LinSolution {
    /// Number of free dimensions (`log2` of the solution count).
    pub fn nullity(&self) -> usize {
        self.nullspace.len()
    }

    /// Number of solutions, saturating at `u128::MAX` for nullity ≥ 128.
    pub fn count(&self) -> u128 {
        if self.nullity() >= 128 {
            u128::MAX
        } else {
            1u128 << self.nullity()
        }
    }

    /// Enumerates up to `cap` solutions (Gray-code order starting from the
    /// particular solution).
    pub fn enumerate(&self, cap: usize) -> Vec<BitVec> {
        let mut out = Vec::new();
        let mut current = self.particular.clone();
        out.push(current.clone());
        if self.nullspace.is_empty() {
            return out;
        }
        let total = self.count().min(cap as u128);
        let mut i: u128 = 1;
        while (out.len() as u128) < total {
            // Gray code: flip the basis vector indexed by the lowest set bit
            // of the counter; each step changes current by exactly one basis
            // vector, visiting all combinations.
            let bit = i.trailing_zeros() as usize;
            current.xor_assign(&self.nullspace[bit]);
            out.push(current.clone());
            i += 1;
        }
        out
    }

    /// Whether `x` belongs to the solution set. Cost is one Gaussian
    /// elimination of the basis plus a reduction of `x ⊕ particular`.
    pub fn contains(&self, x: &BitVec) -> bool {
        let mut diff = x.clone();
        diff.xor_assign(&self.particular);
        // Bring the basis into echelon form (unique leading bits), then
        // reduce `diff`; membership in the span means it reduces to zero.
        let mut echelon: Vec<BitVec> = Vec::with_capacity(self.nullspace.len());
        for b in &self.nullspace {
            let mut v = b.clone();
            for e in &echelon {
                let lead = e.first_one().expect("echelon vectors are nonzero");
                if v.get(lead) {
                    v.xor_assign(e);
                }
            }
            if !v.is_zero() {
                echelon.push(v);
                // Keep ascending leading-bit order: a reduction pass then
                // never re-introduces a bit at an already-visited lead,
                // because XOR with a vector only touches bits ≥ its lead.
                echelon.sort_by_key(super::bitvec::BitVec::first_one);
            }
        }
        for e in &echelon {
            let lead = e.first_one().expect("echelon vectors are nonzero");
            if diff.get(lead) {
                diff.xor_assign(e);
            }
        }
        diff.is_zero()
    }
}

/// Incremental Gaussian elimination over GF(2).
///
/// Rows (equations `coeffs · x = rhs`) can be added one at a time; the
/// solver maintains an echelon form so consistency is detected immediately
/// and queries (`rank`, [`LinSolver::solve`]) stay cheap. This is the tool
/// the attack uses to reason about which seed bits are pinned by the
/// recovered key-stream information.
///
/// # Example
///
/// ```
/// use gf2::{BitVec, LinSolver};
///
/// let mut s = LinSolver::new(2);
/// s.add_equation(BitVec::from_bools([true, true]), true).unwrap();  // x0^x1 = 1
/// s.add_equation(BitVec::from_bools([false, true]), false).unwrap(); // x1 = 0
/// let sol = s.solve().unwrap();
/// assert_eq!(sol.particular, BitVec::from_bools([true, false]));
/// assert_eq!(sol.count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinSolver {
    vars: usize,
    /// Echelon rows: (coefficients, rhs), each with a unique leading column.
    rows: Vec<(BitVec, bool)>,
}

impl LinSolver {
    /// Creates a solver over `vars` unknowns.
    pub fn new(vars: usize) -> Self {
        LinSolver {
            vars,
            rows: Vec::new(),
        }
    }

    /// Number of unknowns.
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Current rank (number of independent equations).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// log2 of the current solution-set size.
    pub fn nullity(&self) -> usize {
        self.vars - self.rows.len()
    }

    /// Adds the equation `coeffs · x = rhs`.
    ///
    /// Returns `Ok(true)` if the equation was independent (rank grew),
    /// `Ok(false)` if it was implied by existing ones.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the equation contradicts the system; the
    /// solver is left unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: BitVec, rhs: bool) -> Result<bool, SolveError> {
        assert_eq!(coeffs.len(), self.vars, "equation width mismatch");
        let mut c = coeffs;
        let mut r = rhs;
        for (row, rrhs) in &self.rows {
            if let Some(lead) = row.first_one() {
                if c.get(lead) {
                    c.xor_assign(row);
                    r ^= rrhs;
                }
            }
        }
        if c.is_zero() {
            return if r { Err(SolveError) } else { Ok(false) };
        }
        // Back-substitute into existing rows to keep reduced echelon form.
        let lead = c.first_one().expect("nonzero row has a leading bit");
        for (row, rrhs) in &mut self.rows {
            if row.get(lead) {
                row.xor_assign(&c);
                *rrhs ^= r;
            }
        }
        self.rows.push((c, r));
        self.rows.sort_by_key(|(row, _)| row.first_one());
        Ok(true)
    }

    /// Adds all equations from a matrix/vector pair.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] at the first inconsistent equation.
    pub fn add_system(&mut self, a: &BitMatrix, b: &BitVec) -> Result<(), SolveError> {
        assert_eq!(a.num_rows(), b.len(), "system height mismatch");
        for (i, row) in a.iter_rows().enumerate() {
            self.add_equation(row.clone(), b.get(i))?;
        }
        Ok(())
    }

    /// Value of variable `v` if it is uniquely determined by the system.
    pub fn pinned_value(&self, v: usize) -> Option<bool> {
        self.rows.iter().find_map(|(row, rhs)| {
            (row.first_one() == Some(v) && row.count_ones() == 1).then_some(*rhs)
        })
    }

    /// Solves the system accumulated so far.
    ///
    /// The rows are kept in *reduced* echelon form (each leading column
    /// appears in exactly one row), so the particular solution reads off
    /// directly and the nullspace basis comes from the free columns.
    pub fn solve(&self) -> Result<LinSolution, SolveError> {
        let mut particular = BitVec::zeros(self.vars);
        let mut is_pivot = vec![false; self.vars];
        for (row, rhs) in &self.rows {
            let lead = row.first_one().expect("echelon rows are nonzero");
            is_pivot[lead] = true;
            if *rhs {
                particular.set(lead, true);
            }
        }
        let mut nullspace = Vec::with_capacity(self.nullity());
        for (free, &pivot) in is_pivot.iter().enumerate() {
            if pivot {
                continue;
            }
            let mut basis = BitVec::zeros(self.vars);
            basis.set(free, true);
            for (row, _) in &self.rows {
                if row.get(free) {
                    let lead = row.first_one().expect("echelon rows are nonzero");
                    basis.set(lead, true);
                }
            }
            nullspace.push(basis);
        }
        Ok(LinSolution {
            particular,
            nullspace,
        })
    }
}

/// One-shot solve of `A·x = b` via blocked M4RI elimination of the
/// augmented matrix `[A | b]` (see [`crate::m4ri`]).
///
/// The incremental [`LinSolver`] path is the scalar reference for this
/// batch routine; differential tests assert they agree.
///
/// # Errors
///
/// Returns [`SolveError`] if the system is inconsistent.
///
/// # Panics
///
/// Panics if `b.len() != a.num_rows()`.
pub fn solve_system(a: &BitMatrix, b: &BitVec) -> Result<LinSolution, SolveError> {
    assert_eq!(a.num_rows(), b.len(), "system height mismatch");
    let cols = a.num_cols();
    // Augment each row with its right-hand side as one extra column so the
    // elimination carries the rhs along for free.
    let mut rows: Vec<BitVec> = a
        .iter_rows()
        .enumerate()
        .map(|(i, row)| {
            let mut aug = row.resized(cols + 1);
            if b.get(i) {
                aug.set(cols, true);
            }
            aug
        })
        .collect();
    let pivots = crate::m4ri::rref(&mut rows);
    // A pivot in the rhs column is a row reading `0 = 1`.
    if pivots.last() == Some(&cols) {
        return Err(SolveError);
    }
    let mut particular = BitVec::zeros(cols);
    for (row, &pcol) in rows.iter().zip(&pivots) {
        if row.get(cols) {
            particular.set(pcol, true);
        }
    }
    // The nullspace ignores the augmented column: truncate rows back to the
    // coefficient width (the rhs column is never a pivot here).
    let coeff_rows: Vec<BitVec> = rows[..pivots.len()]
        .iter()
        .map(|r| r.resized(cols))
        .collect();
    let nullspace = crate::m4ri::nullspace_from_rref(&coeff_rows, &pivots, cols);
    Ok(LinSolution {
        particular,
        nullspace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng64, Xoshiro256};

    #[test]
    fn unique_solution() {
        // x0 ^ x1 = 1, x1 = 1 => x0 = 0
        let mut s = LinSolver::new(2);
        assert!(s
            .add_equation(BitVec::from_bools([true, true]), true)
            .unwrap());
        assert!(s
            .add_equation(BitVec::from_bools([false, true]), true)
            .unwrap());
        let sol = s.solve().unwrap();
        assert_eq!(sol.particular.to_bools(), vec![false, true]);
        assert_eq!(sol.count(), 1);
        assert_eq!(s.pinned_value(0), Some(false));
        assert_eq!(s.pinned_value(1), Some(true));
    }

    #[test]
    fn dependent_equation_reports_false() {
        let mut s = LinSolver::new(3);
        s.add_equation(BitVec::from_bools([true, true, false]), true)
            .unwrap();
        s.add_equation(BitVec::from_bools([false, true, true]), false)
            .unwrap();
        // sum of the two
        let dep = s
            .add_equation(BitVec::from_bools([true, false, true]), true)
            .unwrap();
        assert!(!dep);
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn contradiction_detected_and_state_preserved() {
        let mut s = LinSolver::new(2);
        s.add_equation(BitVec::from_bools([true, false]), true)
            .unwrap();
        let err = s.add_equation(BitVec::from_bools([true, false]), false);
        assert_eq!(err, Err(SolveError));
        assert_eq!(s.rank(), 1);
        assert!(s.solve().is_ok());
    }

    #[test]
    fn nullspace_vectors_satisfy_homogeneous_system() {
        let mut rng = Xoshiro256::new(42);
        let a = BitMatrix::random(6, 10, &mut rng);
        let x = BitVec::random(10, &mut rng);
        let b = a.mul_vec(&x);
        let sol = solve_system(&a, &b).unwrap();
        assert_eq!(a.mul_vec(&sol.particular), b);
        for n in &sol.nullspace {
            assert!(a.mul_vec(n).is_zero());
        }
        assert!(sol.contains(&x));
    }

    #[test]
    fn enumerate_yields_distinct_valid_solutions() {
        let mut rng = Xoshiro256::new(1);
        let a = BitMatrix::random(4, 7, &mut rng);
        let x = BitVec::random(7, &mut rng);
        let b = a.mul_vec(&x);
        let sol = solve_system(&a, &b).unwrap();
        let sols = sol.enumerate(1000);
        assert_eq!(sols.len() as u128, sol.count().min(1000));
        let mut set = std::collections::HashSet::new();
        for s in &sols {
            assert_eq!(a.mul_vec(s), b, "enumerated vector must solve system");
            assert!(set.insert(s.clone()), "solutions must be distinct");
        }
    }

    #[test]
    fn enumerate_respects_cap() {
        let s = LinSolver::new(10); // empty system: 1024 solutions
        let sol = s.solve().unwrap();
        assert_eq!(sol.count(), 1024);
        assert_eq!(sol.enumerate(100).len(), 100);
    }

    #[test]
    fn rank_nullity_theorem() {
        let mut rng = Xoshiro256::new(9);
        for _ in 0..10 {
            let rows = 3 + rng.gen_index(6);
            let cols = 4 + rng.gen_index(8);
            let a = BitMatrix::random(rows, cols, &mut rng);
            let mut s = LinSolver::new(cols);
            let zero = BitVec::zeros(rows);
            s.add_system(&a, &zero).unwrap();
            assert_eq!(s.rank() + s.nullity(), cols);
            assert_eq!(s.rank(), a.rank());
        }
    }

    #[test]
    fn contains_rejects_non_solution() {
        let mut s = LinSolver::new(3);
        s.add_equation(BitVec::from_bools([true, false, false]), true)
            .unwrap();
        let sol = s.solve().unwrap();
        let mut bad = sol.particular.clone();
        bad.flip(0);
        assert!(!sol.contains(&bad));
    }

    #[test]
    fn inconsistent_one_shot() {
        let mut a = BitMatrix::zeros(2, 2);
        a.set(0, 0, true);
        a.set(1, 0, true);
        let b = BitVec::from_bools([true, false]);
        assert!(solve_system(&a, &b).is_err());
    }

    /// The batch M4RI path must agree with the incremental LinSolver
    /// reference on random systems: same consistency verdict, same
    /// solution set.
    #[test]
    fn batch_solve_matches_incremental_reference() {
        let mut rng = Xoshiro256::new(2024);
        for trial in 0..20 {
            let rows = 2 + rng.gen_index(30);
            let cols = 2 + rng.gen_index(30);
            let a = BitMatrix::random(rows, cols, &mut rng);
            // Half the trials plant a solution (consistent); half draw a
            // random rhs (inconsistent whenever rank(A) < rank([A|b])).
            let b = if trial % 2 == 0 {
                a.mul_vec(&BitVec::random(cols, &mut rng))
            } else {
                BitVec::random(rows, &mut rng)
            };
            let mut reference = LinSolver::new(cols);
            let ref_result = reference.add_system(&a, &b);
            let batch = solve_system(&a, &b);
            match (ref_result, batch) {
                (Ok(()), Ok(sol)) => {
                    let ref_sol = reference.solve().unwrap();
                    assert_eq!(a.mul_vec(&sol.particular), b, "trial {trial}");
                    assert_eq!(sol.nullity(), ref_sol.nullity(), "trial {trial}");
                    for n in &sol.nullspace {
                        assert!(a.mul_vec(n).is_zero(), "trial {trial}");
                    }
                    assert!(ref_sol.contains(&sol.particular), "trial {trial}");
                }
                (Err(_), Err(_)) => {}
                (r, b) => panic!("trial {trial}: reference {r:?} vs batch {b:?}"),
            }
        }
    }

    #[test]
    fn batch_solve_handles_rank_deficient_consistent_systems() {
        let mut rng = Xoshiro256::new(7);
        let mut a = BitMatrix::random(5, 8, &mut rng);
        // duplicate rows => rank deficiency in the row space
        let dup = a.row(1).clone();
        a.push_row(dup);
        let x = BitVec::random(8, &mut rng);
        let b = a.mul_vec(&x);
        let sol = solve_system(&a, &b).unwrap();
        assert_eq!(a.mul_vec(&sol.particular), b);
        assert!(sol.contains(&x));
    }
}
