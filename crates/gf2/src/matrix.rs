//! Dense row-major matrices over GF(2).

use std::fmt;

use crate::BitVec;

/// A dense matrix over GF(2), stored as a vector of [`BitVec`] rows.
///
/// Used for LFSR companion matrices (`state_{t+1} = A · state_t`) and for
/// the scan-obfuscation mask matrices `T_in` / `T_out` whose rows give, for
/// each scan cell, the set of seed bits XOR-ed into that cell's data.
///
/// # Example
///
/// ```
/// use gf2::{BitMatrix, BitVec};
///
/// let mut a = BitMatrix::zeros(2, 2);
/// a.set(0, 1, true); // swap matrix
/// a.set(1, 0, true);
/// let x = BitVec::from_bools([true, false]);
/// assert_eq!(a.mul_vec(&x), BitVec::from_bools([false, true]));
/// assert_eq!(a.pow(2), BitMatrix::identity(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must share one length"
        );
        BitMatrix { rows, cols }
    }

    /// Fills a matrix with random bits.
    pub fn random<R: crate::Rng64>(rows: usize, cols: usize, rng: &mut R) -> Self {
        BitMatrix {
            rows: (0..rows).map(|_| BitVec::random(cols, rng)).collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.rows[r].set(c, value);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut BitVec {
        &mut self.rows[r]
    }

    /// Replaces row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the new row length differs from `num_cols`.
    pub fn set_row(&mut self, r: usize, row: BitVec) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.rows[r] = row;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from `num_cols` (unless the matrix
    /// had no rows, in which case the row defines the width).
    pub fn push_row(&mut self, row: BitVec) {
        if self.rows.is_empty() {
            self.cols = row.len();
        } else {
            assert_eq!(row.len(), self.cols, "row length mismatch");
        }
        self.rows.push(row);
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Matrix–vector product `A·x` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        BitVec::from_bools(self.rows.iter().map(|r| r.dot(x)))
    }

    /// Matrix product `A·B` over GF(2).
    ///
    /// Computed row-by-row: row i of the product is the XOR of rows of `B`
    /// selected by the set bits of row i of `A` (word-parallel, no
    /// transpose needed).
    ///
    /// # Panics
    ///
    /// Panics if `self.num_cols() != other.num_rows()`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols,
            other.num_rows(),
            "matrix product dimension mismatch"
        );
        let mut out = BitMatrix::zeros(self.num_rows(), other.num_cols());
        for (i, row) in self.rows.iter().enumerate() {
            let acc = out.row_mut(i);
            for j in row.iter_ones() {
                acc.xor_assign(other.row(j));
            }
        }
        out
    }

    /// Matrix power `A^e` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut e: u64) -> BitMatrix {
        assert_eq!(self.num_rows(), self.cols, "pow requires a square matrix");
        let mut result = BitMatrix::identity(self.cols);
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        result
    }

    /// Transposed copy.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.num_rows());
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.iter_ones() {
                out.set(j, i, true);
            }
        }
        out
    }

    /// Rank via blocked M4RI elimination on a working copy (see
    /// [`crate::m4ri`]).
    pub fn rank(&self) -> usize {
        let mut work = self.rows.clone();
        crate::m4ri::rref(&mut work).len()
    }

    /// Rank via plain Gaussian elimination on a working copy.
    ///
    /// The scalar reference for [`BitMatrix::rank`]; differential tests and
    /// the `wordpar` bench compare the two.
    pub fn rank_gaussian(&self) -> usize {
        let mut work = self.rows.clone();
        crate::m4ri::rref_gaussian(&mut work).len()
    }

    /// A basis of the right nullspace `{x : A·x = 0}`, computed with M4RI
    /// elimination. The basis has `num_cols() - rank()` vectors.
    pub fn nullspace(&self) -> Vec<BitVec> {
        let mut work = self.rows.clone();
        let pivots = crate::m4ri::rref(&mut work);
        let nrows = pivots.len();
        crate::m4ri::nullspace_from_rref(&work[..nrows], &pivots, self.cols)
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<BitMatrix> {
        assert_eq!(self.num_rows(), self.cols, "inverse requires square matrix");
        let n = self.cols;
        let mut work = self.rows.clone();
        let mut inv = BitMatrix::identity(n);
        for col in 0..n {
            let p = (col..n).find(|&r| work[r].get(col))?;
            work.swap(col, p);
            inv.rows.swap(col, p);
            let pivot_row = work[col].clone();
            let pivot_inv = inv.rows[col].clone();
            for (r, (wrow, irow)) in work.iter_mut().zip(inv.rows.iter_mut()).enumerate() {
                if r != col && wrow.get(col) {
                    wrow.xor_assign(&pivot_row);
                    irow.xor_assign(&pivot_inv);
                }
            }
        }
        Some(inv)
    }

    /// Whether this is a square identity matrix.
    pub fn is_identity(&self) -> bool {
        self.num_rows() == self.cols
            && self
                .rows
                .iter()
                .enumerate()
                .all(|(i, r)| r.count_ones() == 1 && r.get(i))
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}x{}]", self.num_rows(), self.cols)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256;

    fn random_square(n: usize, seed: u64) -> BitMatrix {
        let mut rng = Xoshiro256::new(seed);
        BitMatrix::random(n, n, &mut rng)
    }

    #[test]
    fn identity_properties() {
        let i = BitMatrix::identity(10);
        assert!(i.is_identity());
        assert_eq!(i.rank(), 10);
        let m = random_square(10, 3);
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul(&i), m);
    }

    #[test]
    fn mul_vec_matches_mul_with_column() {
        let mut rng = Xoshiro256::new(8);
        let a = BitMatrix::random(7, 5, &mut rng);
        let x = BitVec::random(5, &mut rng);
        let y = a.mul_vec(&x);
        for i in 0..7 {
            assert_eq!(y.get(i), a.row(i).dot(&x));
        }
    }

    #[test]
    fn mul_associative() {
        let mut rng = Xoshiro256::new(4);
        let a = BitMatrix::random(6, 6, &mut rng);
        let b = BitMatrix::random(6, 6, &mut rng);
        let c = BitMatrix::random(6, 6, &mut rng);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = random_square(9, 21);
        let mut acc = BitMatrix::identity(9);
        for e in 0..9u64 {
            assert_eq!(a.pow(e), acc, "exponent {e}");
            acc = acc.mul(&a);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Xoshiro256::new(5);
        let a = BitMatrix::random(4, 9, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_entries() {
        let mut a = BitMatrix::zeros(3, 2);
        a.set(2, 1, true);
        let t = a.transpose();
        assert!(t.get(1, 2));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 3);
    }

    #[test]
    fn rank_of_singular() {
        let mut m = BitMatrix::zeros(3, 3);
        m.set(0, 0, true);
        m.set(1, 0, true); // duplicate column info
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn inverse_roundtrip() {
        // Find an invertible random matrix and verify A * A^-1 = I.
        for seed in 0..20 {
            let a = random_square(16, seed);
            if let Some(inv) = a.inverse() {
                assert!(a.mul(&inv).is_identity(), "seed {seed}");
                assert!(inv.mul(&a).is_identity(), "seed {seed}");
                return;
            }
        }
        panic!("no invertible 16x16 matrix in 20 random draws (wildly improbable)");
    }

    #[test]
    fn singular_has_no_inverse() {
        let m = BitMatrix::zeros(4, 4);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rank_bounded_by_dims() {
        let mut rng = Xoshiro256::new(77);
        let a = BitMatrix::random(5, 12, &mut rng);
        assert!(a.rank() <= 5);
        let b = BitMatrix::random(12, 5, &mut rng);
        assert!(b.rank() <= 5);
    }

    #[test]
    fn mul_vec_linearity() {
        let mut rng = Xoshiro256::new(13);
        let a = BitMatrix::random(8, 8, &mut rng);
        let x = BitVec::random(8, &mut rng);
        let y = BitVec::random(8, &mut rng);
        let mut xy = x.clone();
        xy.xor_assign(&y);
        let mut sum = a.mul_vec(&x);
        sum.xor_assign(&a.mul_vec(&y));
        assert_eq!(a.mul_vec(&xy), sum);
    }

    #[test]
    fn push_row_sets_width() {
        let mut m = BitMatrix::zeros(0, 0);
        m.push_row(BitVec::ones(5));
        assert_eq!(m.num_cols(), 5);
        assert_eq!(m.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dimension_mismatch_panics() {
        let a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
