//! Fixed-length bit-vectors backed by `u64` words.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector over GF(2).
///
/// Bits beyond `len` inside the last word are kept zero at all times; every
/// mutating operation re-establishes that invariant, so words can be compared
/// and hashed directly.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
///
/// let mut v = BitVec::zeros(130);
/// v.set(0, true);
/// v.set(129, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(!v.parity()); // an even number of ones has even parity
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Creates a vector with exactly one set bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn unit(len: usize, index: usize) -> Self {
        let mut v = BitVec::zeros(len);
        v.set(index, true);
        v
    }

    /// Builds a vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Builds a `len`-bit vector from the low bits of `value` (bit 0 of
    /// `value` becomes bit 0 of the vector). Bits past 64 are zero.
    pub fn from_u64(len: usize, value: u64) -> Self {
        let mut v = BitVec::zeros(len);
        if !v.words.is_empty() {
            v.words[0] = value;
            v.mask_tail();
        }
        v
    }

    /// Fills a vector of `len` bits from a random generator.
    pub fn random<R: crate::Rng64>(len: usize, rng: &mut R) -> Self {
        let mut v = BitVec::zeros(len);
        for w in &mut v.words {
            *w = rng.next_u64();
        }
        v.mask_tail();
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// XOR-reduction of all bits: true iff an odd number of bits are set.
    pub fn parity(&self) -> bool {
        self.words.iter().fold(0u64, |acc, w| acc ^ w).count_ones() % 2 == 1
    }

    /// Dot product over GF(2): parity of `self AND other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot product length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u64, |acc, (a, b)| acc ^ (a & b))
            .count_ones()
            % 2
            == 1
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as booleans, ascending by index.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copies the vector into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter_bits().collect()
    }

    /// The underlying little-endian words (bit `i` lives in word `i / 64`).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the underlying words.
    ///
    /// This is the word-parallel fast path: callers operate on whole `u64`
    /// words (64 bits per instruction) instead of bit-at-a-time `get`/`set`.
    ///
    /// **Invariant:** bits at positions `>= len` inside the last word must
    /// stay zero so that equality, hashing, `count_ones` and `parity` can
    /// work on raw words. Any write that may set tail bits (shifts, fills,
    /// negations) must be followed by [`BitVec::mask_tail`].
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Re-establishes the tail invariant after raw word writes: clears every
    /// bit at position `>= len` in the last word.
    ///
    /// Word-level writers ([`BitVec::as_words_mut`]) call this once at the
    /// end instead of masking inside their inner loops.
    pub fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Returns a copy extended (with zeros) or truncated to `new_len` bits.
    pub fn resized(&self, new_len: usize) -> BitVec {
        let mut out = BitVec::zeros(new_len);
        let n_words = out.words.len().min(self.words.len());
        out.words[..n_words].copy_from_slice(&self.words[..n_words]);
        out.mask_tail();
        out
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; {}]", self.len, self)
    }
}

impl fmt::Display for BitVec {
    /// Bit 0 is printed leftmost.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn zeros_is_empty_of_ones() {
        let v = BitVec::zeros(100);
        assert_eq!(v.len(), 100);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
        assert!(!v.parity());
        assert_eq!(v.first_one(), None);
    }

    #[test]
    fn ones_has_full_popcount_and_masked_tail() {
        let v = BitVec::ones(67);
        assert_eq!(v.count_ones(), 67);
        // invariant: tail bits zero => words comparable directly
        assert_eq!(v.as_words()[1] >> 3, 0);
        assert!(v.parity());
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(129, true);
        assert!(v.get(129));
        v.flip(129);
        assert!(!v.get(129));
        v.flip(0);
        assert!(v.get(0));
        assert_eq!(v.first_one(), Some(0));
    }

    #[test]
    fn unit_vector_dot() {
        let e3 = BitVec::unit(10, 3);
        let e4 = BitVec::unit(10, 4);
        assert!(!e3.dot(&e4));
        assert!(e3.dot(&e3));
    }

    #[test]
    fn xor_is_self_inverse() {
        let mut rng = SplitMix64::new(7);
        let a = BitVec::random(200, &mut rng);
        let b = BitVec::random(200, &mut rng);
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut rng = SplitMix64::new(99);
        let v = BitVec::random(300, &mut rng);
        let ones: Vec<usize> = v.iter_ones().collect();
        let expect: Vec<usize> = (0..300).filter(|&i| v.get(i)).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn from_u64_low_bits() {
        let v = BitVec::from_u64(8, 0b1010_0001);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(5));
        assert!(v.get(7));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn from_u64_truncates_to_len() {
        let v = BitVec::from_u64(4, 0xFF);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn display_orders_bit0_first() {
        let v = BitVec::from_u64(5, 0b00110);
        assert_eq!(v.to_string(), "01100");
    }

    #[test]
    fn resized_preserves_prefix() {
        let v = BitVec::from_u64(8, 0b1011_0101);
        let w = v.resized(4);
        assert_eq!(w.to_string(), "1010");
        let x = v.resized(12);
        assert_eq!(x.count_ones(), v.count_ones());
        assert_eq!(x.len(), 12);
    }

    #[test]
    fn parity_counts_mod_two() {
        let mut v = BitVec::zeros(128);
        assert!(!v.parity());
        v.set(64, true);
        assert!(v.parity());
        v.set(127, true);
        assert!(!v.parity());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        BitVec::zeros(4).dot(&BitVec::zeros(5));
    }

    #[test]
    fn from_bools_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_bools(), vec![true, false, true]);
    }

    #[test]
    fn as_words_mut_roundtrips_through_bit_api() {
        // 67 bits: one full word plus a 3-bit tail.
        let mut v = BitVec::zeros(67);
        v.as_words_mut()[0] = 0xDEAD_BEEF_0BAD_F00D;
        v.as_words_mut()[1] = 0b101;
        for i in 0..67 {
            let word = [0xDEAD_BEEF_0BAD_F00Du64, 0b101][i / 64];
            assert_eq!(v.get(i), (word >> (i % 64)) & 1 == 1, "bit {i}");
        }
    }

    #[test]
    fn mask_tail_restores_invariant_after_raw_fill() {
        for len in [1usize, 63, 64, 65, 67, 128, 130] {
            let mut v = BitVec::zeros(len);
            v.as_words_mut().fill(!0u64);
            v.mask_tail();
            assert_eq!(v.count_ones(), len, "len {len}");
            // tail-masked words compare equal to the canonical all-ones
            assert_eq!(v, BitVec::ones(len), "len {len}");
        }
    }

    #[test]
    fn mask_tail_is_noop_on_word_multiple_lengths() {
        let mut v = BitVec::zeros(128);
        v.as_words_mut().fill(!0u64);
        v.mask_tail();
        assert_eq!(v.count_ones(), 128);
    }

    #[test]
    fn word_level_xor_matches_bit_level() {
        let mut rng = SplitMix64::new(11);
        let a = BitVec::random(99, &mut rng);
        let b = BitVec::random(99, &mut rng);
        let mut word_level = a.clone();
        for (w, x) in word_level.as_words_mut().iter_mut().zip(b.as_words()) {
            *w ^= x;
        }
        let mut bit_level = a.clone();
        bit_level.xor_assign(&b);
        assert_eq!(word_level, bit_level);
    }
}
