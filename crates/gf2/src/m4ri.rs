//! Blocked GF(2) elimination — the Method of the Four Russians (M4RI).
//!
//! Plain Gauss–Jordan elimination XORs one pivot row into every row that
//! has a bit in the pivot column: `O(rows)` row-XORs *per column*. M4RI
//! processes columns in blocks of `k`. For each block it finds up to `k`
//! pivot rows (mutually reduced, so they form an identity on the pivot
//! columns), precomputes all `2^k` XOR-combinations of those pivot rows in
//! a Gray-code table, and then clears the whole block from every other row
//! with a **single** table-lookup XOR per row. That replaces up to `k`
//! row-XORs per row with one, for an asymptotic `O(n³ / (64 · k))` instead
//! of `O(n³ / 64)` word operations (see DESIGN.md §5 for the block-size
//! choice).
//!
//! Both the blocked routine and the plain Gaussian reference reduce to
//! *reduced* row echelon form (RREF) in place and return the pivot
//! columns, so they are drop-in interchangeable; differential tests and
//! the `wordpar` bench exercise exactly that interchangeability.
//!
//! **Panel-parallel cleanup.** The expensive part of each pivot block —
//! step 3, one table-lookup XOR against every non-pivot row — is
//! embarrassingly parallel across rows: the Gray-code table is built
//! once per block and read-only afterwards, so [`rref_with_opts`] fans
//! the row panel across worker threads (`par::for_each_chunk_mut`). The
//! pivot search itself stays sequential (each scanned row depends on the
//! block pivots found so far). The default entry points ([`rref`],
//! [`rref_with_block`], and through them `BitMatrix::rank` /
//! `nullspace` / `solve_system`) engage threads automatically for
//! systems large enough to amortize the per-block spawn cost, honoring
//! the `DU_THREADS` policy; [`rref_parallel`] pins an explicit count.
//! Every thread count produces bit-identical RREF — the `wordpar_mt`
//! bench measures the speedup and the differential tests pin the
//! equivalence.

use crate::BitVec;

/// Default column-block width. `2^k` table rows must stay small next to
/// the row count for the table build to amortize; 8 keeps the table at
/// 256 rows (64 KiB for 2048-bit rows) while already dividing the cleanup
/// work by ~8 on attack-sized systems.
pub const DEFAULT_BLOCK: usize = 8;

/// Largest accepted block width (table memory doubles per step).
const MAX_BLOCK: usize = 16;

/// Row-count × row-word-count product above which the default entry
/// points fan block cleanup across threads. Below it, the per-block
/// scoped-spawn cost (tens of microseconds per pivot block) outweighs
/// the cleanup work; explicit [`rref_parallel`] / [`rref_with_opts`]
/// callers bypass this heuristic.
const PAR_MIN_WORK_WORDS: usize = 1 << 16;

/// Reduces `rows` to reduced row echelon form in place using M4RI with the
/// default block size and returns the pivot columns.
///
/// After the call, row `i` (for `i < pivots.len()`) is the unique row with
/// a leading 1 in column `pivots[i]`, `pivots` is strictly increasing, and
/// every row from `pivots.len()` on is zero.
///
/// Large systems automatically fan block cleanup across worker threads
/// (`DU_THREADS` / available parallelism); the result is bit-identical
/// at every thread count.
///
/// # Panics
///
/// Panics if rows have differing lengths.
pub fn rref(rows: &mut [BitVec]) -> Vec<usize> {
    rref_with_block(rows, DEFAULT_BLOCK)
}

/// [`rref`] with an explicit column-block width `k` (clamped to `1..=16`).
pub fn rref_with_block(rows: &mut [BitVec], k: usize) -> Vec<usize> {
    rref_with_opts(rows, k, default_threads(rows))
}

/// [`rref`] with an explicit worker-thread count (and the default block
/// size). `threads` is honored literally — no size heuristic — so a
/// caller that knows its panels are wide can force the fan-out, and the
/// differential tests can exercise the chunked cleanup on small systems.
pub fn rref_parallel(rows: &mut [BitVec], threads: usize) -> Vec<usize> {
    rref_with_opts(rows, DEFAULT_BLOCK, threads)
}

/// Thread count for the default entry points: parallel only when the
/// panel is large enough to amortize per-block spawns.
fn default_threads(rows: &[BitVec]) -> usize {
    let words = rows.first().map_or(0, |r| r.as_words().len());
    if rows.len() * words >= PAR_MIN_WORK_WORDS {
        par::resolve(None)
    } else {
        1
    }
}

/// Clears one pivot block's columns from a non-pivot row with a single
/// Gray-code table lookup XOR (M4RI step 3, the hot inner body shared by
/// the serial and panel-parallel cleanup paths).
fn clear_block_from_row(row: &mut BitVec, block_cols: &[usize], table: &[u64], words: usize) {
    let mut idx = 0usize;
    for (bi, &bcol) in block_cols.iter().enumerate() {
        idx |= usize::from(row.get(bcol)) << bi;
    }
    if idx != 0 {
        let entry = &table[idx * words..(idx + 1) * words];
        for (w, e) in row.as_words_mut().iter_mut().zip(entry) {
            *w ^= e;
        }
    }
}

/// [`rref`] with explicit column-block width `k` (clamped to `1..=16`)
/// and worker-thread count for the block-cleanup panel.
///
/// # Panics
///
/// Panics if rows have differing lengths.
pub fn rref_with_opts(rows: &mut [BitVec], k: usize, threads: usize) -> Vec<usize> {
    let n = rows.len();
    let cols = rows.first().map_or(0, BitVec::len);
    assert!(
        rows.iter().all(|r| r.len() == cols),
        "all rows must share one length"
    );
    if n == 0 || cols == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, MAX_BLOCK);
    let words = rows[0].as_words().len();
    // Flat 2^k × words combination table, rebuilt per block. Entry `t` is
    // the XOR of the block pivot rows selected by the bits of `t`.
    let mut table: Vec<u64> = vec![0; (1usize << k) * words];

    let mut pivots: Vec<usize> = Vec::new();
    let mut r = 0; // rows 0..r are settled pivot rows from earlier blocks
    let mut c = 0;
    while c < cols && r < n {
        let kb = k.min(cols - c);
        // Step 1: find up to `kb` pivots among rows r.., columns c..c+kb.
        // Each scanned row is first reduced by the block pivots found so
        // far, so the block pivot rows end up mutually reduced (identity
        // pattern on their pivot columns) — the property the table lookup
        // in step 3 relies on.
        let mut block_cols: Vec<usize> = Vec::with_capacity(kb);
        let mut i = r;
        while i < n && block_cols.len() < kb {
            for (bi, &bcol) in block_cols.iter().enumerate() {
                if rows[i].get(bcol) {
                    let (pivot_part, rest) = rows.split_at_mut(i);
                    rest[0].xor_assign(&pivot_part[r + bi]);
                }
            }
            if let Some(col) = (c..c + kb).find(|&col| rows[i].get(col)) {
                let p = r + block_cols.len();
                rows.swap(p, i);
                for bi in 0..block_cols.len() {
                    if rows[r + bi].get(col) {
                        let (head, tail) = rows.split_at_mut(p);
                        head[r + bi].xor_assign(&tail[0]);
                    }
                }
                block_cols.push(col);
            }
            i += 1;
        }
        let p = block_cols.len();
        if p == 0 {
            c += kb;
            continue;
        }

        // Step 2: build the 2^p combination table incrementally: the upper
        // half for each new pivot row is the lower half XOR that row.
        table[..words].fill(0);
        for bi in 0..p {
            let (lo, hi) = table.split_at_mut((1 << bi) * words);
            let pivot_words = rows[r + bi].as_words();
            for t in 0..(1usize << bi) {
                for w in 0..words {
                    hi[t * words + w] = lo[t * words + w] ^ pivot_words[w];
                }
            }
        }

        // Step 3: clear the block's pivot columns from every non-pivot row
        // (rows above for the Jordan part, rows below for the forward
        // part) with one table XOR each. The table and pivot columns are
        // read-only here, so the row panel fans across worker threads;
        // each row is touched by exactly one thread, so the result is
        // bit-identical to the serial sweep.
        if threads > 1 {
            let table_ref: &[u64] = &table;
            let cols_ref: &[usize] = &block_cols;
            par::for_each_chunk_mut(rows, threads, |offset, chunk| {
                for (i, row) in chunk.iter_mut().enumerate() {
                    let ri = offset + i;
                    if ri >= r && ri < r + p {
                        continue;
                    }
                    clear_block_from_row(row, cols_ref, table_ref, words);
                }
            });
        } else {
            for (ri, row) in rows.iter_mut().enumerate() {
                if ri >= r && ri < r + p {
                    continue;
                }
                clear_block_from_row(row, &block_cols, &table, words);
            }
        }

        // Step 1 may discover block pivots out of column order (a later
        // row can have an earlier leading column); restore ascending order
        // among this block's pivot rows so the final form is canonical.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by_key(|&bi| block_cols[bi]);
        let reordered: Vec<BitVec> = order.iter().map(|&bi| rows[r + bi].clone()).collect();
        for (bi, row) in reordered.into_iter().enumerate() {
            rows[r + bi] = row;
        }
        pivots.extend(order.into_iter().map(|bi| block_cols[bi]));

        r += p;
        c += kb;
    }
    pivots
}

/// Plain Gauss–Jordan elimination to RREF: the scalar-reference
/// counterpart of [`rref`], kept for differential testing and as the
/// baseline the `wordpar` bench compares against.
///
/// # Panics
///
/// Panics if rows have differing lengths.
pub fn rref_gaussian(rows: &mut [BitVec]) -> Vec<usize> {
    let cols = rows.first().map_or(0, BitVec::len);
    assert!(
        rows.iter().all(|r| r.len() == cols),
        "all rows must share one length"
    );
    let mut pivots = Vec::new();
    let mut r = 0;
    for col in 0..cols {
        let Some(p) = (r..rows.len()).find(|&i| rows[i].get(col)) else {
            continue;
        };
        rows.swap(r, p);
        let pivot = rows[r].clone();
        for (i, row) in rows.iter_mut().enumerate() {
            if i != r && row.get(col) {
                row.xor_assign(&pivot);
            }
        }
        pivots.push(col);
        r += 1;
        if r == rows.len() {
            break;
        }
    }
    pivots
}

/// Extracts a nullspace basis from rows already in RREF (as produced by
/// [`rref`] / [`rref_gaussian`] with the returned `pivots`).
///
/// One basis vector per free column: it has a 1 at the free column and, for
/// every pivot row with a 1 in that free column, a 1 at that row's pivot
/// column.
pub fn nullspace_from_rref(rows: &[BitVec], pivots: &[usize], cols: usize) -> Vec<BitVec> {
    let mut is_pivot = vec![false; cols];
    for &p in pivots {
        is_pivot[p] = true;
    }
    let mut basis = Vec::with_capacity(cols - pivots.len());
    for (free, _) in is_pivot.iter().enumerate().filter(|(_, &p)| !p) {
        let mut v = BitVec::zeros(cols);
        v.set(free, true);
        for (row, &pcol) in rows.iter().zip(pivots) {
            if row.get(free) {
                v.set(pcol, true);
            }
        }
        basis.push(v);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitMatrix, Rng64, Xoshiro256};

    fn random_rows(n: usize, cols: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = Xoshiro256::new(seed);
        (0..n).map(|_| BitVec::random(cols, &mut rng)).collect()
    }

    #[test]
    fn m4ri_matches_gaussian_on_random_matrices() {
        for seed in 0..12 {
            let mut rng = Xoshiro256::new(1000 + seed);
            let n = 5 + rng.gen_index(60);
            let cols = 5 + rng.gen_index(90);
            let a = random_rows(n, cols, seed);
            let mut m = a.clone();
            let mut g = a.clone();
            let pm = rref(&mut m);
            let pg = rref_gaussian(&mut g);
            assert_eq!(pm, pg, "pivots differ (seed {seed}, {n}x{cols})");
            assert_eq!(m, g, "RREF differs (seed {seed}, {n}x{cols})");
        }
    }

    #[test]
    fn m4ri_matches_gaussian_across_block_sizes() {
        let a = random_rows(70, 70, 99);
        let mut reference = a.clone();
        let pg = rref_gaussian(&mut reference);
        for k in [1, 2, 3, 5, 8, 13, 16] {
            let mut m = a.clone();
            let pm = rref_with_block(&mut m, k);
            assert_eq!(pm, pg, "pivots differ at k={k}");
            assert_eq!(m, reference, "RREF differs at k={k}");
        }
    }

    #[test]
    fn parallel_cleanup_is_bit_identical_across_thread_counts() {
        for seed in 0..6 {
            let mut rng = Xoshiro256::new(4000 + seed);
            let n = 10 + rng.gen_index(80);
            let cols = 10 + rng.gen_index(120);
            let a = random_rows(n, cols, 31 * seed + 7);
            let mut reference = a.clone();
            let pg = rref_gaussian(&mut reference);
            for threads in [1, 2, 3, 8] {
                let mut work = a.clone();
                let pm = rref_parallel(&mut work, threads);
                assert_eq!(pm, pg, "pivots differ (seed {seed}, threads {threads})");
                assert_eq!(
                    work, reference,
                    "RREF differs (seed {seed}, threads {threads})"
                );
            }
            // explicit block width + threads compose
            let mut work = a.clone();
            assert_eq!(rref_with_opts(&mut work, 4, 4), pg, "seed {seed}");
            assert_eq!(work, reference, "seed {seed}");
        }
    }

    #[test]
    fn rank_deficient_rows_reduce_to_zero() {
        // Stack a matrix on top of XORs of its own rows: rank must not grow
        // and the extra rows must vanish.
        let base = random_rows(10, 40, 3);
        let mut rows = base.clone();
        for i in 0..10 {
            let mut dup = base[i].clone();
            dup.xor_assign(&base[(i + 3) % 10]);
            rows.push(dup);
        }
        let mut g = rows.clone();
        let pm = rref(&mut rows);
        let pg = rref_gaussian(&mut g);
        assert_eq!(pm, pg);
        assert!(pm.len() <= 10);
        for row in &rows[pm.len()..] {
            assert!(row.is_zero());
        }
    }

    #[test]
    fn pivots_are_strictly_increasing_and_rows_canonical() {
        let mut rows = random_rows(33, 50, 17);
        let pivots = rref(&mut rows);
        for w in pivots.windows(2) {
            assert!(w[0] < w[1], "pivot columns must ascend");
        }
        for (i, &p) in pivots.iter().enumerate() {
            assert_eq!(rows[i].first_one(), Some(p), "row {i} leading bit");
            // pivot column appears in exactly one row
            for (j, row) in rows.iter().enumerate().take(pivots.len()) {
                assert_eq!(row.get(p), i == j, "pivot col {p} in row {j}");
            }
        }
    }

    #[test]
    fn nullspace_vectors_are_in_the_kernel() {
        for seed in 0..6 {
            let mut rng = Xoshiro256::new(500 + seed);
            let n = 4 + rng.gen_index(20);
            let cols = 6 + rng.gen_index(30);
            let rows = random_rows(n, cols, 77 + seed);
            let a = BitMatrix::from_rows(rows.clone());
            let mut work = rows;
            let pivots = rref(&mut work);
            let basis = nullspace_from_rref(&work[..pivots.len()], &pivots, cols);
            assert_eq!(basis.len(), cols - pivots.len(), "rank-nullity");
            for v in &basis {
                assert!(a.mul_vec(v).is_zero(), "basis vector not in kernel");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut none: Vec<BitVec> = Vec::new();
        assert!(rref(&mut none).is_empty());
        let mut zero_width = vec![BitVec::zeros(0); 3];
        assert!(rref(&mut zero_width).is_empty());
        let mut zeros = vec![BitVec::zeros(10); 4];
        assert!(rref(&mut zeros).is_empty());
        let mut single = vec![BitVec::unit(5, 3)];
        assert_eq!(rref(&mut single), vec![3]);
    }

    #[test]
    fn identity_is_fixed_point() {
        let n = 20;
        let mut rows: Vec<BitVec> = (0..n).map(|i| BitVec::unit(n, i)).collect();
        let pivots = rref(&mut rows);
        assert_eq!(pivots, (0..n).collect::<Vec<_>>());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &BitVec::unit(n, i));
        }
    }
}
