//! Dense linear algebra over GF(2) and a small deterministic PRNG.
//!
//! This crate is the arithmetic substrate of the DynUnlock reproduction.
//! The attack exploits the fact that LFSR-based dynamic scan obfuscation
//! is *linear over GF(2)* in the secret seed; everything needed to state
//! and exploit that linearity lives here:
//!
//! * [`BitVec`] — a fixed-length bit-vector backed by `u64` words, the
//!   representation of seeds, key-stream snapshots and mask rows.
//! * [`BitMatrix`] — a dense row-major matrix of [`BitVec`] rows, used for
//!   LFSR companion matrices and the scan-obfuscation mask matrices
//!   `T_in` / `T_out`.
//! * [`LinSolver`] — incremental Gaussian elimination: rank, consistency, a
//!   particular solution and a nullspace basis, plus solution enumeration
//!   (used to analyze seed-candidate sets).
//! * [`m4ri`] — blocked batch elimination (Method of the Four Russians);
//!   the word-parallel fast path behind [`solve_system`],
//!   [`BitMatrix::rank`] and [`BitMatrix::nullspace`].
//! * [`SplitMix64`] / [`Xoshiro256`] — dependency-free deterministic PRNGs
//!   so synthetic benchmark generation is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use gf2::{BitMatrix, BitVec};
//!
//! // Companion-style update: x' = A x over GF(2).
//! let a = BitMatrix::identity(3);
//! let x = BitVec::from_bools([true, false, true]);
//! assert_eq!(a.mul_vec(&x), x);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
pub mod m4ri;
mod matrix;
mod rng;
mod solve;

pub use bitvec::BitVec;
pub use matrix::BitMatrix;
pub use rng::{Rng64, SplitMix64, Xoshiro256};
pub use solve::{solve_system, LinSolution, LinSolver, SolveError};
