//! Minimal scoped-thread fan-out for the workspace's data-parallel hot
//! paths.
//!
//! The packed simulator fans pattern blocks across cores and the M4RI
//! eliminator fans row chunks across cores; both need exactly one
//! primitive — *split a slice into contiguous chunks and run one closure
//! per chunk on its own thread* — so this crate provides that on plain
//! [`std::thread::scope`] instead of pulling in an external thread pool
//! (the workspace is dependency-free by design; DESIGN.md §4).
//!
//! Thread-count policy, shared by every caller ([`resolve`]):
//!
//! 1. an explicit per-call/per-struct knob wins;
//! 2. otherwise the `DU_THREADS` environment variable;
//! 3. otherwise [`std::thread::available_parallelism`].
//!
//! All helpers degrade to a plain serial loop when one thread is
//! requested or the input has at most one chunk, so callers get a serial
//! fallback for free and differential tests can pin `threads = 1`
//! against the parallel configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Environment variable naming the default worker-thread count.
pub const THREADS_ENV: &str = "DU_THREADS";

/// Hardware parallelism of the running machine (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The `DU_THREADS` override, if set to a positive integer.
///
/// Unset, empty, unparsable, and `0` all mean "no override".
pub fn env_threads() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Resolves a worker-thread count: `requested` beats [`env_threads`]
/// beats [`available`]; the result is always at least 1.
pub fn resolve(requested: Option<usize>) -> usize {
    resolve_from(requested, env_threads(), available())
}

/// Pure core of [`resolve`], separated for deterministic testing.
fn resolve_from(requested: Option<usize>, env: Option<usize>, hardware: usize) -> usize {
    requested
        .filter(|&n| n > 0)
        .or(env)
        .unwrap_or(hardware)
        .max(1)
}

/// Chunk length that spreads `len` items over at most `threads` chunks.
fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1)).max(1)
}

/// Runs `f` over contiguous mutable chunks of `data`, one chunk per
/// worker, using at most `threads` scoped threads. `f` receives the
/// chunk's offset into `data` alongside the chunk itself.
///
/// Serial fallback: with `threads <= 1` or a single chunk, `f` runs on
/// the calling thread. The last chunk always runs on the calling thread,
/// so at most `threads - 1` threads are spawned.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk = chunk_len(data.len(), threads);
    if threads <= 1 || chunk >= data.len() {
        f(0, data);
        return;
    }
    std::thread::scope(|scope| {
        let mut offset = 0;
        let mut rest = data;
        let mut last = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if tail.is_empty() {
                last = Some((offset, head)); // run on the calling thread
            } else {
                let fr = &f;
                scope.spawn(move || fr(offset, head));
            }
            offset += take;
            rest = tail;
        }
        if let Some((off, head)) = last {
            f(off, head);
        }
    });
}

/// Maps contiguous chunks of `items` to output vectors on up to
/// `threads` scoped threads and stitches the results back in input
/// order. `f` receives each chunk's offset into `items`.
///
/// `f` must return exactly one output per input item — the stitched
/// vector is asserted to have `items.len()` entries.
///
/// Serial fallback as in [`for_each_chunk_mut`].
pub fn map_chunks<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &[I]) -> Vec<O> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = chunk_len(items.len(), threads);
    let out = if threads <= 1 || chunk >= items.len() {
        f(0, items)
    } else {
        let parts: Vec<Vec<O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(i, part)| {
                    let fr = &f;
                    scope.spawn(move || fr(i * chunk, part))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        parts.into_iter().flatten().collect()
    };
    assert_eq!(
        out.len(),
        items.len(),
        "map_chunks closure must return one output per input"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_precedence_is_request_env_hardware() {
        assert_eq!(resolve_from(Some(3), Some(7), 16), 3);
        assert_eq!(resolve_from(None, Some(7), 16), 7);
        assert_eq!(resolve_from(None, None, 16), 16);
        // a zero request is "no request", never zero threads
        assert_eq!(resolve_from(Some(0), None, 4), 4);
        assert_eq!(resolve_from(None, None, 0), 1);
    }

    #[test]
    fn env_threads_parses_only_positive_integers() {
        // Exercised through the pure resolver to avoid mutating the
        // process environment from a parallel test runner; the parse
        // rules themselves are covered here.
        for (raw, expect) in [
            ("4", Some(4)),
            (" 2 ", Some(2)),
            ("0", None),
            ("", None),
            ("many", None),
        ] {
            let parsed = match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => None,
            };
            assert_eq!(parsed, expect, "raw {raw:?}");
        }
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(available() >= 1);
        assert!(resolve(None) >= 1);
    }

    #[test]
    fn for_each_chunk_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 8, 100] {
            let mut data: Vec<usize> = vec![0; 37];
            for_each_chunk_mut(&mut data, threads, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += offset + i + 1; // global index + 1
                }
            });
            let expect: Vec<usize> = (1..=37).collect();
            assert_eq!(data, expect, "threads {threads}");
        }
    }

    #[test]
    fn for_each_chunk_mut_handles_empty_and_tiny() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        let mut one = vec![1u8];
        for_each_chunk_mut(&mut one, 4, |off, c| {
            assert_eq!(off, 0);
            c[0] = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn map_chunks_preserves_input_order() {
        let items: Vec<usize> = (0..53).collect();
        for threads in [1, 2, 5, 64] {
            let out = map_chunks(&items, threads, |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        assert_eq!(offset + i, v);
                        v * 2
                    })
                    .collect()
            });
            let expect: Vec<usize> = items.iter().map(|&v| v * 2).collect();
            assert_eq!(out, expect, "threads {threads}");
        }
    }

    #[test]
    fn map_chunks_empty_input_is_empty_output() {
        let out: Vec<u32> = map_chunks(&[] as &[u32], 4, |_, _| Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "one output per input")]
    fn map_chunks_rejects_wrong_arity() {
        let _ = map_chunks(&[1, 2, 3], 1, |_, _| vec![0]);
    }
}
