//! Multi-threaded / multi-lane hot-path throughput: `ParPackedEvaluator`
//! fan-out at 1/2/4 threads (patterns/sec), 256-lane vs 64-lane packed
//! evaluation on one core, and panel-parallel M4RI elimination at 1/2/4
//! threads (rows-reduced/sec). Every row records `threads` and
//! `lane_width` metrics; `BENCH_wordpar_mt.json` feeds the bench-compare
//! CI gate (DESIGN.md §5).
//!
//! Thread-scaling assertions only fire when the machine actually has the
//! cores (`par::available() >= 4`) — on a 1-core CI box the 4-thread rows
//! still run (measuring fan-out overhead) but cannot speed anything up.

use bench::{sized, Reporter};
use gf2::{m4ri, BitVec, Rng64, Xoshiro256};
use netlist::profiles::{by_name, PAPER_BENCHMARKS};
use sim::{LaneWord, ParPackedEvaluator, WidePackedEvaluator, W256};

const THREAD_STEPS: [usize; 3] = [1, 2, 4];

/// Random `(pis, state)` stimulus blocks with `W::LANES` patterns per
/// block, enough blocks to cover `num_patterns`.
fn random_blocks<W: LaneWord>(
    num_inputs: usize,
    num_dffs: usize,
    num_patterns: usize,
    rng: &mut Xoshiro256,
) -> Vec<(Vec<W>, Vec<W>)> {
    let mut word = |_| {
        let mut w = W::zeros();
        for lane in 0..W::LANES {
            w.set_lane(lane, rng.next_u64() & 1 == 1);
        }
        w
    };
    (0..num_patterns.div_ceil(W::LANES))
        .map(|_| {
            (
                (0..num_inputs).map(&mut word).collect(),
                (0..num_dffs).map(&mut word).collect(),
            )
        })
        .collect()
}

fn main() {
    let mut rep = Reporter::new("wordpar_mt");
    let hardware = par::available();
    println!("hardware threads available: {hardware}");

    // ----- simulation: the largest paper profile, like wordpar -----
    let largest = PAPER_BENCHMARKS
        .iter()
        .max_by_key(|p| p.scan_flops)
        .expect("profiles exist");
    assert_eq!(largest.name, by_name("s35932").unwrap().name);
    let profile = if bench::smoke() {
        largest.scaled(0.05)
    } else {
        *largest
    };
    let circuit = profile.build(0);
    let num_patterns = sized(4096usize, 512);
    println!(
        "sim target: {} ({} gates, {} flops, {} patterns)",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_dffs(),
        num_patterns
    );

    let mut rng = Xoshiro256::new(0x60D2);
    let blocks64: Vec<(Vec<u64>, Vec<u64>)> = random_blocks(
        circuit.inputs().len(),
        circuit.num_dffs(),
        num_patterns,
        &mut rng,
    );
    let blocks256: Vec<(Vec<W256>, Vec<W256>)> = random_blocks(
        circuit.inputs().len(),
        circuit.num_dffs(),
        num_patterns,
        &mut rng,
    );

    // --- multi-core fan-out over 64-lane blocks ---
    for threads in THREAD_STEPS {
        let eval = ParPackedEvaluator::<u64>::new(&circuit).with_threads(threads);
        let id = format!("sim/par_eval/t{threads}");
        rep.case_throughput(
            &id,
            num_patterns as u64,
            sized(20, 5),
            "patterns/sec",
            num_patterns as f64,
            || {
                let frames = eval.eval_blocks(&blocks64);
                frames
                    .iter()
                    .fold(0u64, |acc, f| acc ^ f.po.first().copied().unwrap_or(0))
            },
        );
        rep.add_metric(&id, "threads", threads as f64);
        rep.add_metric(&id, "lane_width", 64.0);
    }

    // --- lane width on one core: 64 vs 256 lanes ---
    let mut wide64 = WidePackedEvaluator::<u64>::new(&circuit);
    let probe = circuit.outputs()[0];
    rep.case_throughput(
        "sim/wide_eval/w64",
        num_patterns as u64,
        sized(20, 5),
        "patterns/sec",
        num_patterns as f64,
        || {
            let mut acc = 0u64;
            for (pis, state) in &blocks64 {
                wide64.eval(pis, state);
                acc ^= wide64.value(probe);
            }
            acc
        },
    );
    rep.add_metric("sim/wide_eval/w64", "threads", 1.0);
    rep.add_metric("sim/wide_eval/w64", "lane_width", 64.0);

    let mut wide256 = WidePackedEvaluator::<W256>::new(&circuit);
    rep.case_throughput(
        "sim/wide_eval/w256",
        num_patterns as u64,
        sized(20, 5),
        "patterns/sec",
        num_patterns as f64,
        || {
            let mut acc = 0u64;
            for (pis, state) in &blocks256 {
                wide256.eval(pis, state);
                let w = wide256.value(probe);
                acc ^= w.0[0] ^ w.0[1] ^ w.0[2] ^ w.0[3];
            }
            acc
        },
    );
    rep.add_metric("sim/wide_eval/w256", "threads", 1.0);
    rep.add_metric("sim/wide_eval/w256", "lane_width", 256.0);

    // ----- GF(2): panel-parallel M4RI on an n x n random system -----
    let n = sized(2048usize, 512);
    let mut rng = Xoshiro256::new(0xE112);
    let rows: Vec<BitVec> = (0..n).map(|_| BitVec::random(n, &mut rng)).collect();
    println!("gf2 target: {n}x{n} random system");
    for threads in THREAD_STEPS {
        let id = format!("gf2/m4ri_mt/t{threads}");
        rep.case_throughput(
            &id,
            n as u64,
            sized(8, 4),
            "rows-reduced/sec",
            n as f64,
            || {
                let mut work = rows.clone();
                m4ri::rref_parallel(&mut work, threads).len()
            },
        );
        rep.add_metric(&id, "threads", threads as f64);
        rep.add_metric(&id, "lane_width", 64.0);
    }

    // ----- scaling summary (acceptance criteria when cores exist) -----
    let speedup = |fast: &str, slow: &str| -> Option<f64> {
        Some(rep.throughput_of(fast)? / rep.throughput_of(slow)?)
    };
    for threads in &THREAD_STEPS[1..] {
        match speedup(&format!("sim/par_eval/t{threads}"), "sim/par_eval/t1") {
            Some(s) => println!("speedup sim/par_eval t{threads} vs t1: {s:.2}x"),
            None => println!("speedup sim/par_eval t{threads} vs t1: n/a"),
        }
        match speedup(&format!("gf2/m4ri_mt/t{threads}"), "gf2/m4ri_mt/t1") {
            Some(s) => println!("speedup gf2/m4ri_mt t{threads} vs t1: {s:.2}x"),
            None => println!("speedup gf2/m4ri_mt t{threads} vs t1: n/a"),
        }
    }
    match speedup("sim/wide_eval/w256", "sim/wide_eval/w64") {
        Some(s) => println!("speedup sim/wide_eval w256 vs w64: {s:.2}x (per-core lanes)"),
        None => println!("speedup sim/wide_eval w256 vs w64: n/a"),
    }

    if hardware >= 4 {
        let s = speedup("sim/par_eval/t4", "sim/par_eval/t1")
            .expect("throughput recorded for both thread counts");
        assert!(
            s >= 3.0,
            "expected >=3x patterns/sec at 4 threads on a >=4-core machine, got {s:.2}x"
        );
    } else {
        println!(
            "note: {hardware} hardware thread(s) — skipping the 4-thread >=3x scaling assertion"
        );
    }

    rep.finish();
}
