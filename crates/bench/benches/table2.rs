//! Table II substrate: per-benchmark key-schedule recovery. For each
//! paper benchmark, build an LFSR sized to its scan-flop count and time
//! recovering the seed from single-bit key-stream observations — the
//! linear-algebra core the oracle-guided attack reduces to once enough
//! key bits leak.

use bench::{sized, Reporter};
use gf2::{BitVec, SplitMix64, Xoshiro256};
use lfsr::recover::{Observation, SeedRecovery};
use lfsr::{Lfsr, TapSet};
use netlist::profiles::PAPER_BENCHMARKS;

/// The defense only needs the schedule not to repeat within one test
/// session (≈ 3500 cycles for the largest benchmark), so searched tap
/// sets verified to this period are sound for untabulated widths.
const MIN_PERIOD: u64 = 1 << 14;

fn main() {
    let mut rep = Reporter::new("table2");

    for p in &PAPER_BENCHMARKS {
        let width = if bench::smoke() {
            p.scaled(0.1).scan_flops
        } else {
            p.scan_flops
        };
        let mut rng = Xoshiro256::new(width as u64);
        let taps = TapSet::for_width(width, MIN_PERIOD, &mut rng).expect("tap search succeeds");
        let mut seed_rng = SplitMix64::new(0xA5A5_0000 | width as u64);
        let seed = BitVec::random(width, &mut seed_rng);

        rep.case(
            &format!("table2/recover_{}", p.name),
            width as u64,
            sized(3, 2),
            || {
                let mut chip = Lfsr::new(taps.clone(), seed.clone());
                let mut rec = SeedRecovery::new(taps.clone());
                for cycle in 0..width as u64 {
                    rec.observe(Observation {
                        cycle,
                        bit_index: 0,
                        value: chip.bit(0),
                    })
                    .expect("consistent observations");
                    chip.step();
                }
                assert_eq!(
                    rec.unique_seed().as_ref(),
                    Some(&seed),
                    "seed recovery must pin the planted seed"
                );
                rec.rank()
            },
        );
    }

    rep.finish();
}
