//! Micro-benchmarks of the substrate components: GF(2) algebra, LFSR
//! stepping and seed recovery, netlist simulation, and SAT solving.

use bench::{pigeonhole, planted_3sat, sized, Reporter};
use gf2::{BitMatrix, BitVec, Xoshiro256};
use lfsr::recover::{Observation, SeedRecovery};
use lfsr::{Lfsr, TapSet};
use netlist::generator::s208_like;
use sim::Evaluator;

fn main() {
    let mut rep = Reporter::new("components");

    // GF(2): dense 256×256 matrix product and rank.
    let mut rng = Xoshiro256::new(0xC0FFEE);
    let a = BitMatrix::random(256, 256, &mut rng);
    let b = BitMatrix::random(256, 256, &mut rng);
    rep.case("gf2/mul_256x256", 256, sized(50, 5), || a.mul(&b));
    rep.case("gf2/rank_256x256", 256, sized(50, 5), || a.rank());

    // LFSR: 10k steps of a 64-bit maximal register.
    let taps = TapSet::maximal(64).expect("64 is tabulated");
    let seed = BitVec::from_u64(64, 0xDEAD_BEEF_1234_5678);
    let steps = sized(10_000u64, 1_000);
    rep.case("lfsr/step_10k_w64", steps, sized(50, 5), || {
        let mut l = Lfsr::new(taps.clone(), seed.clone());
        l.run(steps);
        l.state().clone()
    });

    // LFSR seed recovery from 64 single-bit observations.
    rep.case("lfsr/recover_w64", 64, sized(20, 3), || {
        let mut chip = Lfsr::new(taps.clone(), seed.clone());
        let mut rec = SeedRecovery::new(taps.clone());
        for cycle in 0..64 {
            rec.observe(Observation {
                cycle,
                bit_index: 0,
                value: chip.bit(0),
            })
            .expect("consistent observations");
            chip.step();
        }
        rec.unique_seed().expect("full-rank system")
    });

    // Simulation: one combinational sweep of the s208-like circuit.
    let circuit = s208_like();
    let pis = vec![true; circuit.inputs().len()];
    let state = vec![false; circuit.num_dffs()];
    let mut ev = Evaluator::new(&circuit);
    rep.case(
        "sim/eval_s208_like",
        circuit.num_gates() as u64,
        sized(2_000, 100),
        || {
            ev.eval(&pis, &state);
            ev.output_values()
        },
    );

    // SAT: a planted (satisfiable) 3-SAT instance and a pigeonhole proof.
    let sat_inst = planted_3sat(150, 600, 7);
    rep.case("sat/planted_3sat_150v", 150, sized(20, 3), || {
        let (mut s, _) = sat_inst.to_solver();
        s.solve()
    });
    let unsat_inst = pigeonhole(7, 6);
    rep.case("sat/pigeonhole_7_6", 7, sized(20, 3), || {
        let (mut s, _) = unsat_inst.to_solver();
        s.solve()
    });

    rep.finish();
}
