//! Micro-benchmarks of the substrate components: GF(2) algebra, LFSR
//! stepping and seed recovery, netlist simulation, and SAT solving.

use bench::{pigeonhole, planted_3sat, run};
use gf2::{BitMatrix, BitVec, Xoshiro256};
use lfsr::recover::{Observation, SeedRecovery};
use lfsr::{Lfsr, TapSet};
use netlist::generator::s208_like;
use sim::Evaluator;

fn main() {
    // GF(2): dense 256×256 matrix product and rank.
    let mut rng = Xoshiro256::new(0xC0FFEE);
    let a = BitMatrix::random(256, 256, &mut rng);
    let b = BitMatrix::random(256, 256, &mut rng);
    run("gf2/mul_256x256", 50, || a.mul(&b));
    run("gf2/rank_256x256", 50, || a.rank());

    // LFSR: 10k steps of a 64-bit maximal register.
    let taps = TapSet::maximal(64).expect("64 is tabulated");
    let seed = BitVec::from_u64(64, 0xDEAD_BEEF_1234_5678);
    run("lfsr/step_10k_w64", 50, || {
        let mut l = Lfsr::new(taps.clone(), seed.clone());
        l.run(10_000);
        l.state().clone()
    });

    // LFSR seed recovery from 64 single-bit observations.
    run("lfsr/recover_w64", 20, || {
        let mut chip = Lfsr::new(taps.clone(), seed.clone());
        let mut rec = SeedRecovery::new(taps.clone());
        for cycle in 0..64 {
            rec.observe(Observation {
                cycle,
                bit_index: 0,
                value: chip.bit(0),
            })
            .expect("consistent observations");
            chip.step();
        }
        rec.unique_seed().expect("full-rank system")
    });

    // Simulation: one combinational sweep of the s208-like circuit.
    let circuit = s208_like();
    let pis = vec![true; circuit.inputs().len()];
    let state = vec![false; circuit.num_dffs()];
    let mut ev = Evaluator::new(&circuit);
    run("sim/eval_s208_like", 2_000, || {
        ev.eval(&pis, &state);
        ev.output_values()
    });

    // SAT: a planted (satisfiable) 3-SAT instance and a pigeonhole proof.
    let sat_inst = planted_3sat(150, 600, 7);
    run("sat/planted_3sat_150v", 20, || {
        let (mut s, _) = sat_inst.to_solver();
        s.solve()
    });
    let unsat_inst = pigeonhole(7, 6);
    run("sat/pigeonhole_7_6", 20, || {
        let (mut s, _) = unsat_inst.to_solver();
        s.solve()
    });
}
