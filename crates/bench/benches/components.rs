fn main() {}
