//! Scaling sweeps: circuit generation and simulation cost as the netlist
//! grows, and SAT solve time as the instance grows. These are the knobs
//! the paper's key-size and benchmark-size sweeps turn.

use bench::{pigeonhole, planted_3sat, run};
use gf2::{Rng64, Xoshiro256};
use netlist::generator::GeneratorConfig;
use sim::Evaluator;

fn main() {
    // Circuit generation + 100 random input sweeps at growing gate counts.
    for &gates in &[500usize, 2_000, 8_000] {
        let cfg = GeneratorConfig::new(format!("scale{gates}"), 32, 32, gates / 10, gates)
            .with_seed(gates as u64);
        run(&format!("netlist/generate_{gates}g"), 10, || cfg.generate());

        let circuit = cfg.generate();
        let mut rng = Xoshiro256::new(1);
        let stimuli: Vec<(Vec<bool>, Vec<bool>)> = (0..100)
            .map(|_| {
                let pis = (0..circuit.inputs().len())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                let st = (0..circuit.num_dffs())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                (pis, st)
            })
            .collect();
        let mut ev = Evaluator::new(&circuit);
        run(&format!("sim/eval100_{gates}g"), 10, || {
            let mut ones = 0usize;
            for (pis, st) in &stimuli {
                ev.eval(pis, st);
                ones += ev.output_values().iter().filter(|&&b| b).count();
            }
            ones
        });
    }

    // SAT solve time at growing planted-instance sizes. The clause/var
    // ratio 4 sits near the 3-SAT phase transition, so effort grows
    // steeply; 200 vars already costs tens of milliseconds and 400 costs
    // ~15 s on this solver, so the sweep stops at 200.
    for &vars in &[50usize, 100, 200] {
        let inst = planted_3sat(vars, vars * 4, 42);
        run(&format!("sat/planted_3sat_{vars}v"), 10, || {
            let (mut s, _) = inst.to_solver();
            s.solve()
        });
    }

    // UNSAT proof effort at growing pigeonhole sizes.
    for &holes in &[5usize, 6, 7] {
        let inst = pigeonhole(holes + 1, holes);
        run(&format!("sat/pigeonhole_{}_{holes}", holes + 1), 5, || {
            let (mut s, _) = inst.to_solver();
            s.solve()
        });
    }
}
