//! Scaling sweeps: circuit generation and simulation cost as the netlist
//! grows, and SAT solve time as the instance grows. These are the knobs
//! the paper's key-size and benchmark-size sweeps turn.

use bench::{pigeonhole, planted_3sat, sized, Reporter};
use gf2::{Rng64, Xoshiro256};
use netlist::generator::GeneratorConfig;
use sim::Evaluator;

fn main() {
    let mut rep = Reporter::new("scalability");

    // Circuit generation + 100 random input sweeps at growing gate counts.
    let gate_sweep: &[usize] = sized(&[500, 2_000, 8_000], &[500, 2_000]);
    for &gates in gate_sweep {
        let cfg = GeneratorConfig::new(format!("scale{gates}"), 32, 32, gates / 10, gates)
            .with_seed(gates as u64);
        rep.case(
            &format!("netlist/generate_{gates}g"),
            gates as u64,
            sized(10, 3),
            || cfg.generate(),
        );

        let circuit = cfg.generate();
        let mut rng = Xoshiro256::new(1);
        let stimuli: Vec<(Vec<bool>, Vec<bool>)> = (0..100)
            .map(|_| {
                let pis = (0..circuit.inputs().len())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                let st = (0..circuit.num_dffs())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect();
                (pis, st)
            })
            .collect();
        let mut ev = Evaluator::new(&circuit);
        rep.case(
            &format!("sim/eval100_{gates}g"),
            gates as u64,
            sized(10, 3),
            || {
                let mut ones = 0usize;
                for (pis, st) in &stimuli {
                    ev.eval(pis, st);
                    ones += ev.output_values().iter().filter(|&&b| b).count();
                }
                ones
            },
        );
    }

    // SAT solve time at growing planted-instance sizes. The clause/var
    // ratio 4 sits near the 3-SAT phase transition, so effort grows
    // steeply; 200 vars already costs tens of milliseconds and 400 costs
    // ~15 s on this solver, so the sweep stops at 200.
    let var_sweep: &[usize] = sized(&[50, 100, 200], &[50, 100]);
    for &vars in var_sweep {
        let inst = planted_3sat(vars, vars * 4, 42);
        rep.case(
            &format!("sat/planted_3sat_{vars}v"),
            vars as u64,
            sized(10, 3),
            || {
                let (mut s, _) = inst.to_solver();
                s.solve()
            },
        );
    }

    // UNSAT proof effort at growing pigeonhole sizes.
    let hole_sweep: &[usize] = sized(&[5, 6, 7], &[5, 6]);
    for &holes in hole_sweep {
        let inst = pigeonhole(holes + 1, holes);
        rep.case(
            &format!("sat/pigeonhole_{}_{holes}", holes + 1),
            holes as u64,
            sized(5, 2),
            || {
                let (mut s, _) = inst.to_solver();
                s.solve()
            },
        );
    }

    rep.finish();
}
