//! Word-parallel kernel throughput: the 64-lane packed evaluator vs the
//! scalar reference (patterns/sec), M4RI blocked elimination vs plain
//! Gaussian (rows-reduced/sec), and symbolic LFSR batch stepping
//! (cycles/sec). These are the two inner loops of the DynUnlock attack;
//! the emitted `BENCH_wordpar.json` pins the speedups across PRs.

use bench::{sized, Reporter};
use gf2::{m4ri, BitVec, Rng64, Xoshiro256};
use lfsr::{SymbolicLfsr, TapSet};
use netlist::profiles::{by_name, PAPER_BENCHMARKS};
use sim::{unpack_lane, Evaluator, PackedEvaluator};

fn main() {
    let mut rep = Reporter::new("wordpar");

    // ----- simulation: the largest paper profile, >= 4096 patterns -----
    let largest = PAPER_BENCHMARKS
        .iter()
        .max_by_key(|p| p.scan_flops)
        .expect("profiles exist");
    assert_eq!(largest.name, by_name("s35932").unwrap().name);
    let profile = if bench::smoke() {
        largest.scaled(0.05)
    } else {
        *largest
    };
    let circuit = profile.build(0);
    let num_patterns = sized(4096usize, 512);
    let num_words = num_patterns / 64;
    println!(
        "sim target: {} ({} gates, {} flops, {} patterns)",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_dffs(),
        num_patterns
    );

    let mut rng = Xoshiro256::new(0x60D);
    let packed_stimuli: Vec<(Vec<u64>, Vec<u64>)> = (0..num_words)
        .map(|_| {
            (
                (0..circuit.inputs().len())
                    .map(|_| rng.next_u64())
                    .collect(),
                (0..circuit.num_dffs()).map(|_| rng.next_u64()).collect(),
            )
        })
        .collect();
    let scalar_stimuli: Vec<(Vec<bool>, Vec<bool>)> = packed_stimuli
        .iter()
        .flat_map(|(pis, state)| {
            (0..64).map(move |lane| (unpack_lane(pis, lane), unpack_lane(state, lane)))
        })
        .collect();
    let probe = circuit.outputs()[0];

    let mut scalar = Evaluator::new(&circuit);
    rep.case_throughput(
        "sim/scalar_eval",
        num_patterns as u64,
        sized(5, 3),
        "patterns/sec",
        num_patterns as f64,
        || {
            let mut acc = 0usize;
            for (pis, state) in &scalar_stimuli {
                scalar.eval(pis, state);
                acc ^= usize::from(scalar.value(probe));
            }
            acc
        },
    );

    let mut packed = PackedEvaluator::new(&circuit);
    rep.case_throughput(
        "sim/packed_eval",
        num_patterns as u64,
        sized(50, 10),
        "patterns/sec",
        num_patterns as f64,
        || {
            let mut acc = 0u64;
            for (pis, state) in &packed_stimuli {
                packed.eval(pis, state);
                acc ^= packed.value(probe);
            }
            acc
        },
    );

    // ----- GF(2): n x n random system elimination -----
    let n = sized(2048usize, 512);
    let mut rng = Xoshiro256::new(0xE11);
    let rows: Vec<BitVec> = (0..n).map(|_| BitVec::random(n, &mut rng)).collect();
    println!("gf2 target: {n}x{n} random system");

    rep.case_throughput(
        "gf2/gaussian_rref",
        n as u64,
        sized(3, 3),
        "rows-reduced/sec",
        n as f64,
        || {
            let mut work = rows.clone();
            m4ri::rref_gaussian(&mut work).len()
        },
    );
    rep.case_throughput(
        "gf2/m4ri_rref",
        n as u64,
        sized(10, 5),
        "rows-reduced/sec",
        n as f64,
        || {
            let mut work = rows.clone();
            m4ri::rref(&mut work).len()
        },
    );

    // ----- LFSR: symbolic batch stepping (model-construction inner loop) -----
    let width = sized(512usize, 128);
    let cycles = sized(2048u64, 256);
    let mut rng = Xoshiro256::new(width as u64);
    let taps = TapSet::for_width(width, 1 << 14, &mut rng).expect("tap search succeeds");
    rep.case_throughput(
        "lfsr/symbolic_run",
        width as u64,
        sized(5, 3),
        "cycles/sec",
        cycles as f64,
        || {
            let mut sym = SymbolicLfsr::new(taps.clone());
            sym.run(cycles);
            sym.steps_taken()
        },
    );

    // ----- speedup summary (the numbers the acceptance criteria track) -----
    let speedup = |fast: &str, slow: &str| -> Option<f64> {
        Some(rep.throughput_of(fast)? / rep.throughput_of(slow)?)
    };
    match speedup("sim/packed_eval", "sim/scalar_eval") {
        Some(s) => println!("speedup sim/packed_vs_scalar: {s:.1}x (target >= 20x)"),
        None => println!("speedup sim/packed_vs_scalar: n/a (a median was below clock resolution)"),
    }
    match speedup("gf2/m4ri_rref", "gf2/gaussian_rref") {
        Some(s) => println!("speedup gf2/m4ri_vs_gaussian: {s:.1}x (target >= 3x)"),
        None => println!("speedup gf2/m4ri_vs_gaussian: n/a (a median was below clock resolution)"),
    }

    rep.finish();
}
