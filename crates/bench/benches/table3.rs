//! Table III substrate: the key-size sweep. The paper grows the LFSR on
//! its three largest benchmarks to show attack time scales polynomially
//! in key size; this bench times seed recovery across that width sweep,
//! plus SAT effort on instances grown in step.

use bench::{planted_3sat, sized, Reporter};
use gf2::{BitVec, SplitMix64, Xoshiro256};
use lfsr::recover::{Observation, SeedRecovery};
use lfsr::{Lfsr, TapSet};
use netlist::profiles::TABLE3_BENCHMARKS;

/// Key widths swept, spanning the paper's 144…368-bit range.
const WIDTHS: [usize; 5] = [144, 200, 256, 312, 368];

/// Reduced sweep for CI smoke runs.
const SMOKE_WIDTHS: [usize; 2] = [144, 200];

const MIN_PERIOD: u64 = 1 << 14;

fn main() {
    let mut rep = Reporter::new("table3");
    println!("key-size sweep over benchmarks: {TABLE3_BENCHMARKS:?}");

    let widths: &[usize] = sized(&WIDTHS, &SMOKE_WIDTHS);
    for &width in widths {
        let mut rng = Xoshiro256::new(width as u64);
        let taps = TapSet::for_width(width, MIN_PERIOD, &mut rng).expect("tap search succeeds");
        let mut seed_rng = SplitMix64::new(width as u64);
        let seed = BitVec::random(width, &mut seed_rng);

        rep.case(
            &format!("table3/recover_w{width}"),
            width as u64,
            sized(3, 2),
            || {
                let mut chip = Lfsr::new(taps.clone(), seed.clone());
                let mut rec = SeedRecovery::new(taps.clone());
                for cycle in 0..width as u64 {
                    rec.observe(Observation {
                        cycle,
                        bit_index: 0,
                        value: chip.bit(0),
                    })
                    .expect("consistent observations");
                    chip.step();
                }
                rec.unique_seed().expect("full-rank system")
            },
        );

        // SAT effort grown in step with the key width. Ratio 3 keeps the
        // instances under-constrained: phase-transition-ratio instances
        // at these sizes take seconds-to-minutes on this solver.
        let inst = planted_3sat(width * 2, width * 6, width as u64);
        rep.case(
            &format!("table3/sat_{}v", width * 2),
            (width * 2) as u64,
            sized(3, 2),
            || {
                let (mut s, _) = inst.to_solver();
                s.solve()
            },
        );
    }

    rep.finish();
}
