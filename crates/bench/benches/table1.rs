//! Table I substrate: build every paper benchmark profile and measure
//! netlist construction plus one full simulation sweep. The profiles pin
//! the paper's published interface sizes (scan flops, PI/PO counts); see
//! DESIGN.md §4 for the synthetic-netlist substitution.

use bench::{sized, Reporter};
use netlist::profiles::{BenchmarkProfile, PAPER_BENCHMARKS};
use sim::Evaluator;

fn main() {
    let mut rep = Reporter::new("table1");
    let profiles: Vec<BenchmarkProfile> = PAPER_BENCHMARKS
        .iter()
        .map(|p| if bench::smoke() { p.scaled(0.1) } else { *p })
        .collect();

    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>7}",
        "bench", "PI", "PO", "flops", "gates"
    );
    for p in &profiles {
        let c = p.build(0);
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>7}",
            p.name,
            c.inputs().len(),
            c.outputs().len(),
            c.num_dffs(),
            c.num_gates()
        );
    }
    println!();

    for p in &profiles {
        rep.case(
            &format!("table1/build_{}", p.name),
            p.gates as u64,
            sized(5, 2),
            || p.build(0),
        );

        let c = p.build(0);
        let pis = vec![false; c.inputs().len()];
        let state = vec![false; c.num_dffs()];
        let mut ev = Evaluator::new(&c);
        rep.case(
            &format!("table1/eval_{}", p.name),
            p.gates as u64,
            sized(20, 3),
            || {
                ev.eval(&pis, &state);
                (ev.output_values(), ev.next_state())
            },
        );
    }

    rep.finish();
}
