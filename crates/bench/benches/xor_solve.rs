//! UNSAT-proof time vs. key width, native GF(2) xor vs. Tseitin.
//!
//! The instance family mirrors the attack's convergence proof: two
//! symbolic seed copies, a full-rank bank of parity constraints forcing
//! the copies to agree on every mask bit, and a miter clause demanding
//! they differ somewhere. Proving UNSAT means deriving `s = t` from the
//! parity bank — one elimination pass for the native engine, an
//! exponential resolution proof for the Tseitin expansion. This is the
//! cliff that capped the old harness at 20-bit keys.
//!
//! Emits `BENCH_xor_solve.json`. `BENCH_SMOKE=1` reduces the sweep. The
//! Tseitin engine is capped (printed below) — past the cap a single proof
//! runs for minutes to hours.

use bench::{sized, Reporter};
use cnf::{Encoder, XorMode};
use gf2::{BitMatrix, BitVec, Rng64, Xoshiro256};
use satsolver::{DratProof, ProofStats, SolveResult};

/// Key widths swept (the harness profiles live at 64 and 80).
const WIDTHS: [usize; 7] = [8, 16, 24, 32, 48, 64, 80];

/// Reduced sweep for CI smoke runs.
const SMOKE_WIDTHS: [usize; 4] = [8, 16, 64, 80];

/// Widest key the Tseitin lowering is asked to prove. Resolution blows up
/// exponentially on this family; the cap keeps the bench bounded.
const TSEITIN_CAP: usize = 28;

/// Smoke-run Tseitin cap.
const SMOKE_TSEITIN_CAP: usize = 16;

/// A full-rank bank of `w` random parity rows over `w` variables.
fn full_rank_rows(w: usize, rng: &mut Xoshiro256) -> Vec<BitVec> {
    loop {
        let rows: Vec<BitVec> = (0..w)
            .map(|_| BitVec::from_bools((0..w).map(|_| rng.gen_bool())))
            .collect();
        if BitMatrix::from_rows(rows.clone()).rank() == w {
            return rows;
        }
    }
}

/// Builds the two-copy miter and proves it UNSAT under `mode`. With
/// `log` set, a DRAT+xor proof is streamed during the solve; returns the
/// emitted proof's size (zero stats and bytes when logging is off).
fn prove_unsat(mode: XorMode, rows: &[BitVec], log: bool) -> (ProofStats, usize) {
    let w = rows.len();
    let mut enc = Encoder::with_mode(mode);
    let proof = log.then(DratProof::shared);
    if let Some(p) = &proof {
        enc.solver_mut().set_proof_logger(p.clone());
    }
    let s = enc.fresh_many(w);
    let t = enc.fresh_many(w);
    let diff: Vec<_> = (0..w).map(|j| enc.xor2(s[j], t[j])).collect();
    enc.assert_clause(&diff);
    for row in rows {
        let lits: Vec<_> = row.iter_ones().flat_map(|i| [s[i], t[i]]).collect();
        enc.assert_xor(&lits, false);
    }
    assert_eq!(enc.solver_mut().solve(), SolveResult::Unsat);
    proof.map_or((ProofStats::default(), 0), |p| {
        let guard = p.lock().unwrap();
        (*guard.stats(), guard.text().len())
    })
}

fn main() {
    let mut rep = Reporter::new("xor_solve");
    let widths: &[usize] = sized(&WIDTHS, &SMOKE_WIDTHS);
    let cap = *sized(&TSEITIN_CAP, &SMOKE_TSEITIN_CAP);
    println!("UNSAT-proof sweep over key widths {widths:?}");
    println!("tseitin capped at {cap} bits — resolution blows up past it (DESIGN.md §6)");

    for &w in widths {
        let mut rng = Xoshiro256::new(w as u64);
        let rows = full_rank_rows(w, &mut rng);

        let id = format!("xor_solve/native_w{w}");
        rep.case(&id, w as u64, sized(5, 2), || {
            prove_unsat(XorMode::Native, &rows, false);
        });
        rep.add_metric(&id, "key_width", w as f64);

        // The same native proof with DRAT+xor logging streaming to an
        // in-memory certificate: the delta against the row above is the
        // full cost of certified solving (DESIGN.md §7).
        let id = format!("xor_solve/native_logged_w{w}");
        let mut proof_size = (ProofStats::default(), 0);
        rep.case(&id, w as u64, sized(5, 2), || {
            proof_size = prove_unsat(XorMode::Native, &rows, true);
        });
        rep.add_metric(&id, "key_width", w as f64);
        rep.add_metric(&id, "proof_steps", proof_size.0.steps() as f64);
        rep.add_metric(&id, "proof_bytes", proof_size.1 as f64);

        if w <= cap {
            let id = format!("xor_solve/tseitin_w{w}");
            rep.case(&id, w as u64, sized(3, 2), || {
                prove_unsat(XorMode::Tseitin, &rows, false);
            });
            rep.add_metric(&id, "key_width", w as f64);
        } else {
            println!("  skipping tseitin at w={w} (cap {cap})");
        }
    }

    rep.finish();
}
