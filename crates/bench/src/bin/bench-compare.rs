//! CLI perf gate: diff two `BENCH_*.json` sets and fail on regressions.
//!
//! ```text
//! bench-compare [--threshold PCT] [--allow-missing] [--warn-only] BASELINE CURRENT
//! bench-compare --self-test
//! ```
//!
//! `BASELINE` and `CURRENT` are each a bench JSON file or a directory of
//! them. Exit status is nonzero when any shared case's `ns_per_iter` is
//! more than `--threshold` percent slower (default 10), or when a
//! baseline case is missing from the current set (suppress with
//! `--allow-missing`). `--warn-only` prints the report but always exits
//! zero. `--self-test` synthesizes a >10% regression in memory and exits
//! zero only if the gate catches it — CI runs this first so a broken
//! comparator cannot silently wave regressions through.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::compare::{compare, BenchFile, CaseResult};

const USAGE: &str = "usage: bench-compare [--threshold PCT] [--allow-missing] [--warn-only] \
                     BASELINE CURRENT\n       bench-compare --self-test";

struct Options {
    threshold_pct: f64,
    allow_missing: bool,
    warn_only: bool,
    self_test: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        threshold_pct: 10.0,
        allow_missing: false,
        warn_only: false,
        self_test: false,
        paths: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().ok_or("--threshold needs a value")?;
                opts.threshold_pct = value
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| format!("bad --threshold value {value:?}"))?;
            }
            "--allow-missing" => opts.allow_missing = true,
            "--warn-only" => opts.warn_only = true,
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => opts.paths.push(PathBuf::from(other)),
        }
    }
    if opts.self_test {
        if !opts.paths.is_empty() {
            return Err("--self-test takes no paths".to_string());
        }
    } else if opts.paths.len() != 2 {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

/// Proves the gate catches what it must: a synthetic +25% case trips a
/// 10% threshold, a +5% case does not, and a dropped case is flagged.
fn self_test() -> Result<(), String> {
    let mk = |cases: &[(&str, f64)]| BenchFile {
        bench: "selftest".to_string(),
        smoke: true,
        results: cases
            .iter()
            .map(|&(id, ns)| CaseResult {
                id: id.to_string(),
                size: 1,
                iters: 1,
                ns_per_iter: ns,
                throughput: None,
                metrics: Vec::new(),
            })
            .collect(),
    };
    let base = [mk(&[("hot", 1000.0), ("warm", 1000.0), ("gone", 1.0)])];
    let cur = [mk(&[("hot", 1250.0), ("warm", 1050.0)])];
    let report = compare(&base, &cur);
    print!("{}", report.render(10.0));

    let regs = report.regressions(10.0);
    if regs.len() != 1 || regs[0].id != "hot" {
        return Err(format!(
            "expected exactly the +25% case to regress, got {:?}",
            regs.iter().map(|d| d.id.as_str()).collect::<Vec<_>>()
        ));
    }
    if report.missing_in_current != ["selftest/gone"] {
        return Err(format!(
            "expected the dropped case to be flagged, got {:?}",
            report.missing_in_current
        ));
    }
    // Round-trip through the JSON reader so the parser is covered too.
    let dir = std::env::temp_dir().join(format!("bench-compare-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let json = "{\n  \"schema\": 1,\n  \"bench\": \"selftest\",\n  \"smoke\": true,\n  \
                \"results\": [\n    {\"id\": \"hot\", \"size\": 1, \"iters\": 1, \
                \"ns_per_iter\": 1250, \"throughput\": null}\n  ]\n}\n";
    let path = dir.join("BENCH_selftest.json");
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    let reread = BenchFile::load(&path).map_err(|e| e.to_string())?;
    std::fs::remove_dir_all(&dir).ok();
    if reread.results.len() != 1 || reread.results[0].ns_per_iter != 1250.0 {
        return Err("JSON round-trip mismatch".to_string());
    }
    println!("self-test ok: gate catches a >10% regression and a dropped case");
    Ok(())
}

fn gate(opts: &Options) -> Result<bool, String> {
    let load = |path: &Path| {
        BenchFile::load_set(path).map_err(|e| format!("loading {}: {e}", path.display()))
    };
    let baseline = load(&opts.paths[0])?;
    let current = load(&opts.paths[1])?;
    let report = compare(&baseline, &current);
    print!("{}", report.render(opts.threshold_pct));

    let regs = report.regressions(opts.threshold_pct);
    let mut failed = false;
    if !regs.is_empty() {
        println!(
            "FAIL: {} case(s) regressed more than {}%",
            regs.len(),
            opts.threshold_pct
        );
        failed = true;
    }
    if !report.missing_in_current.is_empty() && !opts.allow_missing {
        println!(
            "FAIL: {} baseline case(s) missing from the current set \
             (pass --allow-missing to permit)",
            report.missing_in_current.len()
        );
        failed = true;
    }
    if !failed {
        println!(
            "ok: {} case(s) within {}% of baseline",
            report.deltas.len(),
            opts.threshold_pct
        );
    }
    Ok(failed && !opts.warn_only)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if opts.self_test {
        self_test().map(|()| false)
    } else {
        gate(&opts)
    };
    match outcome {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench-compare: {msg}");
            ExitCode::FAILURE
        }
    }
}
