//! Shared support for the hand-rolled benchmarks in `benches/`.
//!
//! Every bench target is declared `harness = false`, so each one is a
//! plain binary whose `main` times its cases with [`run`] and prints one
//! line per case. No external benchmark harness is used (the workspace is
//! dependency-free); numbers are wall-clock medians over a fixed
//! iteration count, which is plenty for the trend comparisons the paper's
//! tables call for (DESIGN.md §4).
//!
//! Besides the human-readable lines, every bench records its cases in a
//! [`Reporter`] and writes a machine-readable `BENCH_<name>.json` on
//! finish, so the perf trajectory can be tracked across PRs (schema in
//! DESIGN.md §5). Setting `BENCH_SMOKE=1` shrinks problem sizes and
//! iteration counts for CI smoke runs; `BENCH_JSON_DIR` redirects where
//! the JSON files land (default: the current directory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gf2::{Rng64, Xoshiro256};
use satsolver::dimacs::Cnf;
use satsolver::Lit;

/// Timing summary for one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Iterations timed (after one untimed warm-up).
    pub iters: u32,
    /// Median per-iteration wall-clock time.
    pub median: Duration,
    /// Total wall-clock time across all timed iterations.
    pub total: Duration,
}

/// Times `f` over `iters` iterations (plus one untimed warm-up), prints a
/// one-line summary, and returns the sample.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the computation cannot be optimized away.
pub fn run<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(iters as usize);
    let total_start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    let total = total_start.elapsed();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("{name:<40} {iters:>5} iters   median {median:>12?}   total {total:>12?}");
    Sample {
        iters,
        median,
        total,
    }
}

/// Whether benches should run at reduced smoke-test sizes
/// (`BENCH_SMOKE=1` in the environment; used by the CI bench-smoke step).
pub fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Picks `full` normally and `reduced` under [`smoke`] mode.
pub fn sized<T>(full: T, reduced: T) -> T {
    if smoke() {
        reduced
    } else {
        full
    }
}

/// One recorded benchmark case, as serialized into `BENCH_<name>.json`.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    size: u64,
    iters: u32,
    ns_per_iter: f64,
    throughput: Option<(String, f64)>,
    /// Extra named numbers (insertion-ordered); serialized as a `"metrics"`
    /// object only when non-empty, so cases without metrics keep the exact
    /// schema-1 shape.
    metrics: Vec<(String, f64)>,
}

/// Collects benchmark cases and writes them as machine-readable JSON.
///
/// Create one per bench binary, record every case, and call
/// [`Reporter::finish`] at the end of `main`. The output file is
/// `BENCH_<name>.json` in `BENCH_JSON_DIR` (or the current directory),
/// with the schema documented in DESIGN.md §5:
///
/// ```json
/// {
///   "schema": 1,
///   "bench": "wordpar",
///   "smoke": false,
///   "results": [
///     {"id": "sim/packed_eval", "size": 4096, "iters": 20,
///      "ns_per_iter": 1234.5,
///      "throughput": {"unit": "patterns/sec", "per_sec": 3.3e9}}
///   ]
/// }
/// ```
///
/// Cases may additionally carry a `"metrics"` object of named numbers
/// (added via [`Reporter::add_metric`]; omitted when empty), and one-shot
/// workloads can be recorded with an externally measured duration via
/// [`Reporter::record_timed`].
#[derive(Debug)]
pub struct Reporter {
    bench: String,
    results: Vec<Record>,
}

impl Reporter {
    /// Starts a reporter for the bench target `name` (the `<name>` in
    /// `BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        Reporter {
            bench: name.to_string(),
            results: Vec::new(),
        }
    }

    /// Times `f` with [`run`] and records the case. `size` is the problem
    /// size the case scales with (rows, patterns, variables…).
    pub fn case<T>(&mut self, id: &str, size: u64, iters: u32, f: impl FnMut() -> T) -> Sample {
        let sample = run(id, iters, f);
        self.record(id, size, sample, None);
        sample
    }

    /// Like [`Reporter::case`], additionally recording a throughput of
    /// `items_per_iter / median` in `unit` (e.g. `"patterns/sec"`).
    ///
    /// If the median is below the clock resolution (zero), no throughput
    /// is recorded — the schema's `per_sec` is always a finite number.
    pub fn case_throughput<T>(
        &mut self,
        id: &str,
        size: u64,
        iters: u32,
        unit: &str,
        items_per_iter: f64,
        f: impl FnMut() -> T,
    ) -> Sample {
        let sample = run(id, iters, f);
        let secs = sample.median.as_secs_f64();
        let throughput = if secs > 0.0 {
            let per_sec = items_per_iter / secs;
            println!("{id:<40}        {per_sec:>14.0} {unit}");
            Some((unit.to_string(), per_sec))
        } else {
            println!("{id:<40}        median below clock resolution; no throughput");
            None
        };
        self.record(id, size, sample, throughput);
        sample
    }

    /// Records a case that was timed *once*, externally (no warm-up, no
    /// re-runs). For workloads where repetition is meaningless or too
    /// expensive — a DynUnlock attack run is one adaptive oracle dialogue,
    /// not a repeatable inner loop.
    pub fn record_timed(&mut self, id: &str, size: u64, elapsed: Duration) {
        println!("{id:<40}     1 iter            once {elapsed:>12?}");
        let sample = Sample {
            iters: 1,
            median: elapsed,
            total: elapsed,
        };
        self.record(id, size, sample, None);
    }

    /// Attaches a named metric to the most recently recorded case with
    /// this `id` (e.g. DIP iterations or solver-only nanoseconds alongside
    /// the case's wall-clock time). Re-adding a key overwrites it.
    ///
    /// # Panics
    ///
    /// Panics if no case with `id` has been recorded yet.
    pub fn add_metric(&mut self, id: &str, key: &str, value: f64) {
        let rec = self
            .results
            .iter_mut()
            .rev()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no recorded case with id {id:?}"));
        match rec.metrics.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => rec.metrics.push((key.to_string(), value)),
        }
    }

    fn record(&mut self, id: &str, size: u64, sample: Sample, throughput: Option<(String, f64)>) {
        self.results.push(Record {
            id: id.to_string(),
            size,
            iters: sample.iters,
            ns_per_iter: sample.median.as_nanos() as f64,
            throughput,
            metrics: Vec::new(),
        });
    }

    /// Recorded throughput (per-sec value) of a case by id, if any.
    pub fn throughput_of(&self, id: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.throughput.as_ref().map(|(_, v)| *v))
    }

    /// Writes `BENCH_<name>.json` into `BENCH_JSON_DIR` (or the current
    /// directory) and returns its path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — a bench that silently loses its results is
    /// worse than one that fails loudly.
    pub fn finish(self) -> PathBuf {
        let dir =
            std::env::var_os("BENCH_JSON_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from);
        self.finish_to(&dir)
    }

    /// Writes `BENCH_<name>.json` into an explicit directory and returns
    /// its path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like [`Reporter::finish`].
    pub fn finish_to(self, dir: &std::path::Path) -> PathBuf {
        std::fs::create_dir_all(dir).expect("create bench JSON directory");
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str(&format!("  \"smoke\": {},\n", smoke()));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"size\": {}, \"iters\": {}, \"ns_per_iter\": {}",
                json_string(&r.id),
                r.size,
                r.iters,
                json_number(r.ns_per_iter),
            ));
            match &r.throughput {
                Some((unit, per_sec)) => out.push_str(&format!(
                    ", \"throughput\": {{\"unit\": {}, \"per_sec\": {}}}",
                    json_string(unit),
                    json_number(*per_sec),
                )),
                None => out.push_str(", \"throughput\": null"),
            }
            if !r.metrics.is_empty() {
                let body: Vec<String> = r
                    .metrics
                    .iter()
                    .map(|(k, v)| format!("{}: {}", json_string(k), json_number(*v)))
                    .collect();
                out.push_str(&format!(", \"metrics\": {{{}}}", body.join(", ")));
            }
            out.push('}');
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        let mut file = std::fs::File::create(&path).expect("create bench JSON file");
        file.write_all(out.as_bytes()).expect("write bench JSON");
        println!("wrote {}", path.display());
        path
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite float as a JSON number (JSON has no Infinity/NaN).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A random 3-SAT instance with a *planted* satisfying assignment: every
/// clause is forced to agree with a hidden random model in at least one
/// literal, so the instance is SAT by construction.
pub fn planted_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3);
    let mut rng = Xoshiro256::new(seed);
    let model: Vec<bool> = (0..num_vars).map(|_| rng.next_u64() & 1 == 1).collect();
    let mut cnf = Cnf::new(num_vars);
    while cnf.clauses.len() < num_clauses {
        let mut vars = [0usize; 3];
        vars[0] = rng.next_u64() as usize % num_vars;
        while {
            vars[1] = rng.next_u64() as usize % num_vars;
            vars[1] == vars[0]
        } {}
        while {
            vars[2] = rng.next_u64() as usize % num_vars;
            vars[2] == vars[0] || vars[2] == vars[1]
        } {}
        let mut clause: Vec<i64> = vars
            .iter()
            .map(|&v| {
                let positive = rng.next_u64() & 1 == 1;
                if positive {
                    (v + 1) as i64
                } else {
                    -((v + 1) as i64)
                }
            })
            .collect();
        // Plant: flip one literal's sign if none agrees with the model.
        if !clause
            .iter()
            .any(|&code| model[code.unsigned_abs() as usize - 1] == (code > 0))
        {
            let k = rng.next_u64() as usize % 3;
            clause[k] = -clause[k];
        }
        cnf.add_clause(
            clause
                .iter()
                .map(|&code| Lit::from_dimacs(code))
                .collect::<Vec<Lit>>(),
        );
    }
    cnf
}

/// The pigeonhole principle instance `PHP(pigeons, holes)`: UNSAT whenever
/// `pigeons > holes`, and a classic resolution-hard driver for clause
/// learning.
pub fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let lit = |p: usize, h: usize, positive: bool| {
        let code = (p * holes + h + 1) as i64;
        Lit::from_dimacs(if positive { code } else { -code })
    };
    let mut cnf = Cnf::new(pigeons * holes);
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h, true)).collect::<Vec<Lit>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause(vec![lit(p1, h, false), lit(p2, h, false)]);
            }
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use satsolver::SolveResult;

    #[test]
    fn planted_instances_are_sat() {
        for seed in 0..3 {
            let inst = planted_3sat(50, 210, seed);
            assert_eq!(inst.clauses.len(), 210);
            let (mut s, _) = inst.to_solver();
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn pigeonhole_status_matches_counts() {
        let (mut unsat, _) = pigeonhole(5, 4).to_solver();
        assert_eq!(unsat.solve(), SolveResult::Unsat);
        let (mut sat, _) = pigeonhole(4, 4).to_solver();
        assert_eq!(sat.solve(), SolveResult::Sat);
    }

    #[test]
    fn run_reports_requested_iters() {
        let s = run("selftest/noop", 3, || 1 + 1);
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn json_number_handles_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn reporter_writes_schema_conformant_json() {
        let dir = std::env::temp_dir().join(format!("bench-json-test-{}", std::process::id()));
        let mut rep = Reporter::new("selftest");
        rep.case("case/plain", 10, 2, || 1 + 1);
        // sleep long enough that the median is never zero, so the
        // throughput record is deterministic
        rep.case_throughput("case/tp", 20, 2, "items/sec", 100.0, || {
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(rep.throughput_of("case/tp").is_some());
        assert!(rep.throughput_of("case/plain").is_none());
        let path = rep.finish_to(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(path.file_name().unwrap(), "BENCH_selftest.json");
        for needle in [
            "\"schema\": 1",
            "\"bench\": \"selftest\"",
            "\"id\": \"case/plain\"",
            "\"size\": 10",
            "\"ns_per_iter\":",
            "\"throughput\": null",
            "\"unit\": \"items/sec\"",
            "\"per_sec\":",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn record_timed_and_metrics_serialize() {
        let dir = std::env::temp_dir().join(format!("bench-json-metrics-{}", std::process::id()));
        let mut rep = Reporter::new("metricstest");
        rep.record_timed("attack/tiny", 8, Duration::from_micros(1500));
        rep.add_metric("attack/tiny", "dip_iterations", 7.0);
        rep.add_metric("attack/tiny", "solve_ns", 1.25e6);
        rep.add_metric("attack/tiny", "dip_iterations", 9.0); // overwrite
        rep.case("plain/no-metrics", 1, 2, || 0);
        let path = rep.finish_to(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for needle in [
            "\"id\": \"attack/tiny\"",
            "\"iters\": 1",
            "\"ns_per_iter\": 1500000",
            "\"metrics\": {\"dip_iterations\": 9, \"solve_ns\": 1250000}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // A case without metrics keeps the original schema-1 line shape.
        assert!(
            text.contains("\"id\": \"plain/no-metrics\"")
                && !text.contains("plain/no-metrics\", \"metrics\""),
            "metrics object must be omitted when empty:\n{text}"
        );
    }

    #[test]
    #[should_panic(expected = "no recorded case")]
    fn add_metric_requires_existing_case() {
        let mut rep = Reporter::new("metricstest");
        rep.add_metric("missing/case", "k", 1.0);
    }

    #[test]
    fn sized_picks_by_smoke_mode() {
        // BENCH_SMOKE is not set in the test environment by default.
        if !smoke() {
            assert_eq!(sized(100, 5), 100);
        }
    }
}
