//! Shared support for the hand-rolled benchmarks in `benches/`.
//!
//! Every bench target is declared `harness = false`, so each one is a
//! plain binary whose `main` times its cases with [`run`] and prints one
//! line per case. No external benchmark harness is used (the workspace is
//! dependency-free); numbers are wall-clock medians over a fixed
//! iteration count, which is plenty for the trend comparisons the paper's
//! tables call for (DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use gf2::{Rng64, Xoshiro256};
use satsolver::dimacs::Cnf;
use satsolver::Lit;

/// Timing summary for one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Iterations timed (after one untimed warm-up).
    pub iters: u32,
    /// Median per-iteration wall-clock time.
    pub median: Duration,
    /// Total wall-clock time across all timed iterations.
    pub total: Duration,
}

/// Times `f` over `iters` iterations (plus one untimed warm-up), prints a
/// one-line summary, and returns the sample.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the computation cannot be optimized away.
pub fn run<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "need at least one iteration");
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(iters as usize);
    let total_start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    let total = total_start.elapsed();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("{name:<40} {iters:>5} iters   median {median:>12?}   total {total:>12?}");
    Sample {
        iters,
        median,
        total,
    }
}

/// A random 3-SAT instance with a *planted* satisfying assignment: every
/// clause is forced to agree with a hidden random model in at least one
/// literal, so the instance is SAT by construction.
pub fn planted_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3);
    let mut rng = Xoshiro256::new(seed);
    let model: Vec<bool> = (0..num_vars).map(|_| rng.next_u64() & 1 == 1).collect();
    let mut cnf = Cnf::new(num_vars);
    while cnf.clauses.len() < num_clauses {
        let mut vars = [0usize; 3];
        vars[0] = rng.next_u64() as usize % num_vars;
        while {
            vars[1] = rng.next_u64() as usize % num_vars;
            vars[1] == vars[0]
        } {}
        while {
            vars[2] = rng.next_u64() as usize % num_vars;
            vars[2] == vars[0] || vars[2] == vars[1]
        } {}
        let mut clause: Vec<i64> = vars
            .iter()
            .map(|&v| {
                let positive = rng.next_u64() & 1 == 1;
                if positive {
                    (v + 1) as i64
                } else {
                    -((v + 1) as i64)
                }
            })
            .collect();
        // Plant: flip one literal's sign if none agrees with the model.
        if !clause
            .iter()
            .any(|&code| model[code.unsigned_abs() as usize - 1] == (code > 0))
        {
            let k = rng.next_u64() as usize % 3;
            clause[k] = -clause[k];
        }
        cnf.add_clause(
            clause
                .iter()
                .map(|&code| Lit::from_dimacs(code))
                .collect::<Vec<Lit>>(),
        );
    }
    cnf
}

/// The pigeonhole principle instance `PHP(pigeons, holes)`: UNSAT whenever
/// `pigeons > holes`, and a classic resolution-hard driver for clause
/// learning.
pub fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let lit = |p: usize, h: usize, positive: bool| {
        let code = (p * holes + h + 1) as i64;
        Lit::from_dimacs(if positive { code } else { -code })
    };
    let mut cnf = Cnf::new(pigeons * holes);
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| lit(p, h, true)).collect::<Vec<Lit>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause(vec![lit(p1, h, false), lit(p2, h, false)]);
            }
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use satsolver::SolveResult;

    #[test]
    fn planted_instances_are_sat() {
        for seed in 0..3 {
            let inst = planted_3sat(50, 210, seed);
            assert_eq!(inst.clauses.len(), 210);
            let (mut s, _) = inst.to_solver();
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn pigeonhole_status_matches_counts() {
        let (mut unsat, _) = pigeonhole(5, 4).to_solver();
        assert_eq!(unsat.solve(), SolveResult::Unsat);
        let (mut sat, _) = pigeonhole(4, 4).to_solver();
        assert_eq!(sat.solve(), SolveResult::Sat);
    }

    #[test]
    fn run_reports_requested_iters() {
        let s = run("selftest/noop", 3, || 1 + 1);
        assert_eq!(s.iters, 3);
    }
}
