//! Comparing two sets of `BENCH_*.json` results: the CI perf gate.
//!
//! [`Reporter`](crate::Reporter) writes one JSON file per bench target;
//! this module reads those files back (with a built-in minimal JSON
//! parser — the workspace is dependency-free) and diffs a *baseline* set
//! against a *current* set, case by case. A case is keyed by
//! `(bench, id)`; its `ns_per_iter` median is the compared quantity. The
//! `bench-compare` binary wraps [`compare`] with a threshold and exit
//! code, so CI fails when a hot path regresses by more than the allowed
//! percentage (DESIGN.md §5 documents the baseline policy).
//!
//! Cases whose baseline median was below clock resolution (0 ns) carry no
//! meaningful ratio; they are reported as *incomparable* and never fail
//! the gate.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors surfaced while loading or diffing bench JSON files.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompareError {
    /// Reading a file or listing a directory failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not well-formed JSON.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the first error.
        pos: usize,
        /// What the parser expected.
        msg: String,
    },
    /// The JSON is well-formed but does not match bench schema 1.
    Schema {
        /// The offending file.
        path: PathBuf,
        /// Which schema expectation failed.
        msg: String,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CompareError::Parse { path, pos, msg } => {
                write!(f, "{}: JSON error at byte {pos}: {msg}", path.display())
            }
            CompareError::Schema { path, msg } => {
                write!(f, "{}: schema error: {msg}", path.display())
            }
        }
    }
}

impl std::error::Error for CompareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompareError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Only what bench schema 1 needs; objects keep
/// insertion order.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, (usize, String)>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> ParseResult<T> {
        Err((self.pos, msg.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> ParseResult<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_document(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing data after JSON value");
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_object(&mut self) -> ParseResult<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn parse_array(&mut self) -> ParseResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn parse_string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid; copy bytes until the next
                    // char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_number(&mut self) -> ParseResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err(format!("invalid number {text:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Bench schema 1
// ---------------------------------------------------------------------

/// One benchmark case read back from a `BENCH_*.json` file (the reader's
/// view of what [`Reporter`](crate::Reporter) wrote).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case identifier, e.g. `"sim/packed_eval"`.
    pub id: String,
    /// Problem size the case scales with.
    pub size: u64,
    /// Timed iterations.
    pub iters: u32,
    /// Median nanoseconds per iteration — the compared quantity.
    pub ns_per_iter: f64,
    /// Recorded throughput `(unit, per_sec)`, if any.
    pub throughput: Option<(String, f64)>,
    /// Extra named metrics (e.g. `threads`, `lane_width`).
    pub metrics: Vec<(String, f64)>,
}

impl CaseResult {
    /// Looks up a named metric.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// One parsed `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// The bench target name (`"wordpar"`, `"dynunlock"`, …).
    pub bench: String,
    /// Whether the file was produced under `BENCH_SMOKE=1`.
    pub smoke: bool,
    /// All recorded cases, in file order.
    pub results: Vec<CaseResult>,
}

impl BenchFile {
    /// Parses bench JSON text. `origin` labels error messages (use the
    /// file path, or a synthetic name for in-memory input).
    pub fn parse(text: &str, origin: &Path) -> Result<BenchFile, CompareError> {
        let doc = Parser::new(text)
            .parse_document()
            .map_err(|(pos, msg)| CompareError::Parse {
                path: origin.to_path_buf(),
                pos,
                msg,
            })?;
        let schema_err = |msg: &str| CompareError::Schema {
            path: origin.to_path_buf(),
            msg: msg.to_string(),
        };
        match doc.get("schema") {
            Some(Json::Num(v)) if *v == 1.0 => {}
            _ => return Err(schema_err("expected \"schema\": 1")),
        }
        let bench = match doc.get("bench") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(schema_err("expected a \"bench\" string")),
        };
        let smoke = match doc.get("smoke") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(schema_err("expected a \"smoke\" bool")),
        };
        let Some(Json::Arr(raw)) = doc.get("results") else {
            return Err(schema_err("expected a \"results\" array"));
        };
        let mut results = Vec::with_capacity(raw.len());
        for item in raw {
            let id = match item.get("id") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err(schema_err("result without an \"id\" string")),
            };
            let num = |key: &str| -> Result<f64, CompareError> {
                match item.get(key) {
                    Some(Json::Num(v)) => Ok(*v),
                    _ => Err(schema_err(&format!("case {id:?}: expected number {key:?}"))),
                }
            };
            let size = num("size")? as u64;
            let iters = num("iters")? as u32;
            let ns_per_iter = num("ns_per_iter")?;
            let throughput = match item.get("throughput") {
                None | Some(Json::Null) => None,
                Some(tp) => match (tp.get("unit"), tp.get("per_sec")) {
                    (Some(Json::Str(unit)), Some(Json::Num(per_sec))) => {
                        Some((unit.clone(), *per_sec))
                    }
                    _ => return Err(schema_err(&format!("case {id:?}: bad throughput object"))),
                },
            };
            let mut metrics = Vec::new();
            if let Some(m) = item.get("metrics") {
                let Json::Obj(pairs) = m else {
                    return Err(schema_err(&format!(
                        "case {id:?}: metrics is not an object"
                    )));
                };
                for (k, v) in pairs {
                    let Json::Num(v) = v else {
                        return Err(schema_err(&format!(
                            "case {id:?}: metric {k:?} not a number"
                        )));
                    };
                    metrics.push((k.clone(), *v));
                }
            }
            results.push(CaseResult {
                id,
                size,
                iters,
                ns_per_iter,
                throughput,
                metrics,
            });
        }
        Ok(BenchFile {
            bench,
            smoke,
            results,
        })
    }

    /// Loads and parses one bench JSON file.
    pub fn load(path: &Path) -> Result<BenchFile, CompareError> {
        let text = std::fs::read_to_string(path).map_err(|source| CompareError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        BenchFile::parse(&text, path)
    }

    /// Loads a *set* of bench files: `path` may be a single JSON file or
    /// a directory, in which case every `BENCH_*.json` directly inside it
    /// is loaded (sorted by file name for determinism).
    pub fn load_set(path: &Path) -> Result<Vec<BenchFile>, CompareError> {
        if !path.is_dir() {
            return Ok(vec![BenchFile::load(path)?]);
        }
        let entries = std::fs::read_dir(path).map_err(|source| CompareError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        files.sort();
        files.iter().map(|p| BenchFile::load(p)).collect()
    }
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// The per-case outcome of diffing a baseline case against its current
/// counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The bench target the case belongs to.
    pub bench: String,
    /// The case id.
    pub id: String,
    /// Baseline median, ns/iter.
    pub baseline_ns: f64,
    /// Current median, ns/iter.
    pub current_ns: f64,
}

impl Delta {
    /// Percentage change of `current` relative to `baseline` (positive =
    /// slower). Non-finite when the baseline median was 0 ns (below clock
    /// resolution) — such cases are *incomparable* and never regressions.
    pub fn change_pct(&self) -> f64 {
        if self.baseline_ns > 0.0 {
            (self.current_ns / self.baseline_ns - 1.0) * 100.0
        } else if self.current_ns == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

/// The full result of diffing two bench-file sets.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Cases present in both sets, in baseline order.
    pub deltas: Vec<Delta>,
    /// `bench/id` keys present in the baseline but absent now (a removed
    /// or renamed case — suspicious, since a silently dropped case can
    /// hide a regression).
    pub missing_in_current: Vec<String>,
    /// `bench/id` keys present now but not in the baseline (new cases are
    /// fine; they just can't be compared yet).
    pub new_in_current: Vec<String>,
}

impl CompareReport {
    /// Deltas slower than `threshold_pct` percent (strictly greater).
    /// Incomparable deltas (0 ns baseline) are excluded.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| {
                let pct = d.change_pct();
                pct.is_finite() && pct > threshold_pct
            })
            .collect()
    }

    /// Human-readable table of every delta, flagging regressions beyond
    /// `threshold_pct` and listing missing/new cases.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>9}\n",
            "case", "baseline ns", "current ns", "change"
        ));
        for d in &self.deltas {
            let pct = d.change_pct();
            let (change, flag) = if pct.is_finite() {
                let flag = if pct > threshold_pct {
                    "  REGRESSION"
                } else {
                    ""
                };
                (format!("{pct:>+8.1}%"), flag)
            } else {
                ("   incomp".to_string(), "")
            };
            out.push_str(&format!(
                "{:<44} {:>14.0} {:>14.0} {change}{flag}\n",
                format!("{}/{}", d.bench, d.id),
                d.baseline_ns,
                d.current_ns,
            ));
        }
        for key in &self.missing_in_current {
            out.push_str(&format!("{key:<44} MISSING in current set\n"));
        }
        for key in &self.new_in_current {
            out.push_str(&format!("{key:<44} new (no baseline)\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline`. Cases are keyed by
/// `(bench, id)`; duplicate keys within one set keep the last
/// occurrence.
pub fn compare(baseline: &[BenchFile], current: &[BenchFile]) -> CompareReport {
    let index = |set: &[BenchFile]| -> BTreeMap<(String, String), f64> {
        let mut map = BTreeMap::new();
        for file in set {
            for case in &file.results {
                map.insert((file.bench.clone(), case.id.clone()), case.ns_per_iter);
            }
        }
        map
    };
    let base = index(baseline);
    let cur = index(current);
    let mut report = CompareReport::default();
    for ((bench, id), &baseline_ns) in &base {
        match cur.get(&(bench.clone(), id.clone())) {
            Some(&current_ns) => report.deltas.push(Delta {
                bench: bench.clone(),
                id: id.clone(),
                baseline_ns,
                current_ns,
            }),
            None => report.missing_in_current.push(format!("{bench}/{id}")),
        }
    }
    for (bench, id) in cur.keys() {
        if !base.contains_key(&(bench.clone(), id.clone())) {
            report.new_in_current.push(format!("{bench}/{id}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reporter;
    use std::time::Duration;

    fn synthetic(bench: &str, cases: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            bench: bench.to_string(),
            smoke: true,
            results: cases
                .iter()
                .map(|&(id, ns)| CaseResult {
                    id: id.to_string(),
                    size: 1,
                    iters: 1,
                    ns_per_iter: ns,
                    throughput: None,
                    metrics: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_reporter_output() {
        let dir = std::env::temp_dir().join(format!("bench-compare-rt-{}", std::process::id()));
        let mut rep = Reporter::new("roundtrip");
        rep.record_timed("case/a", 64, Duration::from_micros(10));
        rep.add_metric("case/a", "threads", 4.0);
        rep.add_metric("case/a", "lane_width", 256.0);
        rep.case_throughput("case/tp", 128, 2, "items/sec", 100.0, || {
            std::thread::sleep(Duration::from_millis(1));
        });
        let path = rep.finish_to(&dir);
        let parsed = BenchFile::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(parsed.bench, "roundtrip");
        assert_eq!(parsed.results.len(), 2);
        let a = &parsed.results[0];
        assert_eq!(a.id, "case/a");
        assert_eq!(a.size, 64);
        assert_eq!(a.ns_per_iter, 10_000.0);
        assert_eq!(a.metric("threads"), Some(4.0));
        assert_eq!(a.metric("lane_width"), Some(256.0));
        let tp = &parsed.results[1];
        let (unit, per_sec) = tp.throughput.as_ref().expect("throughput recorded");
        assert_eq!(unit, "items/sec");
        assert!(*per_sec > 0.0);
    }

    #[test]
    fn detects_a_synthetic_regression_over_threshold() {
        let base = [synthetic("wp", &[("fast", 1000.0), ("slow", 2000.0)])];
        let cur = [synthetic("wp", &[("fast", 1050.0), ("slow", 2400.0)])];
        let report = compare(&base, &cur);
        assert_eq!(report.deltas.len(), 2);
        // fast: +5% (under a 10% gate); slow: +20% (over it)
        let regs = report.regressions(10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "slow");
        assert!((regs[0].change_pct() - 20.0).abs() < 1e-9);
        assert!(report.render(10.0).contains("REGRESSION"));
        // A looser gate passes both.
        assert!(report.regressions(25.0).is_empty());
    }

    #[test]
    fn improvements_never_regress() {
        let base = [synthetic("wp", &[("a", 1000.0)])];
        let cur = [synthetic("wp", &[("a", 400.0)])];
        let report = compare(&base, &cur);
        assert!(report.regressions(0.0).is_empty());
        assert!(report.deltas[0].change_pct() < 0.0);
    }

    #[test]
    fn zero_baseline_is_incomparable_not_regression() {
        let base = [synthetic("wp", &[("z", 0.0)])];
        let cur = [synthetic("wp", &[("z", 500.0)])];
        let report = compare(&base, &cur);
        assert!(report.deltas[0].change_pct().is_infinite());
        assert!(report.regressions(10.0).is_empty());
        assert!(report.render(10.0).contains("incomp"));
    }

    #[test]
    fn missing_and_new_cases_are_reported() {
        let base = [synthetic("wp", &[("kept", 100.0), ("dropped", 100.0)])];
        let cur = [synthetic("wp", &[("kept", 100.0), ("added", 100.0)])];
        let report = compare(&base, &cur);
        assert_eq!(report.missing_in_current, vec!["wp/dropped".to_string()]);
        assert_eq!(report.new_in_current, vec!["wp/added".to_string()]);
        assert_eq!(report.deltas.len(), 1);
    }

    #[test]
    fn cases_in_different_benches_do_not_collide() {
        let base = [
            synthetic("a", &[("x", 100.0)]),
            synthetic("b", &[("x", 999.0)]),
        ];
        let cur = [
            synthetic("a", &[("x", 100.0)]),
            synthetic("b", &[("x", 999.0)]),
        ];
        let report = compare(&base, &cur);
        assert_eq!(report.deltas.len(), 2);
        assert!(report.regressions(0.0).is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let ok = r#"{"schema": 1, "bench": "e\"s\\c", "smoke": false, "results": []}"#;
        let parsed = BenchFile::parse(ok, Path::new("<mem>")).unwrap();
        assert_eq!(parsed.bench, "e\"s\\c");
        assert!(!parsed.smoke);

        for bad in [
            "",
            "{",
            "[1, 2",
            r#"{"schema": 1}"#, // missing fields
            r#"{"schema": 2, "bench": "x", "smoke": true, "results": []}"#, // wrong schema
            r#"{"schema": 1, "bench": "x", "smoke": true, "results": [{"size": 1}]}"#, // no id
            r#"{"schema": 1, "bench": "x", "smoke": true, "results": []} trailing"#,
        ] {
            assert!(
                BenchFile::parse(bad, Path::new("<mem>")).is_err(),
                "accepted bad input: {bad}"
            );
        }
    }

    #[test]
    fn load_set_reads_every_bench_file_in_a_directory() {
        let dir = std::env::temp_dir().join(format!("bench-compare-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Reporter::new("alpha").finish_to(&dir);
        Reporter::new("beta").finish_to(&dir);
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let set = BenchFile::load_set(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let names: Vec<&str> = set.iter().map(|f| f.bench.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }
}
