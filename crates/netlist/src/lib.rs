//! Gate-level netlist infrastructure for the DynUnlock reproduction.
//!
//! The paper evaluates on ISCAS-89 and ITC-99 sequential benchmarks. This
//! crate provides everything needed to stand in for that flow:
//!
//! * [`Circuit`] — a validated gate-level IR with primary inputs/outputs,
//!   combinational gates and D flip-flops;
//! * [`CircuitBuilder`] — ergonomic construction with name management;
//! * [`bench`] — a reader/writer for the ISCAS-89 `.bench` format, so real
//!   benchmark files can be dropped in unchanged;
//! * [`topo`] — topological ordering and levelization of the combinational
//!   core (the basis of simulation and CNF encoding);
//! * [`schedule`] — the precomputed levelized gate schedule with a
//!   flattened fanin index, computed once per circuit and reused by every
//!   evaluation pass (scalar and 64-lane word-parallel alike);
//! * [`generator`] — a seeded synthetic sequential-circuit generator;
//! * [`profiles`] — generator profiles pinned to the post-synthesis
//!   scan-flop counts the paper reports for its ten benchmarks
//!   (see DESIGN.md §4 for why this substitution preserves behaviour).
//!
//! # Example
//!
//! ```
//! use netlist::{CircuitBuilder, GateKind};
//!
//! let mut b = CircuitBuilder::new("toy");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let g = b.gate(GateKind::Nand, &[a, bb], "g");
//! let q = b.dff("ff", g); // q is the flop output
//! let o = b.gate(GateKind::Xor, &[q, a], "o");
//! b.output(o);
//! let c = b.finish().unwrap();
//! assert_eq!(c.num_dffs(), 1);
//! assert_eq!(c.num_gates(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
mod circuit;
mod error;
mod gate;
pub mod generator;
pub mod profiles;
pub mod schedule;
pub mod topo;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, CircuitStats, Dff, Gate, NetId};
pub use error::NetlistError;
pub use gate::GateKind;
pub use schedule::{EvalSchedule, ScheduledOp};
