//! Generator profiles for the paper's ten benchmarks.
//!
//! Table II of the paper lists the post-synthesis scan-flop counts it
//! attacks (`# Scan flops` column); those numbers are pinned here exactly.
//! PI/PO counts follow the published benchmark interfaces; gate counts are
//! sized so the combinational cone is realistic while staying solvable on a
//! laptop (the paper used a 24-core Xeon; DESIGN.md §4 records this
//! substitution).

use crate::generator::GeneratorConfig;
use crate::Circuit;

/// Which benchmark family a profile imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// ISCAS-89 sequential benchmarks.
    Iscas89,
    /// ITC-99 sequential benchmarks.
    Itc99,
}

/// A named benchmark profile: interface sizes matching the paper plus a
/// deterministic base seed for circuit synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkProfile {
    /// Benchmark name as printed in the paper's tables.
    pub name: &'static str,
    /// Benchmark family.
    pub suite: Suite,
    /// Post-synthesis scan flop count (paper Table II column 2).
    pub scan_flops: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational gate budget.
    pub gates: usize,
}

/// The ten benchmarks of Table II, in the paper's row order.
pub const PAPER_BENCHMARKS: [BenchmarkProfile; 10] = [
    BenchmarkProfile {
        name: "s5378",
        suite: Suite::Iscas89,
        scan_flops: 160,
        inputs: 35,
        outputs: 49,
        gates: 1700,
    },
    BenchmarkProfile {
        name: "s13207",
        suite: Suite::Iscas89,
        scan_flops: 202,
        inputs: 62,
        outputs: 152,
        gates: 2100,
    },
    BenchmarkProfile {
        name: "s15850",
        suite: Suite::Iscas89,
        scan_flops: 442,
        inputs: 77,
        outputs: 150,
        gates: 2800,
    },
    BenchmarkProfile {
        name: "s38584",
        suite: Suite::Iscas89,
        scan_flops: 1233,
        inputs: 38,
        outputs: 304,
        gates: 6500,
    },
    BenchmarkProfile {
        name: "s38417",
        suite: Suite::Iscas89,
        scan_flops: 1564,
        inputs: 28,
        outputs: 106,
        gates: 7200,
    },
    BenchmarkProfile {
        name: "s35932",
        suite: Suite::Iscas89,
        scan_flops: 1728,
        inputs: 35,
        outputs: 320,
        gates: 6800,
    },
    BenchmarkProfile {
        name: "b20",
        suite: Suite::Itc99,
        scan_flops: 429,
        inputs: 32,
        outputs: 22,
        gates: 4200,
    },
    BenchmarkProfile {
        name: "b21",
        suite: Suite::Itc99,
        scan_flops: 429,
        inputs: 32,
        outputs: 22,
        gates: 4200,
    },
    BenchmarkProfile {
        name: "b22",
        suite: Suite::Itc99,
        scan_flops: 611,
        inputs: 32,
        outputs: 22,
        gates: 5600,
    },
    BenchmarkProfile {
        name: "b17",
        suite: Suite::Itc99,
        scan_flops: 864,
        inputs: 37,
        outputs: 97,
        gates: 5200,
    },
];

/// The three largest benchmarks used for the key-size sweep of Table III.
pub const TABLE3_BENCHMARKS: [&str; 3] = ["s38584", "s38417", "s35932"];

/// Looks a profile up by its paper name.
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    PAPER_BENCHMARKS.iter().find(|p| p.name == name)
}

impl BenchmarkProfile {
    /// Builds the synthetic circuit for this profile.
    ///
    /// `variant` selects among deterministic circuit instances (the paper
    /// averages over 10 LFSR seeds on one netlist; a variant keeps the
    /// netlist fixed too unless you change it).
    pub fn build(&self, variant: u64) -> Circuit {
        self.config(variant).generate()
    }

    /// The generator configuration for this profile.
    pub fn config(&self, variant: u64) -> GeneratorConfig {
        // Fold the profile name into the seed so same-size profiles (b20 /
        // b21) still get distinct netlists.
        let name_hash: u64 = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        GeneratorConfig::new(
            self.name,
            self.inputs,
            self.outputs,
            self.scan_flops,
            self.gates,
        )
        .with_seed(name_hash ^ variant.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A proportionally shrunken copy (for quick CI-scale runs). Flop and
    /// gate counts scale by `factor`; interface sizes stay within sane
    /// bounds. `factor` is clamped to `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> BenchmarkProfile {
        let f = factor.clamp(1e-3, 1.0);
        let scale = |x: usize| ((x as f64 * f).round() as usize).max(4);
        BenchmarkProfile {
            name: self.name,
            suite: self.suite,
            scan_flops: scale(self.scan_flops),
            inputs: self.inputs.min(scale(self.inputs).max(4)),
            outputs: self.outputs.min(scale(self.outputs).max(4)),
            gates: scale(self.gates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flop_counts_match_table2() {
        // The exact column from the paper.
        let expected = [
            ("s5378", 160),
            ("s13207", 202),
            ("s15850", 442),
            ("s38584", 1233),
            ("s38417", 1564),
            ("s35932", 1728),
            ("b20", 429),
            ("b21", 429),
            ("b22", 611),
            ("b17", 864),
        ];
        for (name, flops) in expected {
            assert_eq!(by_name(name).unwrap().scan_flops, flops, "{name}");
        }
    }

    #[test]
    fn table3_benchmarks_are_the_three_largest() {
        let mut sorted: Vec<_> = PAPER_BENCHMARKS.iter().collect();
        sorted.sort_by_key(|p| std::cmp::Reverse(p.scan_flops));
        let top3: Vec<&str> = sorted[..3].iter().map(|p| p.name).collect();
        for name in TABLE3_BENCHMARKS {
            assert!(top3.contains(&name));
        }
    }

    #[test]
    fn build_produces_matching_flop_count() {
        let p = by_name("s5378").unwrap();
        let c = p.build(0);
        assert_eq!(c.num_dffs(), 160);
        assert_eq!(c.inputs().len(), 35);
        assert_eq!(c.outputs().len(), 49);
        c.validate().unwrap();
    }

    #[test]
    fn same_size_profiles_get_distinct_netlists() {
        let b20 = by_name("b20").unwrap().build(0);
        let b21 = by_name("b21").unwrap().build(0);
        assert_ne!(crate::bench::write(&b20), crate::bench::write(&b21));
    }

    #[test]
    fn variants_differ() {
        let p = by_name("s5378").unwrap();
        assert_ne!(
            crate::bench::write(&p.build(0)),
            crate::bench::write(&p.build(1))
        );
    }

    #[test]
    fn scaled_shrinks_but_keeps_name() {
        let p = by_name("s38417").unwrap();
        let s = p.scaled(0.1);
        assert_eq!(s.name, "s38417");
        assert_eq!(s.scan_flops, 156);
        assert!(s.gates < p.gates);
        let c = s.build(0);
        assert_eq!(c.num_dffs(), 156);
    }

    #[test]
    fn scaled_clamps_factor() {
        let p = by_name("s5378").unwrap();
        let s = p.scaled(7.0);
        assert_eq!(s.scan_flops, p.scan_flops);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("s9999").is_none());
    }
}
