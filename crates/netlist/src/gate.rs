//! Combinational gate kinds and their boolean semantics.

use std::fmt;

/// The combinational gate types of the ISCAS-89 `.bench` format.
///
/// `Const0`/`Const1` are not part of the original format but appear after
/// synthesis-style transformations (and in locked netlists), so the IR and
/// the writer support them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Identity of a single input.
    Buf,
    /// Negation of a single input.
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// Constant false.
    Const0,
    /// Constant true.
    Const1,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for iteration in tests and
    /// statistics).
    pub const ALL: [GateKind; 10] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// Evaluates the gate on its input values.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for the kind (see
    /// [`GateKind::arity_ok`]).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity_ok(inputs.len()),
            "{self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// Whether `n` inputs is a legal arity for this gate kind.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::Const0 | GateKind::Const1 => n == 0,
            _ => n >= 1,
        }
    }

    /// The `.bench` keyword for this gate kind.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive). `BUF` is accepted as an
    /// alias of `BUFF`.
    pub fn from_bench_name(s: &str) -> Option<GateKind> {
        Some(match s.to_ascii_uppercase().as_str() {
            "BUFF" | "BUF" => GateKind::Buf,
            "NOT" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_inputs() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, table) in cases {
            for (i, expect) in table.iter().enumerate() {
                let a = i & 1 == 1;
                let b = i & 2 == 2;
                assert_eq!(kind.eval(&[a, b]), *expect, "{kind}({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Not.eval(&[false]));
    }

    #[test]
    fn constants() {
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
    }

    #[test]
    fn wide_gates() {
        assert!(GateKind::And.eval(&[true; 5]));
        assert!(!GateKind::And.eval(&[true, true, false, true]));
        assert!(GateKind::Xor.eval(&[true, true, true])); // odd parity
        assert!(!GateKind::Xnor.eval(&[true, true, true]));
        assert!(GateKind::Or.eval(&[false, false, true, false]));
    }

    #[test]
    fn arity_validation() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Const0.arity_ok(0));
        assert!(!GateKind::Const1.arity_ok(1));
        assert!(GateKind::And.arity_ok(1));
        assert!(GateKind::And.arity_ok(8));
        assert!(!GateKind::And.arity_ok(0));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn eval_bad_arity_panics() {
        GateKind::Not.eval(&[true, false]);
    }

    #[test]
    fn bench_name_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_bench_name(kind.bench_name()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_name("buf"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench_name("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::from_bench_name("DFF"), None); // DFFs are not gates
        assert_eq!(GateKind::from_bench_name("bogus"), None);
    }
}
