//! Error type for netlist construction, validation and parsing.

use std::fmt;

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net is used (as a gate/DFF input or primary output) but never driven.
    UndrivenNet {
        /// Name of the floating net.
        net: String,
    },
    /// The combinational core contains a cycle.
    CombinationalLoop {
        /// Name of one net on the cycle.
        net: String,
    },
    /// A gate was declared with an arity its kind does not allow.
    BadArity {
        /// Offending gate's output net name.
        net: String,
        /// Declared gate kind.
        kind: crate::GateKind,
        /// Number of inputs supplied.
        arity: usize,
    },
    /// Two nets share one name.
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A referenced name does not exist.
    UnknownName {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net `{net}` is never driven"),
            NetlistError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            NetlistError::BadArity { net, kind, arity } => {
                write!(f, "gate `{net}`: {kind} cannot take {arity} inputs")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate net name `{name}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UnknownName { name } => write!(f, "unknown net name `{name}`"),
        }
    }
}

impl std::error::Error for NetlistError {}
