//! Incremental circuit construction.

use std::collections::HashMap;

use crate::circuit::{Circuit, Dff, Driver, Gate, NetId};
use crate::{GateKind, NetlistError};

/// Builder for [`Circuit`] values.
///
/// The builder hands out [`NetId`]s as construction proceeds and performs
/// full validation (single drivers, no floating nets, no combinational
/// loops, legal arities) in [`CircuitBuilder::finish`].
///
/// # Example
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("half_adder");
/// let x = b.input("x");
/// let y = b.input("y");
/// let s = b.gate(GateKind::Xor, &[x, y], "sum");
/// let c = b.gate(GateKind::And, &[x, y], "carry");
/// b.output(s);
/// b.output(c);
/// let ha = b.finish().unwrap();
/// assert_eq!(ha.num_gates(), 2);
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    name: String,
    net_names: Vec<String>,
    name_index: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    /// Driver per net, `None` while still undriven.
    drivers: Vec<Option<Driver>>,
    errors: Vec<NetlistError>,
}

impl CircuitBuilder {
    /// Starts a new empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            net_names: Vec::new(),
            name_index: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            drivers: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Declares (or retrieves) a named net without driving it.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.name_index.get(&name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.net_names.push(name);
        self.drivers.push(None);
        id
    }

    /// Declares a fresh net with an auto-generated unique name.
    pub fn fresh_net(&mut self, prefix: &str) -> NetId {
        let mut i = self.net_names.len();
        loop {
            let candidate = format!("{prefix}{i}");
            if !self.name_index.contains_key(&candidate) {
                return self.net(candidate);
            }
            i += 1;
        }
    }

    /// Declares a primary input and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.net(name);
        self.drive(id, Driver::Input(self.inputs.len()));
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output. A net may be both an
    /// internal signal and an output; marking twice is idempotent.
    pub fn output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Adds a gate driving a freshly named output net and returns that net.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId], out_name: impl Into<String>) -> NetId {
        let out = self.net(out_name);
        self.gate_into(kind, inputs, out);
        out
    }

    /// Adds a gate driving an existing net.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], output: NetId) {
        if !kind.arity_ok(inputs.len()) {
            self.errors.push(NetlistError::BadArity {
                net: self.net_names[output.index()].clone(),
                kind,
                arity: inputs.len(),
            });
        }
        let idx = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        self.drive(output, Driver::Gate(idx));
    }

    /// Adds a D flip-flop with data input `d`; returns the Q (state) net,
    /// which is named `name`.
    pub fn dff(&mut self, name: impl Into<String>, d: NetId) -> NetId {
        let q = self.net(name);
        self.dff_into(d, q);
        q
    }

    /// Adds a D flip-flop whose Q pin is an existing net.
    pub fn dff_into(&mut self, d: NetId, q: NetId) {
        let idx = self.dffs.len();
        self.dffs.push(Dff { d, q });
        self.drive(q, Driver::Dff(idx));
    }

    /// Number of nets declared so far.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Looks up a declared net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    fn drive(&mut self, net: NetId, driver: Driver) {
        match &mut self.drivers[net.index()] {
            slot @ None => *slot = Some(driver),
            Some(_) => self.errors.push(NetlistError::MultipleDrivers {
                net: self.net_names[net.index()].clone(),
            }),
        }
    }

    /// Validates and produces the final [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns the first construction error (multiple drivers, bad arity),
    /// undriven net, or combinational loop.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // every net must be driven
        let mut drivers = Vec::with_capacity(self.drivers.len());
        for (i, d) in self.drivers.iter().enumerate() {
            match d {
                Some(d) => drivers.push(*d),
                None => {
                    return Err(NetlistError::UndrivenNet {
                        net: self.net_names[i].clone(),
                    })
                }
            }
        }
        let mut circuit = Circuit {
            name: self.name,
            net_names: self.net_names,
            name_index: self.name_index,
            inputs: self.inputs,
            outputs: self.outputs,
            gates: self.gates,
            dffs: self.dffs,
            drivers,
            topo_order: Vec::new(),
            schedule: crate::schedule::EvalSchedule::default(),
        };
        circuit.topo_order = crate::topo::topo_order(&circuit)?;
        circuit.schedule = crate::schedule::EvalSchedule::build(&circuit);
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_combinational() {
        let mut b = CircuitBuilder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate(GateKind::And, &[x, y], "z");
        b.output(z);
        let c = b.finish().unwrap();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.net_name(z), "z");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sequential_loop_through_dff_is_fine() {
        // q feeds its own D through an inverter: a toggle flop. Legal.
        let mut b = CircuitBuilder::new("toggle");
        let q = b.net("q");
        let nq = b.gate(GateKind::Not, &[q], "nq");
        b.dff_into(nq, q);
        b.output(q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut b = CircuitBuilder::new("loop");
        let a = b.net("a");
        let bnet = b.gate(GateKind::Not, &[a], "b");
        b.gate_into(GateKind::Not, &[bnet], a);
        b.output(a);
        let err = b.finish().unwrap_err();
        assert!(
            matches!(err, NetlistError::CombinationalLoop { .. }),
            "{err}"
        );
    }

    #[test]
    fn undriven_net_detected() {
        let mut b = CircuitBuilder::new("float");
        let x = b.input("x");
        let ghost = b.net("ghost");
        let z = b.gate(GateKind::And, &[x, ghost], "z");
        b.output(z);
        let err = b.finish().unwrap_err();
        assert_eq!(
            err,
            NetlistError::UndrivenNet {
                net: "ghost".into()
            }
        );
    }

    #[test]
    fn double_driver_detected() {
        let mut b = CircuitBuilder::new("dd");
        let x = b.input("x");
        let z = b.gate(GateKind::Buf, &[x], "z");
        b.gate_into(GateKind::Not, &[x], z);
        b.output(z);
        let err = b.finish().unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers { net: "z".into() });
    }

    #[test]
    fn bad_arity_detected() {
        let mut b = CircuitBuilder::new("arity");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate(GateKind::Not, &[x, y], "z");
        b.output(z);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetlistError::BadArity { arity: 2, .. }
        ));
    }

    #[test]
    fn net_is_idempotent_by_name() {
        let mut b = CircuitBuilder::new("n");
        let a1 = b.net("a");
        let a2 = b.net("a");
        assert_eq!(a1, a2);
        assert_eq!(b.num_nets(), 1);
    }

    #[test]
    fn fresh_net_avoids_collisions() {
        let mut b = CircuitBuilder::new("f");
        b.net("tmp1");
        let f = b.fresh_net("tmp");
        assert_ne!(b.find_net("tmp1"), Some(f));
    }

    #[test]
    fn output_marking_idempotent() {
        let mut b = CircuitBuilder::new("o");
        let x = b.input("x");
        b.output(x);
        b.output(x);
        let c = b.finish().unwrap();
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = CircuitBuilder::new("t");
        let x = b.input("x");
        // build a chain z3 <- z2 <- z1 <- x declared in reverse order
        let z1 = b.net("z1");
        let z2 = b.net("z2");
        let z3 = b.gate(GateKind::Not, &[z2], "z3");
        b.gate_into(GateKind::Not, &[z1], z2);
        b.gate_into(GateKind::Not, &[x], z1);
        b.output(z3);
        let c = b.finish().unwrap();
        let order = c.topo_gates();
        let pos = |net: NetId| {
            order
                .iter()
                .position(|&gi| c.gates()[gi].output == net)
                .unwrap()
        };
        assert!(pos(z1) < pos(z2));
        assert!(pos(z2) < pos(z3));
    }

    #[test]
    fn dff_of_output_lookup() {
        let mut b = CircuitBuilder::new("d");
        let x = b.input("x");
        let q = b.dff("q", x);
        b.output(q);
        let c = b.finish().unwrap();
        assert_eq!(c.dff_of_output(q), Some(0));
        assert!(c.is_dff_output(q));
        assert!(!c.is_dff_output(x));
        assert!(c.is_input(x));
    }

    #[test]
    fn fanin_cone_stops_at_state() {
        let mut b = CircuitBuilder::new("cone");
        let x = b.input("x");
        let q = b.dff("q", x);
        let y = b.gate(GateKind::And, &[q, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let cone = c.fanin_cone(&[y]);
        // cone = {y, q, x} — does not cross the flop into x-again
        assert_eq!(cone.len(), 3);
    }
}
