//! Precomputed levelized evaluation schedule with a flattened fanin index.
//!
//! Simulators walk the combinational core once per pattern (or once per
//! 64-pattern word in the packed path), so the order of gate visits and
//! the location of each gate's fanin net indices are *loop-invariant*
//! across evaluations. This module computes them once, at circuit
//! construction:
//!
//! * gates are sorted by logic level (a valid topological order in which
//!   every gate of level `l` depends only on levels `< l`, so a future
//!   multi-threaded evaluator can sweep each level in parallel);
//! * every gate's fanin [`NetId`]s are flattened into one contiguous
//!   `u32` array, replacing the per-gate `Vec<NetId>` pointer chase with a
//!   single cache-friendly slice walk.
//!
//! The schedule is stored inside [`Circuit`] and shared by the scalar and
//! word-parallel evaluators in the `sim` crate (DESIGN.md §5). It is
//! strictly read-only after construction — `sim`'s multi-core fan-out
//! hands one `&EvalSchedule` to every worker thread, so `EvalSchedule`
//! (and `Circuit` around it) must stay `Send + Sync` with no interior
//! mutability; a test below pins that contract.

use crate::{Circuit, GateKind};

/// One gate occurrence in evaluation order.
///
/// `output` and the fanin entries are dense net indices
/// ([`NetId::index`](crate::NetId::index)), ready to index a per-net value
/// array without going through `NetId` wrappers in the inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Boolean function of the gate.
    pub kind: GateKind,
    /// Dense net index of the gate output.
    pub output: u32,
    /// Start of this gate's fanins in [`EvalSchedule::fanins`].
    pub fanin_start: u32,
    /// End (exclusive) of this gate's fanins in [`EvalSchedule::fanins`].
    pub fanin_end: u32,
}

/// The flattened, levelized gate schedule of one circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalSchedule {
    ops: Vec<ScheduledOp>,
    fanins: Vec<u32>,
    /// `level_starts[l]..level_starts[l+1]` indexes the ops of level `l+1`
    /// (gate levels start at 1; sources are level 0). Last entry is
    /// `ops.len()`.
    level_starts: Vec<u32>,
}

impl EvalSchedule {
    /// Builds the schedule for a validated circuit (called once from
    /// `CircuitBuilder::finish`).
    pub(crate) fn build(circuit: &Circuit) -> EvalSchedule {
        let levels = crate::topo::levelize(circuit);
        let mut order: Vec<usize> = (0..circuit.gates.len()).collect();
        // Stable sort by level keeps declaration order inside a level, so
        // the schedule is deterministic for a given circuit.
        order.sort_by_key(|&gi| levels[circuit.gates[gi].output.index()]);

        let total_fanins: usize = circuit.gates.iter().map(|g| g.inputs.len()).sum();
        let mut ops = Vec::with_capacity(order.len());
        let mut fanins = Vec::with_capacity(total_fanins);
        let mut level_starts = Vec::new();
        let mut current_level = 0usize;
        for &gi in &order {
            let gate = &circuit.gates[gi];
            let level = levels[gate.output.index()];
            while current_level < level {
                level_starts.push(ops.len() as u32);
                current_level += 1;
            }
            let fanin_start = fanins.len() as u32;
            fanins.extend(gate.inputs.iter().map(|n| n.index() as u32));
            ops.push(ScheduledOp {
                kind: gate.kind,
                output: gate.output.index() as u32,
                fanin_start,
                fanin_end: fanins.len() as u32,
            });
        }
        level_starts.push(ops.len() as u32);
        EvalSchedule {
            ops,
            fanins,
            level_starts,
        }
    }

    /// All gates in evaluation (level) order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// The flattened fanin net-index array; sliced per gate via
    /// [`EvalSchedule::fanins_of`].
    pub fn fanins(&self) -> &[u32] {
        &self.fanins
    }

    /// Fanin net indices of one scheduled gate.
    pub fn fanins_of(&self, op: &ScheduledOp) -> &[u32] {
        &self.fanins[op.fanin_start as usize..op.fanin_end as usize]
    }

    /// Number of combinational levels (0 for a gate-free circuit).
    pub fn num_levels(&self) -> usize {
        self.level_starts.len().saturating_sub(1)
    }

    /// The ops of level `level` (1-based: sources are level 0 and have no
    /// ops).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or greater than [`EvalSchedule::num_levels`].
    pub fn level_ops(&self, level: usize) -> &[ScheduledOp] {
        assert!(
            level >= 1 && level <= self.num_levels(),
            "level {level} out of range 1..={}",
            self.num_levels()
        );
        let start = self.level_starts[level - 1] as usize;
        let end = self.level_starts[level] as usize;
        &self.ops[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn diamond() -> Circuit {
        // level 1: a = NOT x, b = NOT y; level 2: z = AND(a, b)
        let mut b = CircuitBuilder::new("diamond");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.gate(GateKind::Not, &[x], "a");
        let bb = b.gate(GateKind::Not, &[y], "b");
        let z = b.gate(GateKind::And, &[a, bb], "z");
        b.output(z);
        b.finish().unwrap()
    }

    #[test]
    fn ops_cover_every_gate_once_in_level_order() {
        let c = diamond();
        let sched = c.schedule();
        assert_eq!(sched.ops().len(), c.num_gates());
        assert_eq!(sched.num_levels(), 2);
        assert_eq!(sched.level_ops(1).len(), 2);
        assert_eq!(sched.level_ops(2).len(), 1);
        // every fanin of a level-l gate was computed at a lower level
        let levels = crate::topo::levelize(&c);
        for op in sched.ops() {
            for &f in sched.fanins_of(op) {
                assert!(levels[f as usize] < levels[op.output as usize]);
            }
        }
    }

    #[test]
    fn fanins_match_gate_inputs() {
        let c = diamond();
        let sched = c.schedule();
        for op in sched.ops() {
            let gate = c
                .gates()
                .iter()
                .find(|g| g.output.index() == op.output as usize)
                .expect("op maps to a gate");
            let expect: Vec<u32> = gate.inputs.iter().map(|n| n.index() as u32).collect();
            assert_eq!(sched.fanins_of(op), expect.as_slice());
            assert_eq!(op.kind, gate.kind);
        }
    }

    #[test]
    fn gate_free_circuit_has_empty_schedule() {
        let mut b = CircuitBuilder::new("wire");
        let x = b.input("x");
        b.output(x);
        let c = b.finish().unwrap();
        assert!(c.schedule().ops().is_empty());
        assert_eq!(c.schedule().num_levels(), 0);
    }

    #[test]
    fn sparse_levels_are_handled() {
        // A chain creates one op per level; check level_starts bookkeeping.
        let mut b = CircuitBuilder::new("chain");
        let x = b.input("x");
        let mut prev = x;
        for i in 0..5 {
            prev = b.gate(GateKind::Not, &[prev], format!("n{i}"));
        }
        b.output(prev);
        let c = b.finish().unwrap();
        let sched = c.schedule();
        assert_eq!(sched.num_levels(), 5);
        for l in 1..=5 {
            assert_eq!(sched.level_ops(l).len(), 1, "level {l}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_zero_has_no_ops() {
        let c = diamond();
        let _ = c.schedule().level_ops(0);
    }

    #[test]
    fn schedule_and_circuit_are_shareable_across_threads() {
        // The multi-core evaluators hand `&Circuit` / `&EvalSchedule` to
        // scoped worker threads; adding interior mutability (Cell, Rc,
        // lazy caches) to either type would break this at a distance.
        fn shareable<T: Send + Sync>() {}
        shareable::<EvalSchedule>();
        shareable::<Circuit>();
        shareable::<ScheduledOp>();
    }
}
