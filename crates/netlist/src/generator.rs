//! Seeded synthetic sequential-circuit generation.
//!
//! The repository does not ship the original ISCAS-89 / ITC-99 netlists;
//! instead it generates random-but-structured sequential circuits whose
//! interface sizes (PIs, POs, flops, gate count) match the paper's
//! post-synthesis figures (see [`crate::profiles`]). Everything the attack
//! measures — chain length, key-gate placement, LFSR linearity, SAT
//! iteration behaviour — depends only on those parameters, so the
//! substitution preserves the experiment's shape (DESIGN.md §4).
//!
//! Generation is deterministic: the same [`GeneratorConfig`] (including
//! `seed`) always yields the same netlist, bit for bit.

use gf2::{Rng64, Xoshiro256};

use crate::{Circuit, CircuitBuilder, GateKind, NetId};

/// Parameters of a synthetic sequential circuit.
///
/// # Example
///
/// ```
/// use netlist::generator::GeneratorConfig;
///
/// let c = GeneratorConfig::new("demo", 8, 4, 16, 60).with_seed(7).generate();
/// assert_eq!(c.num_dffs(), 16);
/// assert_eq!(c.inputs().len(), 8);
/// assert_eq!(c.outputs().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs (≥ 1).
    pub num_inputs: usize,
    /// Number of primary outputs (≥ 1).
    pub num_outputs: usize,
    /// Number of D flip-flops.
    pub num_dffs: usize,
    /// Number of combinational gates; raised internally if too small to
    /// connect every input and flop.
    pub num_gates: usize,
    /// Maximum gate fan-in (≥ 2).
    pub max_fanin: usize,
    /// PRNG seed; same seed, same circuit.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a config with fan-in 4 and seed 0.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        num_dffs: usize,
        num_gates: usize,
    ) -> Self {
        GeneratorConfig {
            name: name.into(),
            num_inputs,
            num_outputs,
            num_dffs,
            num_gates,
            max_fanin: 4,
            seed: 0,
        }
    }

    /// Sets the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum fan-in.
    pub fn with_max_fanin(mut self, max_fanin: usize) -> Self {
        self.max_fanin = max_fanin.max(2);
        self
    }

    /// Generates the circuit.
    ///
    /// Structural guarantees, which the tests assert:
    ///
    /// * every primary input and every flop output feeds at least one gate;
    /// * every flop's D input is a gate output (states depend on logic);
    /// * the circuit passes full validation (acyclic, single drivers);
    /// * deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs == 0` or `num_outputs == 0`.
    pub fn generate(&self) -> Circuit {
        assert!(self.num_inputs > 0, "need at least one primary input");
        assert!(self.num_outputs > 0, "need at least one primary output");
        let mut rng = Xoshiro256::new(self.seed);
        let mut b = CircuitBuilder::new(self.name.clone());

        let pis: Vec<NetId> = (0..self.num_inputs)
            .map(|i| b.input(format!("pi{i}")))
            .collect();
        let qs: Vec<NetId> = (0..self.num_dffs)
            .map(|i| b.net(format!("ff{i}")))
            .collect();

        // Sources every gate may read. Grows as gates are created.
        let mut pool: Vec<NetId> = pis.iter().chain(qs.iter()).copied().collect();

        // Make sure every source is consumed: the first num_dffs +
        // num_inputs gates each take one designated source as their first
        // input.
        let must_use: Vec<NetId> = qs.iter().chain(pis.iter()).copied().collect();
        let num_gates = self.num_gates.max(must_use.len() + self.num_outputs);

        let mut gate_outputs: Vec<NetId> = Vec::with_capacity(num_gates);
        for gi in 0..num_gates {
            let kind = sample_kind(&mut rng);
            let fanin = if matches!(kind, GateKind::Not | GateKind::Buf) {
                1
            } else {
                // 2 + geometric-ish tail up to max_fanin
                let mut f = 2;
                while f < self.max_fanin && rng.gen_range(3) == 0 {
                    f += 1;
                }
                f
            };
            let mut inputs = Vec::with_capacity(fanin);
            if gi < must_use.len() {
                inputs.push(must_use[gi]);
            }
            while inputs.len() < fanin {
                // Recency bias: half the draws come from the most recent
                // quarter of the pool, giving non-trivial logic depth.
                let idx = if rng.gen_bool() && pool.len() > 4 {
                    pool.len() - 1 - rng.gen_index(pool.len() / 4)
                } else {
                    rng.gen_index(pool.len())
                };
                let cand = pool[idx];
                if !inputs.contains(&cand) {
                    inputs.push(cand);
                }
                // When the pool is tiny, duplicates are unavoidable; accept
                // a reduced fan-in instead of looping forever.
                if pool.len() <= fanin {
                    break;
                }
            }
            let kind = if inputs.len() == 1 && !kind.arity_ok(1) {
                GateKind::Buf
            } else {
                kind
            };
            let out = b.gate(kind, &inputs, format!("g{gi}"));
            gate_outputs.push(out);
            pool.push(out);
        }

        // Flop D inputs: draw from the later half of gate outputs so state
        // depends on real logic, not directly on a PI.
        let half = gate_outputs.len() / 2;
        for (i, &q) in qs.iter().enumerate() {
            let d = gate_outputs[half + rng.gen_index(gate_outputs.len() - half)];
            b.dff_into(d, q);
            let _ = i;
        }

        // Primary outputs: distinct late gate outputs where possible.
        let mut po_candidates: Vec<NetId> = gate_outputs.clone();
        rng.shuffle(&mut po_candidates);
        for i in 0..self.num_outputs {
            let net = po_candidates[i % po_candidates.len()];
            // `output` is idempotent; when num_outputs exceeds distinct
            // candidates we fall back to XORing two earlier picks to keep
            // the count exact.
            if i < po_candidates.len() {
                b.output(net);
            } else {
                let a = po_candidates[rng.gen_index(po_candidates.len())];
                let c = po_candidates[rng.gen_index(po_candidates.len())];
                let extra = b.gate(GateKind::Xor, &[a, c], format!("po_pad{i}"));
                b.output(extra);
            }
        }

        b.finish()
            .expect("generator construction cannot violate invariants")
    }
}

fn sample_kind<R: Rng64>(rng: &mut R) -> GateKind {
    // Weighted mix approximating post-synthesis ISCAS-89 gate profiles.
    const TABLE: [(GateKind, u64); 8] = [
        (GateKind::Nand, 25),
        (GateKind::Nor, 14),
        (GateKind::And, 15),
        (GateKind::Or, 14),
        (GateKind::Xor, 8),
        (GateKind::Xnor, 4),
        (GateKind::Not, 15),
        (GateKind::Buf, 5),
    ];
    let total: u64 = TABLE.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(total);
    for (kind, w) in TABLE {
        if pick < w {
            return kind;
        }
        pick -= w;
    }
    unreachable!("weights cover the sampled range")
}

/// Hand-written 8-flop circuit standing in for ISCAS-89 s208 in the
/// figure-1/figure-4 walkthroughs (the real s208 is a fractional divider
/// with 8 flops; only the flop count and interface shape matter for the
/// demonstration).
pub fn s208_like() -> Circuit {
    let mut b = CircuitBuilder::new("s208-like");
    let pis: Vec<NetId> = (0..10).map(|i| b.input(format!("pi{i}"))).collect();
    let qs: Vec<NetId> = (0..8).map(|i| b.net(format!("ff{i}"))).collect();
    // next-state: a twisted ring with input injection
    let mut ds = Vec::new();
    for i in 0..8 {
        let prev = qs[(i + 7) % 8];
        let inj = pis[i % 10];
        let t = b.gate(GateKind::Xor, &[prev, inj], format!("t{i}"));
        let u = b.gate(GateKind::Nand, &[t, pis[(i + 3) % 10]], format!("u{i}"));
        let d = b.gate(GateKind::Xor, &[u, qs[i]], format!("d{i}"));
        ds.push(d);
    }
    for (i, &d) in ds.iter().enumerate() {
        b.dff_into(d, qs[i]);
    }
    let o1 = b.gate(GateKind::Nor, &[qs[0], qs[3], qs[7]], "o1");
    b.output(o1);
    b.finish().expect("s208_like is statically correct")
}

/// An `n`-bit shift register (`q0 <- in`, `q{i} <- q{i-1}`), the simplest
/// possible scan-like structure; handy in unit tests.
pub fn shift_register(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(format!("shift{n}"));
    let din = b.input("din");
    let mut prev = din;
    for i in 0..n {
        prev = b.dff(format!("q{i}"), prev);
    }
    b.output(prev);
    b.finish().expect("shift register is statically correct")
}

/// An `n`-bit synchronous counter with ripple-carry increment logic;
/// exercises XOR/AND chains in tests.
pub fn counter(n: usize) -> Circuit {
    assert!(n >= 1, "counter needs at least one bit");
    let mut b = CircuitBuilder::new(format!("counter{n}"));
    let en = b.input("en");
    let qs: Vec<NetId> = (0..n).map(|i| b.net(format!("q{i}"))).collect();
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let d = b.gate(GateKind::Xor, &[q, carry], format!("d{i}"));
        b.dff_into(d, q);
        if i + 1 < n {
            carry = b.gate(GateKind::And, &[carry, q], format!("c{i}"));
        }
    }
    let msb = qs[n - 1];
    b.output(msb);
    b.finish().expect("counter is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::new("d", 6, 3, 10, 50).with_seed(11);
        let c1 = cfg.generate();
        let c2 = cfg.generate();
        assert_eq!(crate::bench::write(&c1), crate::bench::write(&c2));
        let c3 = cfg.clone().with_seed(12).generate();
        assert_ne!(crate::bench::write(&c1), crate::bench::write(&c3));
    }

    #[test]
    fn interface_sizes_match_config() {
        let c = GeneratorConfig::new("i", 9, 5, 17, 80)
            .with_seed(3)
            .generate();
        assert_eq!(c.inputs().len(), 9);
        assert_eq!(c.outputs().len(), 5);
        assert_eq!(c.num_dffs(), 17);
        assert!(c.num_gates() >= 80);
    }

    #[test]
    fn all_sources_are_consumed() {
        let c = GeneratorConfig::new("s", 7, 2, 12, 60)
            .with_seed(5)
            .generate();
        let mut used = vec![false; c.num_nets()];
        for g in c.gates() {
            for inp in &g.inputs {
                used[inp.index()] = true;
            }
        }
        for dff in c.dffs() {
            used[dff.d.index()] = true;
        }
        for &pi in c.inputs() {
            assert!(used[pi.index()], "unused primary input");
        }
        for dff in c.dffs() {
            assert!(used[dff.q.index()], "unused flop output");
        }
    }

    #[test]
    fn flop_inputs_are_gate_outputs() {
        let c = GeneratorConfig::new("f", 4, 2, 8, 40)
            .with_seed(9)
            .generate();
        for dff in c.dffs() {
            assert!(c.driving_gate(dff.d).is_some(), "D input must be logic");
        }
    }

    #[test]
    fn generated_circuits_validate() {
        for seed in 0..5 {
            let c = GeneratorConfig::new("v", 5, 4, 20, 100)
                .with_seed(seed)
                .generate();
            c.validate().expect("generated circuit must validate");
        }
    }

    #[test]
    fn gate_count_raised_when_too_small() {
        let c = GeneratorConfig::new("r", 10, 2, 10, 1)
            .with_seed(0)
            .generate();
        assert!(c.num_gates() >= 20, "gates raised to cover sources");
    }

    #[test]
    fn roundtrips_through_bench_format() {
        let c = GeneratorConfig::new("rt", 6, 3, 9, 45)
            .with_seed(2)
            .generate();
        let text = crate::bench::write(&c);
        let c2 = crate::bench::parse("rt", &text).unwrap();
        assert_eq!(c.num_gates(), c2.num_gates());
        assert_eq!(c.num_dffs(), c2.num_dffs());
    }

    #[test]
    fn s208_like_shape() {
        let c = s208_like();
        assert_eq!(c.num_dffs(), 8);
        assert_eq!(c.inputs().len(), 10);
        assert_eq!(c.outputs().len(), 1);
        c.validate().unwrap();
    }

    #[test]
    fn shift_register_shape() {
        let c = shift_register(5);
        assert_eq!(c.num_dffs(), 5);
        assert_eq!(c.num_gates(), 0);
        c.validate().unwrap();
    }

    #[test]
    fn counter_shape() {
        let c = counter(4);
        assert_eq!(c.num_dffs(), 4);
        c.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one primary input")]
    fn zero_inputs_panics() {
        GeneratorConfig::new("z", 0, 1, 1, 10).generate();
    }
}
