//! Topological ordering and levelization of the combinational core.
//!
//! DFFs cut the graph: a flop's Q pin is a *source* (like a primary input)
//! and its D pin is a *sink* (like a primary output). Only paths through
//! combinational gates count for ordering and loop detection.

use crate::circuit::{Circuit, Driver};
use crate::NetlistError;

/// Computes a topological order of gate indices (Kahn's algorithm).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] naming one net on a cycle if
/// the combinational core is cyclic.
pub fn topo_order(circuit: &Circuit) -> Result<Vec<usize>, NetlistError> {
    let n = circuit.gates.len();
    // in-degree = number of inputs driven by other gates
    let mut indeg = vec![0usize; n];
    // adjacency: gate -> gates that consume its output
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, gate) in circuit.gates.iter().enumerate() {
        for &inp in &gate.inputs {
            if let Driver::Gate(src) = circuit.drivers[inp.index()] {
                indeg[gi] += 1;
                consumers[src].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&g| indeg[g] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(g) = queue.pop() {
        order.push(g);
        for &c in &consumers[g] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != n {
        // find a gate still blocked => on (or downstream of) a cycle
        let blocked = (0..n)
            .find(|&g| indeg[g] > 0)
            .expect("some gate must remain blocked when order is incomplete");
        return Err(NetlistError::CombinationalLoop {
            net: circuit.net_name(circuit.gates[blocked].output).to_string(),
        });
    }
    Ok(order)
}

/// Computes the logic level of every net: inputs/flop outputs are level 0,
/// a gate's output is one more than its deepest input. Indexed by
/// [`NetId::index`](crate::NetId::index).
///
/// # Panics
///
/// Panics if the circuit's stored topological order is stale (cannot happen
/// for circuits built through [`CircuitBuilder`](crate::CircuitBuilder)).
pub fn levelize(circuit: &Circuit) -> Vec<usize> {
    let mut level = vec![0usize; circuit.num_nets()];
    for &gi in &circuit.topo_order {
        let gate = &circuit.gates[gi];
        let l = gate
            .inputs
            .iter()
            .map(|i| level[i.index()])
            .max()
            .unwrap_or(0);
        level[gate.output.index()] = l + 1;
    }
    level
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn levels_of_chain() {
        let mut b = CircuitBuilder::new("chain");
        let x = b.input("x");
        let a = b.gate(GateKind::Not, &[x], "a");
        let c = b.gate(GateKind::Not, &[a], "c");
        let d = b.gate(GateKind::Not, &[c], "d");
        b.output(d);
        let circ = b.finish().unwrap();
        let lv = super::levelize(&circ);
        assert_eq!(lv[x.index()], 0);
        assert_eq!(lv[a.index()], 1);
        assert_eq!(lv[c.index()], 2);
        assert_eq!(lv[d.index()], 3);
    }

    #[test]
    fn level_takes_max_of_inputs() {
        let mut b = CircuitBuilder::new("m");
        let x = b.input("x");
        let y = b.input("y");
        let deep = b.gate(GateKind::Not, &[x], "d1");
        let deep2 = b.gate(GateKind::Not, &[deep], "d2");
        let z = b.gate(GateKind::And, &[deep2, y], "z");
        b.output(z);
        let circ = b.finish().unwrap();
        let lv = super::levelize(&circ);
        assert_eq!(lv[z.index()], 3);
    }

    #[test]
    fn flop_outputs_are_sources() {
        let mut b = CircuitBuilder::new("ff");
        let q = b.net("q");
        let nq = b.gate(GateKind::Not, &[q], "nq");
        b.dff_into(nq, q);
        b.output(nq);
        let circ = b.finish().unwrap();
        let lv = super::levelize(&circ);
        assert_eq!(lv[q.index()], 0);
        assert_eq!(lv[nq.index()], 1);
    }

    #[test]
    fn empty_circuit_topo() {
        let mut b = CircuitBuilder::new("empty");
        let x = b.input("x");
        b.output(x);
        let circ = b.finish().unwrap();
        assert!(circ.topo_gates().is_empty());
        assert_eq!(super::levelize(&circ)[x.index()], 0);
    }
}
