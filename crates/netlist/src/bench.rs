//! Reader and writer for the ISCAS-89 `.bench` netlist format.
//!
//! The format the paper's benchmarks ship in:
//!
//! ```text
//! # s27 (toy example)
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G0, G14)
//! G14 = NOT(G5)
//! G17 = NOR(G14, G0)
//! ```
//!
//! `parse` accepts the classic keywords (`AND`, `NAND`, `OR`, `NOR`, `XOR`,
//! `XNOR`, `NOT`, `BUFF`, `DFF`) case-insensitively plus `CONST0`/`CONST1`
//! extensions; `write` emits a file that `parse` reads back to an
//! equivalent circuit (round-trip tested).

use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};

/// Parses a `.bench` netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a 1-based line number for syntax
/// errors, and the usual validation errors (undriven nets, loops, …) for
/// structurally broken netlists.
///
/// # Example
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = netlist::bench::parse("inv", src).unwrap();
/// assert_eq!(c.num_gates(), 1);
/// ```
pub fn parse(name: impl Into<String>, source: &str) -> Result<Circuit, NetlistError> {
    let mut b = CircuitBuilder::new(name);
    for (lineno, raw) in source.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut b, line).map_err(|message| NetlistError::Parse {
            line: lineno + 1,
            message,
        })?;
    }
    b.finish()
}

fn parse_line(b: &mut CircuitBuilder, line: &str) -> Result<(), String> {
    // Either `INPUT(x)` / `OUTPUT(x)` or `lhs = KIND(a, b, ...)`.
    if let Some(rest) = strip_keyword(line, "INPUT") {
        let name = parse_parens(rest)?;
        if name.len() != 1 {
            return Err("INPUT takes exactly one name".into());
        }
        b.input(name[0]);
        return Ok(());
    }
    if let Some(rest) = strip_keyword(line, "OUTPUT") {
        let name = parse_parens(rest)?;
        if name.len() != 1 {
            return Err("OUTPUT takes exactly one name".into());
        }
        let net = b.net(name[0]);
        b.output(net);
        return Ok(());
    }
    let Some(eq) = line.find('=') else {
        return Err(format!("expected `lhs = GATE(...)`, got `{line}`"));
    };
    let lhs = line[..eq].trim();
    if lhs.is_empty() {
        return Err("empty left-hand side".into());
    }
    let rhs = line[eq + 1..].trim();
    let Some(open) = rhs.find('(') else {
        return Err(format!(
            "expected `GATE(...)` on right-hand side, got `{rhs}`"
        ));
    };
    let kind_str = rhs[..open].trim();
    let args = parse_parens(&rhs[open..])?;
    let out = b.net(lhs);
    if kind_str.eq_ignore_ascii_case("DFF") {
        if args.len() != 1 {
            return Err("DFF takes exactly one input".into());
        }
        let d = b.net(args[0]);
        b.dff_into(d, out);
        return Ok(());
    }
    let Some(kind) = GateKind::from_bench_name(kind_str) else {
        return Err(format!("unknown gate kind `{kind_str}`"));
    };
    let inputs: Vec<_> = args.iter().map(|a| b.net(*a)).collect();
    b.gate_into(kind, &inputs, out);
    Ok(())
}

fn strip_keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let trimmed = line.trim_start();
    if trimmed.len() >= kw.len() && trimmed[..kw.len()].eq_ignore_ascii_case(kw) {
        let rest = trimmed[kw.len()..].trim_start();
        rest.starts_with('(').then_some(rest)
    } else {
        None
    }
}

/// Parses `"(a, b, c)"` (possibly with trailing junk-free whitespace) into
/// the list of comma-separated identifiers.
fn parse_parens(s: &str) -> Result<Vec<&str>, String> {
    let s = s.trim();
    if !s.starts_with('(') {
        return Err(format!("expected `(`, got `{s}`"));
    }
    let Some(close) = s.rfind(')') else {
        return Err("missing `)`".into());
    };
    if !s[close + 1..].trim().is_empty() {
        return Err(format!(
            "trailing characters after `)`: `{}`",
            &s[close + 1..]
        ));
    }
    let inner = &s[1..close];
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in inner.split(',') {
        let id = part.trim();
        if id.is_empty() {
            return Err("empty identifier in argument list".into());
        }
        if id.contains(|c: char| c.is_whitespace() || c == '(' || c == ')') {
            return Err(format!("bad identifier `{id}`"));
        }
        out.push(id);
    }
    Ok(out)
}

/// Serializes a circuit to `.bench` text.
///
/// Gates are emitted in topological order, flops first — the file parses
/// back into an equivalent circuit regardless, since the format is
/// order-insensitive.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} DFFs, {} gates",
        circuit.inputs().len(),
        circuit.outputs().len(),
        circuit.num_dffs(),
        circuit.num_gates()
    );
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net_name(i));
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net_name(o));
    }
    for dff in circuit.dffs() {
        let _ = writeln!(
            out,
            "{} = DFF({})",
            circuit.net_name(dff.q),
            circuit.net_name(dff.d)
        );
    }
    for &gi in circuit.topo_gates() {
        let gate = &circuit.gates()[gi];
        let args: Vec<&str> = gate.inputs.iter().map(|&n| circuit.net_name(n)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.net_name(gate.output),
            gate.kind.bench_name(),
            args.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
# a comment
INPUT(G0)
INPUT(G1)
OUTPUT(G17)

G5 = DFF(G10)
G10 = NAND(G0, G14)
G14 = NOT(G5)  # trailing comment
G17 = NOR(G14, G1)
";

    #[test]
    fn parse_toy() {
        let c = parse("toy", TOY).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 3);
        assert!(c.find_net("G14").is_some());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let c1 = parse("toy", TOY).unwrap();
        let text = write(&c1);
        let c2 = parse("toy", &text).unwrap();
        assert_eq!(c1.inputs().len(), c2.inputs().len());
        assert_eq!(c1.outputs().len(), c2.outputs().len());
        assert_eq!(c1.num_dffs(), c2.num_dffs());
        assert_eq!(c1.num_gates(), c2.num_gates());
        // same gate multiset by (kind, sorted input names, output name)
        let key = |c: &crate::Circuit| {
            let mut v: Vec<String> = c
                .gates()
                .iter()
                .map(|g| {
                    let mut ins: Vec<&str> = g.inputs.iter().map(|&n| c.net_name(n)).collect();
                    ins.sort_unstable();
                    format!("{}={}({})", c.net_name(g.output), g.kind, ins.join(","))
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&c1), key(&c2));
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\noutput(y)\ny = nand(a, a)\n";
        let c = parse("ci", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn whitespace_tolerance() {
        let src = "  INPUT ( a )\nOUTPUT(y)\n  y   =  NOT ( a )\n";
        // `INPUT ( a )` has a space before `(` — the classic format allows
        // `INPUT(a)`; we accept whitespace after keyword too.
        let c = parse("ws", src).unwrap();
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn error_has_line_number() {
        let src = "INPUT(a)\nGARBAGE LINE\n";
        let err = parse("bad", src).unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn unknown_gate_kind_rejected() {
        let src = "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
        assert!(matches!(
            parse("bad", src),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn dff_wrong_arity_rejected() {
        let src = "INPUT(a)\nq = DFF(a, a)\nOUTPUT(q)\n";
        assert!(parse("bad", src).is_err());
    }

    #[test]
    fn undriven_output_rejected() {
        let src = "INPUT(a)\nOUTPUT(nowhere)\n";
        assert!(matches!(
            parse("bad", src),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn empty_arg_list_only_for_consts() {
        let src = "OUTPUT(y)\ny = CONST1()\n";
        let c = parse("const", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn output_can_precede_driver() {
        let src = "OUTPUT(y)\nINPUT(a)\ny = BUFF(a)\n";
        assert!(parse("order", src).is_ok());
    }
}
