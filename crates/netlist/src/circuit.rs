//! The validated gate-level circuit IR.

use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError};

/// Identifier of a net (signal) inside one [`Circuit`].
///
/// Net ids are dense (`0..num_nets`), so per-net data can live in plain
/// vectors indexed by [`NetId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A combinational gate: `output = kind(inputs...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gate {
    /// Boolean function computed by the gate.
    pub kind: GateKind,
    /// Input nets, in declaration order.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A D flip-flop: on each clock edge, `q` takes the value of `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dff {
    /// Next-state (data) input net.
    pub d: NetId,
    /// State output net.
    pub q: NetId,
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Driver {
    /// Primary input with the given position in `Circuit::inputs`.
    Input(usize),
    /// Output of gate `gates[i]`.
    Gate(usize),
    /// Q pin of flop `dffs[i]`.
    Dff(usize),
}

/// A validated gate-level sequential circuit.
///
/// Invariants (checked at construction by [`CircuitBuilder::finish`]):
///
/// * every net has exactly one driver (primary input, gate output, or DFF Q);
/// * every gate input / DFF D / primary output is a driven net;
/// * gate arities are legal for their kinds;
/// * the combinational core (gates only; DFFs cut the graph) is acyclic.
///
/// [`CircuitBuilder::finish`]: crate::CircuitBuilder::finish
#[derive(Clone)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) net_names: Vec<String>,
    pub(crate) name_index: HashMap<String, NetId>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    pub(crate) drivers: Vec<Driver>,
    /// Gate indices in topological order (computed at validation).
    pub(crate) topo_order: Vec<usize>,
    /// Levelized flattened evaluation schedule (computed at validation).
    pub(crate) schedule: crate::schedule::EvalSchedule,
}

impl Circuit {
    /// The circuit's name (benchmark name for generated/parsed circuits).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of D flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The combinational gates (unordered; see [`Circuit::topo_gates`]).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flops, in declaration order. The scan chain uses this order
    /// unless a custom order is supplied.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Gate indices in a topological order of the combinational core
    /// (inputs and flop outputs are sources).
    pub fn topo_gates(&self) -> &[usize] {
        &self.topo_order
    }

    /// The precomputed levelized evaluation schedule: gates sorted by
    /// logic level with all fanin net indices flattened into one array.
    /// Computed once at construction; evaluators reuse it on every pass.
    pub fn schedule(&self) -> &crate::schedule::EvalSchedule {
        &self.schedule
    }

    /// The name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    /// The gate driving `net`, if any.
    pub fn driving_gate(&self, net: NetId) -> Option<&Gate> {
        match self.drivers[net.index()] {
            Driver::Gate(i) => Some(&self.gates[i]),
            _ => None,
        }
    }

    /// Whether `net` is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        matches!(self.drivers[net.index()], Driver::Input(_))
    }

    /// Whether `net` is a flop output (state bit).
    pub fn is_dff_output(&self, net: NetId) -> bool {
        matches!(self.drivers[net.index()], Driver::Dff(_))
    }

    /// Index of the flop whose Q pin is `net`, if any.
    pub fn dff_of_output(&self, net: NetId) -> Option<usize> {
        match self.drivers[net.index()] {
            Driver::Dff(i) => Some(i),
            _ => None,
        }
    }

    /// Summary statistics (gate counts by kind, depth, fan-in histogram).
    pub fn stats(&self) -> CircuitStats {
        let mut gates_by_kind = Vec::new();
        for kind in GateKind::ALL {
            let n = self.gates.iter().filter(|g| g.kind == kind).count();
            if n > 0 {
                gates_by_kind.push((kind, n));
            }
        }
        let levels = crate::topo::levelize(self);
        let depth = levels.iter().copied().max().unwrap_or(0);
        let max_fanin = self.gates.iter().map(|g| g.inputs.len()).max().unwrap_or(0);
        CircuitStats {
            name: self.name.clone(),
            num_inputs: self.inputs.len(),
            num_outputs: self.outputs.len(),
            num_dffs: self.dffs.len(),
            num_gates: self.gates.len(),
            num_nets: self.num_nets(),
            depth,
            max_fanin,
            gates_by_kind,
        }
    }

    /// The set of nets in the transitive fan-in cone of `roots`, including
    /// the roots themselves. The cone stops at primary inputs and flop
    /// outputs (sequential boundaries).
    pub fn fanin_cone(&self, roots: &[NetId]) -> Vec<NetId> {
        let mut seen = vec![false; self.num_nets()];
        let mut stack: Vec<NetId> = roots.to_vec();
        let mut cone = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            cone.push(n);
            if let Driver::Gate(i) = self.drivers[n.index()] {
                stack.extend(self.gates[i].inputs.iter().copied());
            }
        }
        cone.sort_unstable();
        cone
    }

    /// Checks all structural invariants; used by tests and after
    /// transformations. Construction through the builder guarantees these,
    /// so a failure indicates a bug.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        // arity check
        for g in &self.gates {
            if !g.kind.arity_ok(g.inputs.len()) {
                return Err(NetlistError::BadArity {
                    net: self.net_name(g.output).to_string(),
                    kind: g.kind,
                    arity: g.inputs.len(),
                });
            }
        }
        // acyclicity is re-checked through topo
        crate::topo::topo_order(self).map(|_| ())
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit({}: {} PI, {} PO, {} DFF, {} gates)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.dffs.len(),
            self.gates.len()
        )
    }
}

/// Summary statistics of a circuit; see [`Circuit::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of flip-flops.
    pub num_dffs: usize,
    /// Number of combinational gates.
    pub num_gates: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Combinational depth (levels).
    pub depth: usize,
    /// Largest gate fan-in.
    pub max_fanin: usize,
    /// Gate count per kind (only kinds that occur).
    pub gates_by_kind: Vec<(GateKind, usize)>,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PI, {} PO, {} DFF, {} gates, depth {}",
            self.name, self.num_inputs, self.num_outputs, self.num_dffs, self.num_gates, self.depth
        )?;
        for (kind, n) in &self.gates_by_kind {
            writeln!(f, "  {kind:<6} {n}")?;
        }
        Ok(())
    }
}
