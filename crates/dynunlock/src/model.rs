//! The affine session model: why EFF-Dyn collapses.
//!
//! The defense's key LFSR steps every cycle, so naively each shift edge is
//! masked by a different key. But the [`sim::ScanAccess`] contract makes
//! every query a fresh powered session, and power-on reset restarts the
//! LFSR from the same secret seed. With the session structure fixed (`n`
//! shift-in edges, `c` captures, `n` shift-out edges), the key bit applied
//! at any point of any session is a *fixed linear function of the seed* —
//! the paper's central observation. The whole dynamic lock collapses to
//!
//! ```text
//! response = F(pattern ⊕ α) ,  scan_out = capture(F) ⊕ β
//! ```
//!
//! where `α` (the load mask) and `β` (the unload mask) are per-position
//! XOR masks, each an explicit GF(2) linear form of the seed. This module
//! computes those forms with one [`lfsr::SymbolicLfsr`] walk.
//!
//! Downstream, the attack hands each form to the encoder as a parity over
//! the symbolic seed variables. Under the default native xor mode every
//! form becomes a single GF(2) row in the solver's xor engine — no
//! Tseitin chain — so the cost of a mask bit is independent of how many
//! seed bits it touches, and 64+-bit keys stay in reach.

use gf2::BitVec;
use lfsr::SymbolicLfsr;
use scanlock::LockSpec;

/// The affine masks of one session structure, as linear forms of the seed.
///
/// `alpha[p]` and `beta[p]` are coefficient rows of width
/// [`LockSpec::width`]; `row · seed` gives the concrete mask bit for chain
/// position `p` (see [`mask_values`](SessionMasks::mask_values)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMasks {
    /// Load mask: the state actually latched at position `p` is
    /// `pattern[p] ⊕ alpha[p]·seed`.
    pub alpha: Vec<BitVec>,
    /// Unload mask: the bit observed for position `p` is
    /// `captured[p] ⊕ beta[p]·seed`.
    pub beta: Vec<BitVec>,
}

impl SessionMasks {
    /// Evaluates both masks for a concrete seed.
    ///
    /// # Panics
    ///
    /// Panics if the seed width differs from the rows' width.
    pub fn mask_values(&self, seed: &BitVec) -> (Vec<bool>, Vec<bool>) {
        let a = self.alpha.iter().map(|row| row.dot(seed)).collect();
        let b = self.beta.iter().map(|row| row.dot(seed)).collect();
        (a, b)
    }
}

/// Derives the affine masks for one session structure.
///
/// Mirrors `scanlock`'s cycle convention exactly (the key applied at edge
/// `t` is `A^t · seed`; the register steps after every edge):
///
/// * the bit destined for position `p` enters cell 0 at edge `n-1-p` and
///   passes the key gate at position `q ≤ p` at edge `n-1-p+q`, so
///   `alpha[p] = Σ_{q ∈ gates, q ≤ p} row_{g(q)}(A^{n-1-p+q})`;
/// * the bit captured at position `p` passes the gate at position `q > p`
///   at edge `n+c+q-p-1` on its way out, so
///   `beta[p] = Σ_{q ∈ gates, q > p} row_{g(q)}(A^{n+c+q-p-1})`.
///
/// Capture edges contribute nothing (key gates sit on the scan path only)
/// but still advance the register, which is why `captures` shifts the
/// `beta` rows.
///
/// # Panics
///
/// Panics if `captures == 0` or a key gate lies beyond `num_cells`.
pub fn session_masks(spec: &LockSpec, num_cells: usize, captures: usize) -> SessionMasks {
    assert!(captures >= 1, "a session has at least one capture");
    let n = num_cells;
    if let Some(max) = spec.max_pos() {
        assert!(max < n, "key gate at position {max} past chain end");
    }
    let width = spec.width();
    let gates = spec.gates();

    // One symbolic walk over every edge of the session; key_rows[t][k] is
    // the seed-coefficient row of gate k's LFSR bit at edge t.
    let edges = 2 * n + captures;
    let mut sym = SymbolicLfsr::new(spec.taps().clone());
    let mut key_rows: Vec<Vec<BitVec>> = Vec::with_capacity(edges);
    for _ in 0..edges {
        key_rows.push(gates.iter().map(|g| sym.row(g.lfsr_bit).clone()).collect());
        sym.step();
    }

    let mut alpha = vec![BitVec::zeros(width); n];
    let mut beta = vec![BitVec::zeros(width); n];
    for (k, g) in gates.iter().enumerate() {
        let q = g.pos;
        for (p, slot) in alpha.iter_mut().enumerate().skip(q) {
            slot.xor_assign(&key_rows[n - 1 - p + q][k]);
        }
        for (p, slot) in beta.iter_mut().enumerate().take(q) {
            slot.xor_assign(&key_rows[n + captures + q - p - 1][k]);
        }
    }
    SessionMasks { alpha, beta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{Rng64, SplitMix64};
    use lfsr::TapSet;
    use netlist::generator::{s208_like, GeneratorConfig};
    use scanlock::LockedScanChip;
    use sim::{ScanAccess, ScanChain, ScanChip, ScanResponse};

    /// The affine prediction: mask the pattern with α, run the *honest*
    /// chip, mask the scan-out with β.
    fn affine_predict(
        circuit: &netlist::Circuit,
        chain: &ScanChain,
        masks: &SessionMasks,
        seed: &BitVec,
        pattern: &[bool],
        pis: &[bool],
        captures: usize,
    ) -> ScanResponse {
        let (a, b) = masks.mask_values(seed);
        let masked: Vec<bool> = pattern.iter().zip(&a).map(|(&x, &m)| x ^ m).collect();
        let mut honest = ScanChip::new(circuit, chain.clone());
        let resp = honest.query_captures(&masked, pis, captures);
        let scan_out = resp.scan_out.iter().zip(&b).map(|(&y, &m)| y ^ m).collect();
        ScanResponse {
            scan_out,
            po: resp.po,
        }
    }

    /// The load-bearing cross-check of the whole reproduction: the affine
    /// model must agree bit-for-bit with the cycle-accurate locked chip,
    /// over random specs, chains (shuffled included), captures, and seeds.
    #[test]
    fn affine_model_matches_cycle_accurate_chip() {
        let mut rng = SplitMix64::new(0xDA7E);
        for trial in 0..12u64 {
            let c = if trial % 3 == 0 {
                s208_like()
            } else {
                GeneratorConfig::new("affine", 4, 2, 6 + (trial as usize % 5), 40)
                    .with_seed(trial)
                    .generate()
            };
            let n = c.num_dffs();
            let chain = if trial % 2 == 0 {
                ScanChain::natural(n)
            } else {
                ScanChain::shuffled(n, &mut rng)
            };
            let width = 8 + (trial as usize % 3) * 4;
            let taps = TapSet::maximal(width).unwrap();
            let spec = scanlock::LockSpec::random(taps, n, 1 + rng.gen_index(n), &mut rng);
            let seed = spec.random_seed(&mut rng);
            let captures = 1 + rng.gen_index(3);
            let masks = session_masks(&spec, n, captures);
            let mut locked = LockedScanChip::new(&c, chain.clone(), spec, seed.clone());
            for _ in 0..6 {
                let pattern: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
                let pis: Vec<bool> = (0..c.inputs().len()).map(|_| rng.gen_bool()).collect();
                let actual = locked.query_captures(&pattern, &pis, captures);
                let predicted = affine_predict(&c, &chain, &masks, &seed, &pattern, &pis, captures);
                assert_eq!(actual, predicted, "trial {trial} diverged");
            }
        }
    }

    #[test]
    fn gate_free_positions_have_empty_masks() {
        // A single gate at position q: alpha is zero below q, beta is zero
        // at and above q.
        let taps = TapSet::maximal(8).unwrap();
        let spec = scanlock::LockSpec::new(
            taps,
            vec![scanlock::KeyGate {
                pos: 3,
                lfsr_bit: 0,
            }],
        )
        .unwrap();
        let masks = session_masks(&spec, 6, 1);
        for p in 0..3 {
            assert!(masks.alpha[p].is_zero(), "alpha[{p}] below the gate");
        }
        for p in 3..6 {
            assert!(!masks.alpha[p].is_zero(), "alpha[{p}] crosses the gate");
            assert!(masks.beta[p].is_zero(), "beta[{p}] at/above the gate");
        }
        for p in 0..3 {
            assert!(!masks.beta[p].is_zero(), "beta[{p}] shifts out through it");
        }
    }

    #[test]
    fn captures_shift_the_unload_mask() {
        // More captures step the LFSR further before shift-out: beta must
        // change, alpha must not.
        let taps = TapSet::maximal(8).unwrap();
        let mut rng = SplitMix64::new(3);
        let spec = scanlock::LockSpec::random(taps, 8, 4, &mut rng);
        let one = session_masks(&spec, 8, 1);
        let three = session_masks(&spec, 8, 3);
        assert_eq!(one.alpha, three.alpha);
        assert_ne!(one.beta, three.beta);
    }
}
