//! Fault-tolerant attack execution: the resumable DIP state machine.
//!
//! [`attack::unlock`](crate::attack::unlock) assumes an oracle that never
//! fails, a SAT call that always terminates, and a process that never
//! dies. This module drops all three assumptions. The DIP loop becomes an
//! explicit [`AttackState`] machine driven one [`step`](AttackState::step)
//! at a time against a [`FallibleScanAccess`] oracle, with:
//!
//! * **retry + exponential backoff + jitter** on transient oracle faults
//!   ([`RetryPolicy`]);
//! * **majority-vote replication** to repair bit-flip noise
//!   ([`RobustConfig::replication`]);
//! * **budgeted solving** — each SAT call runs under a
//!   [`Budget`], and `Unknown` answers leave the machine resumable;
//! * **checkpoint / resume** — [`AttackState::checkpoint`] serializes the
//!   run (DIP set, learnt clauses, recovery rows) into a hand-rolled,
//!   dependency-free text format keyed by an instance hash, and
//!   [`AttackState::resume`] rebuilds the machine from bytes, re-validating
//!   every recorded DIP against the live oracle first;
//! * **graceful degradation** — when a budget runs dry or the oracle
//!   becomes unrepairable, [`AttackState::run`] returns a
//!   [`PartialReport`] (recovered rank, nullity, per-seed-bit confidence)
//!   instead of an error.
//!
//! The legacy `unlock` entry point is now a thin wrapper over this
//! machine with a strict no-fault configuration, so both paths exercise
//! the same loop. See DESIGN.md §8 for the fault model, the checkpoint
//! grammar, and the degradation contract.

use std::fmt;
use std::time::{Duration, Instant};

use cnf::Encoder;
use gf2::{BitVec, LinSolver, Rng64, SplitMix64};
use lfsr::recover::SeedRecovery;
use netlist::Circuit;
use satsolver::{Budget, Lit, SolveResult, SolverStats};
use scanlock::{LockSpec, LockedScanChip};
use sim::{FallibleScanAccess, ScanAccess, ScanChain, ScanResponse};

use crate::attack::{locked_cone, seed_copy, AttackConfig, AttackError, SeedCopy, Unlock};
use crate::model::{session_masks, SessionMasks};

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// How transient oracle faults are retried: exponential backoff with
/// jitter, bounded per logical query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per logical query before the attack degrades
    /// (`0` = fail on the first fault).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff * 2^(k-1)`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Upper bound on a single backoff interval (pre-jitter).
    pub max_backoff: Duration,
    /// Jitter: a deterministic pseudo-random fraction of the backoff, up
    /// to this many parts-per-million of it, is added on top (decorrelates
    /// concurrent attackers hammering one bench).
    pub jitter_ppm: u32,
    /// Whether to actually sleep the backoff. Off by default: the wait is
    /// accounted in [`FaultStats::backoff`] so tests and benches stay
    /// fast; a live bench harness turns it on.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(1),
            jitter_ppm: 500_000, // up to +50%
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: the first fault degrades the attack. The policy
    /// used by the strict (legacy) entry point.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_ppm: 0,
            sleep: false,
        }
    }

    /// The backoff before retry `attempt` (1-based), jittered by `rng`.
    fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let base = self.base_backoff.as_nanos();
        let scaled = base.saturating_mul(1u128 << attempt.saturating_sub(1).min(63));
        let capped = scaled.min(self.max_backoff.as_nanos());
        let jitter = if self.jitter_ppm == 0 {
            0
        } else {
            capped * u128::from(rng.gen_range(u64::from(self.jitter_ppm) + 1)) / 1_000_000
        };
        let total = (capped + jitter).min(u128::from(u64::MAX));
        #[allow(clippy::cast_possible_truncation)] // bounded by u64::MAX above
        Duration::from_nanos(total as u64)
    }
}

/// Tuning for a fault-tolerant attack run.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// The underlying attack knobs (captures, DIP limit, verification,
    /// xor lowering, certification).
    pub base: AttackConfig,
    /// Times each logical oracle query is repeated for a per-bit majority
    /// vote. `1` disables voting; use an odd factor so votes cannot tie
    /// (ties resolve to `false`).
    pub replication: usize,
    /// Retry/backoff policy for transient faults.
    pub retry: RetryPolicy,
    /// Per-SAT-call work budget. Unlimited by default; when limited, a
    /// tripped call returns to the caller as [`Step::OutOfBudget`] with
    /// the solver warm.
    pub solve_budget: Budget,
    /// How many budget-exhausted SAT calls to tolerate across the run
    /// before degrading with [`DegradeReason::BudgetExhausted`]. Ignored
    /// while `solve_budget` is unlimited.
    pub max_budget_exhaustions: u32,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            base: AttackConfig::default(),
            replication: 1,
            retry: RetryPolicy::default(),
            solve_budget: Budget::new(),
            max_budget_exhaustions: 0,
        }
    }
}

impl RobustConfig {
    /// The no-fault-tolerance configuration the legacy
    /// [`unlock`](crate::attack::unlock) wrapper runs under: single
    /// queries, no retries, unlimited solving. Against a reliable oracle
    /// this reproduces the original attack exactly (same query count,
    /// same probes, same result).
    pub fn strict(base: AttackConfig) -> RobustConfig {
        RobustConfig {
            base,
            replication: 1,
            retry: RetryPolicy::none(),
            solve_budget: Budget::new(),
            max_budget_exhaustions: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// Fault-handling counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Oracle queries retried after a transient fault.
    pub retries: u64,
    /// Response bits repaired by majority vote (positions where at least
    /// one replica disagreed with the elected value).
    pub repaired_bits: u64,
    /// Total backoff accounted (and slept, when
    /// [`RetryPolicy::sleep`] is on).
    pub backoff: Duration,
}

/// Why an attack degraded to a [`PartialReport`] instead of finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeReason {
    /// The DIP loop hit [`AttackConfig::max_dips`] before converging.
    DipLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// Too many SAT calls ran out of budget
    /// ([`RobustConfig::max_budget_exhaustions`]).
    BudgetExhausted {
        /// Budget-exhausted calls when the run gave up.
        exhaustions: u32,
    },
    /// A logical oracle query kept faulting after every allowed retry.
    OracleUnavailable {
        /// The retry allowance that was exhausted.
        retries: u32,
    },
    /// Oracle responses contradicted the model — either the spec/chain
    /// don't describe the chip, or bit-flip noise slipped past the
    /// configured replication factor.
    Inconsistent,
    /// The converged seed failed a verification probe.
    VerificationFailed {
        /// Probes checked before the mismatch.
        probes_passed: usize,
    },
    /// Certification was requested and failed (solver soundness bug).
    Certification {
        /// Why the certificate could not be produced or checked.
        reason: String,
    },
}

impl DegradeReason {
    /// Maps degradation back onto the legacy error surface (used by the
    /// strict `unlock` wrapper, where fault-specific reasons cannot
    /// occur).
    pub(crate) fn into_attack_error(self) -> AttackError {
        match self {
            DegradeReason::DipLimit { limit } => AttackError::DipLimit { limit },
            DegradeReason::VerificationFailed { probes_passed } => {
                AttackError::VerificationFailed { probes_passed }
            }
            DegradeReason::Certification { reason } => AttackError::Certification { reason },
            // BudgetExhausted / OracleUnavailable cannot occur under
            // RobustConfig::strict; fold the remainder into the model
            // inconsistency bucket.
            _ => AttackError::Inconsistent,
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::DipLimit { limit } => {
                write!(f, "DIP loop did not converge within {limit} iterations")
            }
            DegradeReason::BudgetExhausted { exhaustions } => {
                write!(f, "solve budget exhausted {exhaustions} times")
            }
            DegradeReason::OracleUnavailable { retries } => {
                write!(f, "oracle still faulting after {retries} retries")
            }
            DegradeReason::Inconsistent => {
                write!(f, "oracle responses contradict the lock model")
            }
            DegradeReason::VerificationFailed { probes_passed } => {
                write!(f, "seed failed verification after {probes_passed} probes")
            }
            DegradeReason::Certification { reason } => {
                write!(f, "certification failed: {reason}")
            }
        }
    }
}

impl std::error::Error for DegradeReason {}

/// What a degraded run still knows — the graceful-degradation contract.
///
/// Every field is honest about partial knowledge: `rank`/`nullity`
/// describe the mask row space (a property of the lock, valid even
/// mid-loop), `bit_confidence` grades each seed bit, and
/// `candidate_seed` — when present — is consistent with every oracle
/// response observed so far, but not verified.
#[derive(Debug, Clone)]
pub struct PartialReport {
    /// Why the run degraded.
    pub reason: DegradeReason,
    /// DIP iterations completed before degradation.
    pub dip_iterations: usize,
    /// Oracle query attempts consumed (including retries and replicas).
    pub oracle_queries: usize,
    /// Rank of the session-mask linear system over the seed bits: how
    /// many seed dimensions convergence *would* determine.
    pub rank: usize,
    /// `width - rank`: log2 of the functionally equivalent seed class.
    pub nullity: usize,
    /// Per-seed-bit confidence in `candidate_seed`: `1.0` — pinned by the
    /// completed linear phase; `0.75` — determined by the mask row space
    /// and consistent with every DIP so far, but the loop had not
    /// converged; `0.5` — outside the row space (a pure guess).
    pub bit_confidence: Vec<f64>,
    /// The current best seed hypothesis, when the solver state still
    /// admitted one within budget.
    pub candidate_seed: Option<BitVec>,
    /// Fault-handling counters.
    pub faults: FaultStats,
    /// SAT solver work counters.
    pub solver_stats: SolverStats,
    /// Wall-clock time of the run up to degradation.
    pub total_time: Duration,
}

/// Result of [`AttackState::run`]: full success or a partial report —
/// never a bare error.
#[derive(Debug, Clone)]
pub enum RobustOutcome {
    /// The attack converged and verified.
    Unlocked {
        /// The recovered-seed result (same shape as the strict path).
        unlock: Unlock,
        /// Fault-handling counters for the run.
        faults: FaultStats,
    },
    /// The attack degraded; here is everything it still knows.
    Partial(PartialReport),
}

impl RobustOutcome {
    /// The fault counters, whichever way the run ended.
    pub fn faults(&self) -> &FaultStats {
        match self {
            RobustOutcome::Unlocked { faults, .. } => faults,
            RobustOutcome::Partial(report) => &report.faults,
        }
    }
}

/// What one [`AttackState::step`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Found a distinguishing input, queried the oracle, constrained both
    /// hypotheses. The loop is still open.
    Dip,
    /// No distinguishing input remains (and the linear phase ran): call
    /// [`AttackState::finish`] to verify and collect the result.
    Converged,
    /// The SAT call ran out of [`RobustConfig::solve_budget`]. The solver
    /// is warm: step again to keep searching, or stop here and take the
    /// [`AttackState::report`].
    OutOfBudget,
    /// The run degraded; further steps are no-ops. Take the
    /// [`AttackState::report`].
    Degraded(DegradeReason),
}

// ---------------------------------------------------------------------
// The state machine
// ---------------------------------------------------------------------

/// One DIP round the oracle answered: the stimulus and the (vote-repaired)
/// response both hypotheses were constrained to reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DipRecord {
    pattern: Vec<bool>,
    pis: Vec<bool>,
    response: ScanResponse,
}

/// State the machine carries once the miter has gone UNSAT.
#[derive(Debug, Clone)]
struct Converged {
    seed: BitVec,
    rank: usize,
    /// The recovery-matrix observations (mask row, observed value) the
    /// linear phase consumed — serialized into checkpoints and
    /// cross-checked on resume.
    rows: Vec<(BitVec, bool)>,
}

#[derive(Debug)]
enum Phase {
    Running,
    Converged(Converged),
    Degraded(DegradeReason),
}

/// The resumable DynUnlock attack.
///
/// Drive it with [`step`](AttackState::step) (checkpointing between steps
/// as desired) or let [`run`](AttackState::run) loop to an outcome. The
/// oracle is passed per call, not owned, so a checkpointed process can
/// die, restart, reconnect to the bench, and
/// [`resume`](AttackState::resume).
#[derive(Debug)]
pub struct AttackState<'a> {
    circuit: &'a Circuit,
    chain: &'a ScanChain,
    spec: &'a LockSpec,
    cfg: RobustConfig,
    masks: SessionMasks,
    enc: Encoder,
    copies: [SeedCopy; 2],
    x: Vec<Lit>,
    p: Vec<Lit>,
    act: Lit,
    dips: Vec<DipRecord>,
    phase: Phase,
    faults: FaultStats,
    jitter_rng: SplitMix64,
    start: Instant,
    solve_time: Duration,
    certify_time: Duration,
    oracle_queries: usize,
    exhaustions: u32,
    certificate: Option<proofcheck::Certificate>,
}

impl<'a> AttackState<'a> {
    /// Builds the miter and a fresh machine in the running phase.
    ///
    /// Construction is deterministic: the same `(circuit, chain, spec,
    /// captures, xor_mode)` always produces the same encoder variable
    /// numbering, which is what makes checkpointed learnt clauses
    /// replayable.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree (chain vs. circuit flops,
    /// `captures == 0`).
    pub fn new(
        circuit: &'a Circuit,
        chain: &'a ScanChain,
        spec: &'a LockSpec,
        cfg: RobustConfig,
    ) -> AttackState<'a> {
        let n = chain.len();
        assert_eq!(n, circuit.num_dffs(), "chain must cover all flops");
        assert!(cfg.base.captures > 0, "at least one capture cycle");
        let masks = session_masks(spec, n, cfg.base.captures);

        let mut enc = Encoder::with_mode(cfg.base.xor_mode);
        if cfg.base.certify {
            // Record every constraint verbatim from the start, so the
            // certificate re-derives convergence from the true inputs
            // rather than from this solver's own derived facts.
            enc.solver_mut().enable_input_mirror();
        }
        let copies = [
            seed_copy(&mut enc, spec.width(), &masks),
            seed_copy(&mut enc, spec.width(), &masks),
        ];

        // The miter: a shared symbolic stimulus, both hypotheses'
        // responses, and an activation literal demanding at least one
        // differing bit.
        let x = enc.fresh_many(n);
        let p = enc.fresh_many(circuit.inputs().len());
        let captures = cfg.base.captures;
        let (so1, po1) = locked_cone(&mut enc, circuit, chain, &copies[0], &x, &p, captures);
        let (so2, po2) = locked_cone(&mut enc, circuit, chain, &copies[1], &x, &p, captures);
        let act = enc.fresh();
        let mut miter = vec![!act];
        for (&a, &b) in so1.iter().zip(&so2).chain(po1.iter().zip(&po2)) {
            miter.push(enc.xor2(a, b));
        }
        enc.assert_clause(&miter);

        let jitter_rng = SplitMix64::new(cfg.base.rng_seed ^ 0x9E37_79B9_7F4A_7C15);
        AttackState {
            circuit,
            chain,
            spec,
            cfg,
            masks,
            enc,
            copies,
            x,
            p,
            act,
            dips: Vec::new(),
            phase: Phase::Running,
            faults: FaultStats::default(),
            jitter_rng,
            start: Instant::now(),
            solve_time: Duration::ZERO,
            certify_time: Duration::ZERO,
            oracle_queries: 0,
            exhaustions: 0,
            certificate: None,
        }
    }

    /// DIP rounds completed so far.
    pub fn dip_count(&self) -> usize {
        self.dips.len()
    }

    /// Oracle query attempts consumed so far (retries and replicas
    /// included).
    pub fn oracle_queries(&self) -> usize {
        self.oracle_queries
    }

    /// Fault-handling counters so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.faults
    }

    /// SAT solver work counters so far.
    pub fn solver_stats(&self) -> SolverStats {
        *self.enc.solver().stats()
    }

    /// Whether the machine has left the running phase (converged or
    /// degraded).
    pub fn is_terminal(&self) -> bool {
        !matches!(self.phase, Phase::Running)
    }

    fn degrade(&mut self, reason: DegradeReason) -> Step {
        self.phase = Phase::Degraded(reason.clone());
        Step::Degraded(reason)
    }

    // -----------------------------------------------------------------
    // Fault-tolerant querying
    // -----------------------------------------------------------------

    /// One logical query with retry + backoff: attempts until the oracle
    /// answers or the retry allowance runs out.
    fn query_retry<O: FallibleScanAccess>(
        &mut self,
        oracle: &mut O,
        pattern: &[bool],
        pis: &[bool],
    ) -> Result<ScanResponse, DegradeReason> {
        let captures = self.cfg.base.captures;
        let mut attempt = 0u32;
        loop {
            self.oracle_queries += 1;
            match oracle.try_query_captures(pattern, pis, captures) {
                Ok(resp) => return Ok(resp),
                Err(_) if attempt < self.cfg.retry.max_retries => {
                    attempt += 1;
                    self.faults.retries += 1;
                    let wait = self.cfg.retry.backoff(attempt, &mut self.jitter_rng);
                    self.faults.backoff += wait;
                    if self.cfg.retry.sleep {
                        std::thread::sleep(wait);
                    }
                }
                Err(_) => {
                    return Err(DegradeReason::OracleUnavailable {
                        retries: self.cfg.retry.max_retries,
                    })
                }
            }
        }
    }

    /// One logical query with replication: `replication` retried sessions,
    /// then a per-bit majority vote. Bits where any replica dissented from
    /// the elected value count as repaired.
    fn query_voted<O: FallibleScanAccess>(
        &mut self,
        oracle: &mut O,
        pattern: &[bool],
        pis: &[bool],
    ) -> Result<ScanResponse, DegradeReason> {
        let r = self.cfg.replication.max(1);
        if r == 1 {
            return self.query_retry(oracle, pattern, pis);
        }
        let votes: Vec<ScanResponse> = (0..r)
            .map(|_| self.query_retry(oracle, pattern, pis))
            .collect::<Result<_, _>>()?;
        let elect = |read: &dyn Fn(&ScanResponse) -> &Vec<bool>, repaired: &mut u64| {
            let len = read(&votes[0]).len();
            (0..len)
                .map(|i| {
                    let ones = votes.iter().filter(|v| read(v)[i]).count();
                    let win = 2 * ones > r;
                    let dissent = if win { r - ones } else { ones };
                    *repaired += dissent as u64;
                    win
                })
                .collect::<Vec<bool>>()
        };
        let mut repaired = 0u64;
        let scan_out = elect(&|v: &ScanResponse| &v.scan_out, &mut repaired);
        let po = elect(&|v: &ScanResponse| &v.po, &mut repaired);
        self.faults.repaired_bits += repaired;
        Ok(ScanResponse { scan_out, po })
    }

    // -----------------------------------------------------------------
    // The loop
    // -----------------------------------------------------------------

    /// Asserts one recorded DIP response onto both hypotheses. `false`
    /// means the solver found the response inconsistent with the model.
    fn constrain(&mut self, record: &DipRecord) -> bool {
        let x_const: Vec<Lit> = record
            .pattern
            .iter()
            .map(|&v| self.enc.constant(v))
            .collect();
        let p_const: Vec<Lit> = record.pis.iter().map(|&v| self.enc.constant(v)).collect();
        for copy in &self.copies {
            let (so, po) = locked_cone(
                &mut self.enc,
                self.circuit,
                self.chain,
                copy,
                &x_const,
                &p_const,
                self.cfg.base.captures,
            );
            let resp = &record.response;
            for (&lit, &val) in so.iter().zip(&resp.scan_out).chain(po.iter().zip(&resp.po)) {
                if !self.enc.assert_lit(if val { lit } else { !lit }) {
                    return false;
                }
            }
        }
        true
    }

    /// Advances the machine by one decision: one SAT call plus, when a
    /// distinguishing input exists, one (voted, retried) oracle round.
    pub fn step<O: FallibleScanAccess>(&mut self, oracle: &mut O) -> Step {
        match &self.phase {
            Phase::Converged(_) => return Step::Converged,
            Phase::Degraded(reason) => return Step::Degraded(reason.clone()),
            Phase::Running => {}
        }

        let act = self.act;
        let t0 = Instant::now();
        let res = self
            .enc
            .solver_mut()
            .solve_limited(&[act], &self.cfg.solve_budget);
        self.solve_time += t0.elapsed();
        match res {
            SolveResult::Unknown => {
                self.exhaustions += 1;
                if self.exhaustions > self.cfg.max_budget_exhaustions {
                    self.degrade(DegradeReason::BudgetExhausted {
                        exhaustions: self.exhaustions,
                    })
                } else {
                    Step::OutOfBudget
                }
            }
            SolveResult::Unsat => match self.converge() {
                Ok(()) => Step::Converged,
                Err(reason) => self.degrade(reason),
            },
            SolveResult::Sat => {
                if self.dips.len() == self.cfg.base.max_dips {
                    return self.degrade(DegradeReason::DipLimit {
                        limit: self.cfg.base.max_dips,
                    });
                }
                // Extract the distinguishing stimulus and ask the chip.
                let read =
                    |enc: &Encoder, lit: Lit| enc.solver().lit_model_value(lit).unwrap_or(false);
                let dip_x: Vec<bool> = self.x.iter().map(|&l| read(&self.enc, l)).collect();
                let dip_p: Vec<bool> = self.p.iter().map(|&l| read(&self.enc, l)).collect();
                let response = match self.query_voted(oracle, &dip_x, &dip_p) {
                    Ok(resp) => resp,
                    Err(reason) => return self.degrade(reason),
                };
                let record = DipRecord {
                    pattern: dip_x,
                    pis: dip_p,
                    response,
                };
                if !self.constrain(&record) {
                    return self.degrade(DegradeReason::Inconsistent);
                }
                self.dips.push(record);
                Step::Dip
            }
        }
    }

    /// Transition out of the DIP loop: certify (optionally), materialize
    /// a model seed, and run the linear phase.
    fn converge(&mut self) -> Result<(), DegradeReason> {
        // Certification: the convergence claim is exactly "the miter
        // under the activation literal is UNSAT". Take the verbatim input
        // mirror, pin the activation unit, and make a fresh proof-logging
        // solver re-derive and *prove* that answer; the independent
        // checker then verifies the certificate. A failure here is a
        // solver soundness bug, not an attack failure.
        if self.cfg.base.certify {
            let t0 = Instant::now();
            let mut closed = self
                .enc
                .solver()
                .input_mirror()
                .expect("mirror enabled at attack start")
                .clone();
            closed.add_clause(vec![self.act]);
            match proofcheck::certify_unsat(&closed) {
                Ok(cert) => self.certificate = Some(cert),
                Err(e) => {
                    return Err(DegradeReason::Certification {
                        reason: e.to_string(),
                    })
                }
            }
            self.certify_time = t0.elapsed();
        }

        // No distinguishing input remains: every seed consistent with the
        // observations is functionally equivalent. Materialize one.
        let t0 = Instant::now();
        let res = self
            .enc
            .solver_mut()
            .solve_limited(&[], &self.cfg.solve_budget);
        self.solve_time += t0.elapsed();
        match res {
            SolveResult::Sat => {}
            SolveResult::Unsat => return Err(DegradeReason::Inconsistent),
            SolveResult::Unknown => {
                self.exhaustions += 1;
                return Err(DegradeReason::BudgetExhausted {
                    exhaustions: self.exhaustions,
                });
            }
        }
        let model_seed = BitVec::from_bools(
            self.copies[0]
                .vars
                .iter()
                .map(|&l| self.enc.solver().lit_model_value(l).unwrap_or(false)),
        );

        // Linear phase: the model fixes every mask bit, and each mask bit
        // is a known linear form of the seed — Gaussian elimination does
        // the rest.
        let mut rec = SeedRecovery::new(self.spec.taps().clone());
        let mut rows: Vec<(BitVec, bool)> = Vec::new();
        let mask_lits = self.copies[0].alpha.iter().chain(&self.copies[0].beta);
        let mask_rows = self.masks.alpha.iter().chain(&self.masks.beta);
        for (&lit, row) in mask_lits.zip(mask_rows) {
            let value = self.enc.solver().lit_model_value(lit).unwrap_or(false);
            rows.push((row.clone(), value));
            if rec.observe_form(row.clone(), value).is_err() {
                return Err(DegradeReason::Inconsistent);
            }
        }
        let rank = rec.rank();
        let seed = rec.unique_seed().unwrap_or(model_seed);
        self.phase = Phase::Converged(Converged { seed, rank, rows });
        Ok(())
    }

    /// Verifies the converged seed against the oracle with random probe
    /// sessions and assembles the final result.
    ///
    /// # Panics
    ///
    /// Panics if the machine has not converged (drive it with
    /// [`step`](AttackState::step) or use [`run`](AttackState::run)).
    pub fn finish<O: FallibleScanAccess>(mut self, oracle: &mut O) -> RobustOutcome {
        let Phase::Converged(conv) = &self.phase else {
            panic!("finish() requires a converged state");
        };
        let conv = conv.clone();
        let n = self.chain.len();
        let num_pis = self.circuit.inputs().len();
        let captures = self.cfg.base.captures;

        // Verification: the recovered seed must reproduce the oracle.
        let mut relocked = LockedScanChip::new(
            self.circuit,
            self.chain.clone(),
            self.spec.clone(),
            conv.seed.clone(),
        );
        let mut rng = SplitMix64::new(self.cfg.base.rng_seed);
        for probe in 0..self.cfg.base.verify_queries {
            let pat: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
            let pis: Vec<bool> = (0..num_pis).map(|_| rng.gen_bool()).collect();
            let expect = match self.query_voted(oracle, &pat, &pis) {
                Ok(resp) => resp,
                Err(reason) => {
                    self.phase = Phase::Degraded(reason);
                    return RobustOutcome::Partial(self.report());
                }
            };
            if relocked.query_captures(&pat, &pis, captures) != expect {
                self.phase = Phase::Degraded(DegradeReason::VerificationFailed {
                    probes_passed: probe,
                });
                return RobustOutcome::Partial(self.report());
            }
        }

        let unlock = Unlock {
            seed: conv.seed,
            dip_iterations: self.dips.len(),
            oracle_queries: self.oracle_queries,
            solve_time: self.solve_time,
            total_time: self.start.elapsed(),
            rank: conv.rank,
            nullity: self.spec.width() - conv.rank,
            verified: self.cfg.base.verify_queries > 0,
            certificate: self.certificate,
            certify_time: self.certify_time,
            solver_stats: *self.enc.solver().stats(),
        };
        RobustOutcome::Unlocked {
            unlock,
            faults: self.faults,
        }
    }

    /// Drives the machine to an outcome: steps until convergence or
    /// degradation, then verifies or reports. Budget-exhausted steps keep
    /// going until [`RobustConfig::max_budget_exhaustions`] trips.
    pub fn run<O: FallibleScanAccess>(mut self, oracle: &mut O) -> RobustOutcome {
        loop {
            match self.step(oracle) {
                Step::Dip | Step::OutOfBudget => {}
                Step::Converged => return self.finish(oracle),
                Step::Degraded(_) => return RobustOutcome::Partial(self.report()),
            }
        }
    }

    /// The graceful-degradation report for the machine's current state:
    /// what has been established, what is still guessed, and why the run
    /// stopped. Meaningful in any phase (in the running phase the reason
    /// is reported as budget exhaustion so far).
    pub fn report(&mut self) -> PartialReport {
        let width = self.spec.width();
        let reason = match &self.phase {
            Phase::Degraded(r) => r.clone(),
            _ => DegradeReason::BudgetExhausted {
                exhaustions: self.exhaustions,
            },
        };

        // Rank/nullity of the mask row space: a property of the lock,
        // valid whether or not the loop converged (the values fed here
        // are placeholders — only the row space matters).
        let mut rowspace = LinSolver::new(width);
        for row in self.masks.alpha.iter().chain(&self.masks.beta) {
            let _ = rowspace.add_equation(row.clone(), false);
        }
        let rank = rowspace.rank();

        let (candidate, converged_pin): (Option<BitVec>, Option<SeedRecovery>) = match &self.phase {
            Phase::Converged(conv) => {
                let mut rec = SeedRecovery::new(self.spec.taps().clone());
                for (row, value) in &conv.rows {
                    let _ = rec.observe_form(row.clone(), *value);
                }
                (Some(conv.seed.clone()), Some(rec))
            }
            _ => {
                // Best current hypothesis: any seed consistent with every
                // response so far, if one is reachable within budget.
                let t0 = Instant::now();
                let res = self
                    .enc
                    .solver_mut()
                    .solve_limited(&[], &self.cfg.solve_budget);
                self.solve_time += t0.elapsed();
                let seed = (res == SolveResult::Sat).then(|| {
                    BitVec::from_bools(
                        self.copies[0]
                            .vars
                            .iter()
                            .map(|&l| self.enc.solver().lit_model_value(l).unwrap_or(false)),
                    )
                });
                (seed, None)
            }
        };

        let bit_confidence: Vec<f64> = (0..width)
            .map(|b| match &converged_pin {
                Some(rec) if rec.pinned_bit(b).is_some() => 1.0,
                _ if rowspace.pinned_value(b).is_some() => 0.75,
                _ => 0.5,
            })
            .collect();

        PartialReport {
            reason,
            dip_iterations: self.dips.len(),
            oracle_queries: self.oracle_queries,
            rank,
            nullity: width - rank,
            bit_confidence,
            candidate_seed: candidate,
            faults: self.faults,
            solver_stats: *self.enc.solver().stats(),
            total_time: self.start.elapsed(),
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// FNV-1a over the canonical instance description: circuit structure,
/// chain order, lock spec, capture count. Keys every checkpoint so a
/// resume against a different instance is rejected before any oracle
/// traffic.
fn instance_hash(circuit: &Circuit, chain: &ScanChain, spec: &LockSpec, captures: usize) -> u64 {
    let chain_order: Vec<usize> = (0..chain.len()).map(|pos| chain.dff_at(pos)).collect();
    let desc = format!(
        "{}|{:?}|{:?}|{:?}|{:?}|{chain_order:?}|{spec:?}|{captures}",
        circuit.name(),
        circuit.inputs(),
        circuit.outputs(),
        circuit.gates(),
        circuit.num_dffs(),
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in desc.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a checkpoint could not be parsed or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The bytes are not a well-formed `duckpt` document.
    Malformed {
        /// 1-based line where parsing failed.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The checkpoint was taken for a different instance (circuit, chain,
    /// spec, or captures differ).
    InstanceMismatch {
        /// Hash recorded in the checkpoint.
        expected: u64,
        /// Hash of the instance resume was called with.
        got: u64,
    },
    /// The live oracle answered a recorded DIP differently — the bench is
    /// not the chip this checkpoint came from (or noise exceeded the
    /// replication factor).
    OracleMismatch {
        /// Index of the first diverging DIP.
        dip: usize,
    },
    /// The oracle kept faulting while re-validating the checkpoint.
    OracleUnavailable,
    /// A recorded DIP or learnt clause contradicted the rebuilt model —
    /// the checkpoint is corrupt or was tampered with.
    Inconsistent,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed { line, msg } => {
                write!(f, "malformed checkpoint at line {line}: {msg}")
            }
            CheckpointError::InstanceMismatch { expected, got } => {
                write!(
                    f,
                    "checkpoint is for instance {expected:016x}, not {got:016x}"
                )
            }
            CheckpointError::OracleMismatch { dip } => {
                write!(f, "live oracle contradicts recorded DIP {dip}")
            }
            CheckpointError::OracleUnavailable => {
                write!(f, "oracle kept faulting during checkpoint re-validation")
            }
            CheckpointError::Inconsistent => {
                write!(f, "checkpoint contradicts the rebuilt model")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Phase recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CkptPhase {
    Running,
    Converged {
        seed: BitVec,
        rank: usize,
        rows: Vec<(BitVec, bool)>,
    },
}

/// A serialized attack snapshot: everything needed to rebuild an
/// [`AttackState`] except the instance itself (circuit, chain, spec) and
/// the oracle, which the resuming process supplies.
///
/// The byte format is a hand-rolled line-oriented text document (grammar
/// in DESIGN.md §8) — no serialization dependency, diffable, and stable
/// across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    instance: u64,
    width: usize,
    cells: usize,
    captures: usize,
    oracle_queries: usize,
    retries: u64,
    repaired_bits: u64,
    exhaustions: u32,
    num_vars: usize,
    dips: Vec<DipRecord>,
    learnts: Vec<Vec<Lit>>,
    phase: CkptPhase,
}

fn bits_to_str(bits: impl Iterator<Item = bool>) -> String {
    let s: String = bits.map(|b| if b { '1' } else { '0' }).collect();
    if s.is_empty() {
        "-".to_string()
    } else {
        s
    }
}

fn str_to_bits(s: &str) -> Option<Vec<bool>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

impl Checkpoint {
    /// The instance hash this checkpoint is keyed by.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// DIP rounds recorded.
    pub fn dip_count(&self) -> usize {
        self.dips.len()
    }

    /// Learnt clauses exported from the warm solver.
    pub fn learnt_count(&self) -> usize {
        self.learnts.len()
    }

    /// Serializes to the `duckpt 1` text format.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "duckpt 1");
        let _ = writeln!(out, "instance {:016x}", self.instance);
        let _ = writeln!(
            out,
            "shape width {} cells {} captures {}",
            self.width, self.cells, self.captures
        );
        let _ = writeln!(
            out,
            "counters queries {} retries {} repaired {} exhaustions {}",
            self.oracle_queries, self.retries, self.repaired_bits, self.exhaustions
        );
        for d in &self.dips {
            let _ = writeln!(
                out,
                "dip {} {} {} {}",
                bits_to_str(d.pattern.iter().copied()),
                bits_to_str(d.pis.iter().copied()),
                bits_to_str(d.response.scan_out.iter().copied()),
                bits_to_str(d.response.po.iter().copied()),
            );
        }
        let _ = writeln!(out, "vars {}", self.num_vars);
        for clause in &self.learnts {
            let _ = write!(out, "learnt");
            for l in clause {
                let _ = write!(out, " {}", l.to_dimacs());
            }
            let _ = writeln!(out);
        }
        match &self.phase {
            CkptPhase::Running => {
                let _ = writeln!(out, "phase running");
            }
            CkptPhase::Converged { seed, rank, rows } => {
                let _ = writeln!(out, "phase converged");
                for (row, value) in rows {
                    let _ = writeln!(
                        out,
                        "row {} {}",
                        bits_to_str(row.iter_bits()),
                        u8::from(*value)
                    );
                }
                let _ = writeln!(out, "seed {}", bits_to_str(seed.iter_bits()));
                let _ = writeln!(out, "rank {rank}");
            }
        }
        let _ = writeln!(out, "end duckpt");
        out.into_bytes()
    }

    /// Parses a `duckpt 1` document.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] with the offending line on any
    /// structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let text = std::str::from_utf8(bytes).map_err(|_| CheckpointError::Malformed {
            line: 1,
            msg: "not utf-8".into(),
        })?;
        let err = |line: usize, msg: &str| CheckpointError::Malformed {
            line,
            msg: msg.to_string(),
        };
        let mut instance = None;
        let mut shape: Option<(usize, usize, usize)> = None;
        let mut counters: Option<(usize, u64, u64, u32)> = None;
        let mut num_vars: Option<usize> = None;
        let mut dips = Vec::new();
        let mut learnts = Vec::new();
        let mut phase: Option<CkptPhase> = None;
        let mut rows: Vec<(BitVec, bool)> = Vec::new();
        let mut seed: Option<BitVec> = None;
        let mut rank: Option<usize> = None;
        let mut ended = false;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(err(lineno, "content after end marker"));
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = fields.collect();
            match tag {
                "duckpt" => {
                    if lineno != 1 || rest != ["1"] {
                        return Err(err(lineno, "expected header `duckpt 1`"));
                    }
                }
                "instance" => {
                    let [h] = rest[..] else {
                        return Err(err(lineno, "instance wants one hash"));
                    };
                    instance = Some(
                        u64::from_str_radix(h, 16).map_err(|_| err(lineno, "bad instance hash"))?,
                    );
                }
                "shape" => {
                    let ["width", w, "cells", n, "captures", c] = rest[..] else {
                        return Err(err(lineno, "bad shape line"));
                    };
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| err(lineno, "bad shape number"))
                    };
                    shape = Some((parse(w)?, parse(n)?, parse(c)?));
                }
                "counters" => {
                    let ["queries", q, "retries", r, "repaired", b, "exhaustions", e] = rest[..]
                    else {
                        return Err(err(lineno, "bad counters line"));
                    };
                    counters = Some((
                        q.parse().map_err(|_| err(lineno, "bad queries"))?,
                        r.parse().map_err(|_| err(lineno, "bad retries"))?,
                        b.parse().map_err(|_| err(lineno, "bad repaired"))?,
                        e.parse().map_err(|_| err(lineno, "bad exhaustions"))?,
                    ));
                }
                "dip" => {
                    let [pat, pis, so, po] = rest[..] else {
                        return Err(err(lineno, "dip wants four bit strings"));
                    };
                    let parse = |s: &str| str_to_bits(s).ok_or_else(|| err(lineno, "bad bits"));
                    dips.push(DipRecord {
                        pattern: parse(pat)?,
                        pis: parse(pis)?,
                        response: ScanResponse {
                            scan_out: parse(so)?,
                            po: parse(po)?,
                        },
                    });
                }
                "vars" => {
                    let [v] = rest[..] else {
                        return Err(err(lineno, "vars wants one count"));
                    };
                    num_vars = Some(v.parse().map_err(|_| err(lineno, "bad var count"))?);
                }
                "learnt" => {
                    let clause: Result<Vec<Lit>, _> = rest
                        .iter()
                        .map(|s| {
                            s.parse::<i64>()
                                .ok()
                                .filter(|&c| c != 0)
                                .map(Lit::from_dimacs)
                                .ok_or_else(|| err(lineno, "bad literal"))
                        })
                        .collect();
                    learnts.push(clause?);
                }
                "phase" => match rest[..] {
                    ["running"] => phase = Some(CkptPhase::Running),
                    ["converged"] => {
                        phase = Some(CkptPhase::Converged {
                            seed: BitVec::zeros(0),
                            rank: 0,
                            rows: Vec::new(),
                        });
                    }
                    _ => return Err(err(lineno, "phase must be running or converged")),
                },
                "row" => {
                    let [bits, value] = rest[..] else {
                        return Err(err(lineno, "row wants bits and a value"));
                    };
                    let row = str_to_bits(bits).ok_or_else(|| err(lineno, "bad row bits"))?;
                    let value = match value {
                        "0" => false,
                        "1" => true,
                        _ => return Err(err(lineno, "row value must be 0 or 1")),
                    };
                    rows.push((BitVec::from_bools(row), value));
                }
                "seed" => {
                    let [bits] = rest[..] else {
                        return Err(err(lineno, "seed wants one bit string"));
                    };
                    seed = Some(BitVec::from_bools(
                        str_to_bits(bits).ok_or_else(|| err(lineno, "bad seed bits"))?,
                    ));
                }
                "rank" => {
                    let [k] = rest[..] else {
                        return Err(err(lineno, "rank wants one number"));
                    };
                    rank = Some(k.parse().map_err(|_| err(lineno, "bad rank"))?);
                }
                "end" => {
                    if rest != ["duckpt"] {
                        return Err(err(lineno, "bad end marker"));
                    }
                    ended = true;
                }
                _ => return Err(err(lineno, "unknown tag")),
            }
        }
        if !ended {
            return Err(err(text.lines().count().max(1), "missing end marker"));
        }
        let need = |line: usize, what: &str| err(line, &format!("missing {what} section"));
        let instance = instance.ok_or_else(|| need(1, "instance"))?;
        let (width, cells, captures) = shape.ok_or_else(|| need(1, "shape"))?;
        let (oracle_queries, retries, repaired_bits, exhaustions) =
            counters.ok_or_else(|| need(1, "counters"))?;
        let num_vars = num_vars.ok_or_else(|| need(1, "vars"))?;
        let phase = match phase.ok_or_else(|| need(1, "phase"))? {
            CkptPhase::Running => CkptPhase::Running,
            CkptPhase::Converged { .. } => {
                let seed = seed.ok_or_else(|| need(1, "seed"))?;
                let rank = rank.ok_or_else(|| need(1, "rank"))?;
                if seed.len() != width || rank > width {
                    return Err(err(1, "seed/rank inconsistent with width"));
                }
                CkptPhase::Converged { seed, rank, rows }
            }
        };
        Ok(Checkpoint {
            instance,
            width,
            cells,
            captures,
            oracle_queries,
            retries,
            repaired_bits,
            exhaustions,
            num_vars,
            dips,
            learnts,
            phase,
        })
    }
}

impl AttackState<'_> {
    /// Snapshots the machine into a serializable [`Checkpoint`]: the DIP
    /// set, the warm solver's learnt clauses (exported via
    /// [`satsolver::Solver::learnt_clauses`]), the recovery-matrix rows
    /// when converged, and the run counters — keyed by the instance hash.
    /// Call between steps (the solver must be at decision level 0, which
    /// it always is there).
    pub fn checkpoint(&self) -> Checkpoint {
        let phase = match &self.phase {
            Phase::Converged(conv) => CkptPhase::Converged {
                seed: conv.seed.clone(),
                rank: conv.rank,
                rows: conv.rows.clone(),
            },
            // A degraded machine checkpoints as running: resuming it
            // elsewhere (bigger budget, healthier oracle) is the point.
            Phase::Running | Phase::Degraded(_) => CkptPhase::Running,
        };
        Checkpoint {
            instance: instance_hash(self.circuit, self.chain, self.spec, self.cfg.base.captures),
            width: self.spec.width(),
            cells: self.chain.len(),
            captures: self.cfg.base.captures,
            oracle_queries: self.oracle_queries,
            retries: self.faults.retries,
            repaired_bits: self.faults.repaired_bits,
            exhaustions: self.exhaustions,
            num_vars: self.enc.solver().num_vars(),
            dips: self.dips.clone(),
            learnts: self.enc.solver().learnt_clauses(),
            phase,
        }
    }
}

impl<'a> AttackState<'a> {
    /// Rebuilds a machine from a checkpoint, re-validating it against the
    /// live oracle before continuing.
    ///
    /// The encoder and miter are reconstructed deterministically (same
    /// construction order → same variable numbering), every recorded DIP
    /// is re-queried against `oracle` and compared to its recorded
    /// response, the DIP constraints are replayed, and the exported
    /// learnt clauses are injected (sound: CDCL learnts are implied by
    /// the formula alone, never by assumptions). A converged checkpoint
    /// additionally restores the linear-phase result after cross-checking
    /// the recorded recovery rows against the rebuilt mask forms.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::InstanceMismatch`] when the checkpoint belongs
    /// to a different instance, [`CheckpointError::OracleMismatch`] when
    /// the live oracle contradicts a recorded DIP,
    /// [`CheckpointError::OracleUnavailable`] when re-validation queries
    /// keep faulting, [`CheckpointError::Inconsistent`] when the recorded
    /// data contradicts the rebuilt model.
    pub fn resume<O: FallibleScanAccess>(
        circuit: &'a Circuit,
        chain: &'a ScanChain,
        spec: &'a LockSpec,
        cfg: RobustConfig,
        ckpt: &Checkpoint,
        oracle: &mut O,
    ) -> Result<AttackState<'a>, CheckpointError> {
        let got = instance_hash(circuit, chain, spec, cfg.base.captures);
        if got != ckpt.instance {
            return Err(CheckpointError::InstanceMismatch {
                expected: ckpt.instance,
                got,
            });
        }
        let mut state = AttackState::new(circuit, chain, spec, cfg);

        // Re-validate against the live bench: every recorded DIP must
        // reproduce (modulo the vote repairing fresh noise).
        for (i, record) in ckpt.dips.iter().enumerate() {
            let live = state
                .query_voted(oracle, &record.pattern, &record.pis)
                .map_err(|_| CheckpointError::OracleUnavailable)?;
            if live != record.response {
                return Err(CheckpointError::OracleMismatch { dip: i });
            }
        }

        // Replay the DIP constraints in order — deterministic encoding,
        // so the variable space ends up exactly where the checkpoint
        // left it.
        for record in &ckpt.dips {
            if !state.constrain(record) {
                return Err(CheckpointError::Inconsistent);
            }
        }
        if state.enc.solver().num_vars() != ckpt.num_vars {
            return Err(CheckpointError::Inconsistent);
        }

        // Warm-start: inject the exported learnt clauses. Sound because
        // CDCL learnts are implied by the formula alone; a clause the
        // rebuilt model refutes marks a corrupt checkpoint.
        for clause in &ckpt.learnts {
            if clause.iter().any(|l| l.var().index() >= ckpt.num_vars) {
                return Err(CheckpointError::Inconsistent);
            }
            if !state.enc.solver_mut().add_clause(clause) {
                return Err(CheckpointError::Inconsistent);
            }
        }

        state.dips = ckpt.dips.clone();
        state.oracle_queries += ckpt.oracle_queries;
        state.faults.retries += ckpt.retries;
        state.faults.repaired_bits += ckpt.repaired_bits;
        state.exhaustions = ckpt.exhaustions;

        if let CkptPhase::Converged { seed, rank, rows } = &ckpt.phase {
            // Cross-check the recorded recovery rows against the rebuilt
            // mask forms before trusting the recorded linear phase.
            let mask_rows: Vec<&BitVec> =
                state.masks.alpha.iter().chain(&state.masks.beta).collect();
            if rows.len() != mask_rows.len()
                || rows
                    .iter()
                    .zip(&mask_rows)
                    .any(|((row, _), mask)| row != *mask)
            {
                return Err(CheckpointError::Inconsistent);
            }
            let mut rec = SeedRecovery::new(spec.taps().clone());
            for (row, value) in rows {
                if rec.observe_form(row.clone(), *value).is_err() {
                    return Err(CheckpointError::Inconsistent);
                }
            }
            if rec.rank() != *rank {
                return Err(CheckpointError::Inconsistent);
            }
            state.phase = Phase::Converged(Converged {
                seed: seed.clone(),
                rank: *rank,
                rows: rows.clone(),
            });
        }
        Ok(state)
    }
}

/// Runs the fault-tolerant attack end to end: build, loop, verify or
/// degrade. Convenience wrapper over [`AttackState::new`] +
/// [`AttackState::run`] for callers who don't need stepwise control or
/// checkpoints.
///
/// # Panics
///
/// Panics if dimensions disagree (chain vs. circuit flops,
/// `captures == 0`).
pub fn unlock_robust<O: FallibleScanAccess>(
    circuit: &Circuit,
    chain: &ScanChain,
    spec: &LockSpec,
    oracle: &mut O,
    cfg: &RobustConfig,
) -> RobustOutcome {
    AttackState::new(circuit, chain, spec, cfg.clone()).run(oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::Xoshiro256;
    use lfsr::TapSet;
    use netlist::generator::s208_like;
    use sim::{FaultSpec, FaultyOracle, Reliable};

    struct Fixture {
        circuit: Circuit,
        chain: ScanChain,
        spec: LockSpec,
        secret: BitVec,
    }

    fn fixture(width: usize, gates: usize, seed: u64) -> Fixture {
        let circuit = s208_like();
        let chain = ScanChain::natural(8);
        let mut rng = Xoshiro256::new(seed);
        let taps = TapSet::maximal(width).unwrap();
        let spec = LockSpec::random(taps, chain.len(), gates, &mut rng);
        let secret = spec.random_seed(&mut rng);
        Fixture {
            circuit,
            chain,
            spec,
            secret,
        }
    }

    impl Fixture {
        fn oracle(&self) -> LockedScanChip<'_> {
            LockedScanChip::new(
                &self.circuit,
                self.chain.clone(),
                self.spec.clone(),
                self.secret.clone(),
            )
        }
    }

    #[test]
    fn strict_run_matches_legacy_unlock() {
        let f = fixture(12, 6, 0xAB);
        let cfg = RobustConfig::strict(AttackConfig::default());
        let outcome = unlock_robust(
            &f.circuit,
            &f.chain,
            &f.spec,
            &mut Reliable(f.oracle()),
            &cfg,
        );
        let RobustOutcome::Unlocked { unlock, faults } = outcome else {
            panic!("reliable oracle must unlock");
        };
        let legacy = crate::attack::unlock(
            &f.circuit,
            &f.chain,
            &f.spec,
            &mut f.oracle(),
            &AttackConfig::default(),
        )
        .unwrap();
        assert_eq!(unlock.seed, legacy.seed);
        assert_eq!(unlock.dip_iterations, legacy.dip_iterations);
        assert_eq!(unlock.oracle_queries, legacy.oracle_queries);
        assert_eq!(faults, FaultStats::default());
    }

    #[test]
    fn recovers_exact_seed_through_noise_and_transients() {
        let f = fixture(16, 8, 0xC1);
        let cfg = RobustConfig {
            replication: 3,
            ..RobustConfig::default()
        };
        let mut faulty = FaultyOracle::new(
            f.oracle(),
            FaultSpec::new(0xB0_15E5)
                .with_bit_flips(8_000)
                .with_transients(60_000),
        );
        let outcome = unlock_robust(&f.circuit, &f.chain, &f.spec, &mut faulty, &cfg);
        let RobustOutcome::Unlocked { unlock, faults } = outcome else {
            panic!("vote + retry must repair this schedule");
        };
        if unlock.nullity == 0 {
            assert_eq!(unlock.seed, f.secret);
        }
        assert!(faults.retries > 0 || faulty.stats().faults() == 0);
    }

    #[test]
    fn oracle_that_never_answers_degrades_gracefully() {
        let f = fixture(12, 6, 0xD2);
        let cfg = RobustConfig {
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            ..RobustConfig::default()
        };
        // 100% transient: every query fails, retries exhaust.
        let mut dead = FaultyOracle::new(f.oracle(), FaultSpec::new(9).with_transients(1_000_000));
        let outcome = unlock_robust(&f.circuit, &f.chain, &f.spec, &mut dead, &cfg);
        let RobustOutcome::Partial(report) = outcome else {
            panic!("a dead oracle cannot unlock");
        };
        assert_eq!(
            report.reason,
            DegradeReason::OracleUnavailable { retries: 2 }
        );
        assert_eq!(report.nullity, f.spec.width() - report.rank);
        assert_eq!(report.bit_confidence.len(), f.spec.width());
        assert!(report.faults.retries > 0);
        assert!(report.faults.backoff > Duration::ZERO);
    }

    #[test]
    fn budget_exhaustion_degrades_with_partial_report() {
        let f = fixture(16, 8, 0xE3);
        let cfg = RobustConfig {
            solve_budget: Budget::new().with_propagations(1),
            max_budget_exhaustions: 2,
            ..RobustConfig::default()
        };
        let outcome = unlock_robust(
            &f.circuit,
            &f.chain,
            &f.spec,
            &mut Reliable(f.oracle()),
            &cfg,
        );
        let RobustOutcome::Partial(report) = outcome else {
            panic!("a 1-propagation budget cannot converge");
        };
        assert!(matches!(
            report.reason,
            DegradeReason::BudgetExhausted { exhaustions: 3 }
        ));
        assert!(report.solver_stats.budget_exhaustions >= 3);
        // Confidence grades every seed bit, and never overstates.
        assert!(report
            .bit_confidence
            .iter()
            .all(|&c| (0.5..=1.0).contains(&c)));
    }

    #[test]
    fn stepwise_drive_with_mid_loop_checkpoint() {
        let f = fixture(16, 8, 0xF4);
        let cfg = RobustConfig::default();
        let mut oracle = Reliable(f.oracle());
        let mut state = AttackState::new(&f.circuit, &f.chain, &f.spec, cfg.clone());

        // Run two DIP rounds, checkpoint, then abandon this machine.
        let mut steps = 0;
        while state.dip_count() < 2 {
            match state.step(&mut oracle) {
                Step::Dip => {}
                Step::Converged => break, // tiny instance converged early
                other => panic!("unexpected step outcome: {other:?}"),
            }
            steps += 1;
            assert!(steps < 100);
        }
        let bytes = state.checkpoint().to_bytes();
        drop(state);

        // A different process: parse, resume, finish.
        let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        let resumed = AttackState::resume(&f.circuit, &f.chain, &f.spec, cfg, &ckpt, &mut oracle)
            .expect("same instance, same oracle");
        let RobustOutcome::Unlocked { unlock, .. } = resumed.run(&mut oracle) else {
            panic!("resumed attack must converge");
        };
        if unlock.nullity == 0 {
            assert_eq!(unlock.seed, f.secret);
        }
    }

    #[test]
    fn converged_checkpoint_resumes_without_resolving() {
        let f = fixture(12, 6, 0x1A);
        let cfg = RobustConfig::default();
        let mut oracle = Reliable(f.oracle());
        let mut state = AttackState::new(&f.circuit, &f.chain, &f.spec, cfg.clone());
        while !matches!(state.step(&mut oracle), Step::Converged) {}
        let bytes = state.checkpoint().to_bytes();
        let seed_before = match &state.phase {
            Phase::Converged(c) => c.seed.clone(),
            _ => unreachable!(),
        };

        let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        let resumed =
            AttackState::resume(&f.circuit, &f.chain, &f.spec, cfg, &ckpt, &mut oracle).unwrap();
        assert!(resumed.is_terminal());
        let RobustOutcome::Unlocked { unlock, .. } = resumed.finish(&mut oracle) else {
            panic!("converged checkpoint must verify");
        };
        assert_eq!(unlock.seed, seed_before);
    }

    #[test]
    fn checkpoint_rejects_wrong_instance() {
        let f = fixture(12, 6, 0x2B);
        let other = fixture(12, 6, 0x3C); // different spec → different hash
        let cfg = RobustConfig::default();
        let mut oracle = Reliable(f.oracle());
        let state = AttackState::new(&f.circuit, &f.chain, &f.spec, cfg.clone());
        let ckpt = Checkpoint::from_bytes(&state.checkpoint().to_bytes()).unwrap();
        let err = AttackState::resume(
            &other.circuit,
            &other.chain,
            &other.spec,
            cfg,
            &ckpt,
            &mut oracle,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::InstanceMismatch { .. }));
    }

    #[test]
    fn checkpoint_rejects_wrong_oracle() {
        let f = fixture(12, 6, 0x4D);
        let cfg = RobustConfig::default();
        let mut oracle = Reliable(f.oracle());
        let mut state = AttackState::new(&f.circuit, &f.chain, &f.spec, cfg.clone());
        // Gather at least one DIP so re-validation has something to check.
        while state.dip_count() < 1 {
            if matches!(state.step(&mut oracle), Step::Converged) {
                return; // degenerate instance; nothing to test
            }
        }
        let ckpt = Checkpoint::from_bytes(&state.checkpoint().to_bytes()).unwrap();
        // Same spec, different secret: the live oracle answers DIPs
        // differently (almost surely) and re-validation must notice.
        let mut rng = Xoshiro256::new(0x5E);
        let wrong_secret = f.spec.random_seed(&mut rng);
        assert_ne!(wrong_secret, f.secret);
        let mut wrong = Reliable(LockedScanChip::new(
            &f.circuit,
            f.chain.clone(),
            f.spec.clone(),
            wrong_secret,
        ));
        let res = AttackState::resume(&f.circuit, &f.chain, &f.spec, cfg, &ckpt, &mut wrong);
        assert!(matches!(res, Err(CheckpointError::OracleMismatch { .. })));
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let f = fixture(16, 8, 0x6E);
        let mut oracle = Reliable(f.oracle());
        let mut state = AttackState::new(&f.circuit, &f.chain, &f.spec, RobustConfig::default());
        for _ in 0..3 {
            if matches!(state.step(&mut oracle), Step::Converged) {
                break;
            }
        }
        let ckpt = state.checkpoint();
        let reparsed = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(ckpt, reparsed);
    }

    #[test]
    fn malformed_checkpoints_are_rejected_with_line_numbers() {
        for (doc, _why) in [
            ("", "empty"),
            ("duckpt 2\nend duckpt\n", "bad version"),
            ("duckpt 1\ninstance zz\nend duckpt\n", "bad hash"),
            ("duckpt 1\nfrobnicate\nend duckpt\n", "unknown tag"),
            ("duckpt 1\ninstance 00\n", "missing end"),
            ("duckpt 1\nend duckpt\ntrailing\n", "content after end"),
        ] {
            assert!(
                matches!(
                    Checkpoint::from_bytes(doc.as_bytes()),
                    Err(CheckpointError::Malformed { .. })
                ),
                "doc {doc:?} must be rejected"
            );
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_ppm: 0,
            sleep: false,
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(1));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(2));
        assert_eq!(policy.backoff(5, &mut rng), Duration::from_millis(16));
        assert_eq!(policy.backoff(20, &mut rng), Duration::from_millis(100));
        // Jitter stays within its ppm bound.
        let jittered = RetryPolicy {
            jitter_ppm: 500_000,
            ..policy
        };
        for attempt in 1..8 {
            let plain = policy.backoff(attempt, &mut rng);
            let j = jittered.backoff(attempt, &mut rng);
            assert!(j >= plain && j <= plain + plain / 2 + Duration::from_nanos(1));
        }
    }
}
