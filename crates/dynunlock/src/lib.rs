//! DynUnlock: breaking dynamically keyed scan-chain obfuscation
//! (Limaye & Sinanoglu, DATE 2020).
//!
//! EFF-Dyn masks scan traffic with a free-running key LFSR, hoping the
//! per-cycle key change defeats SAT attacks. It does not: because every
//! scan session power-on resets the LFSR to the same secret seed, the
//! masking collapses to *fixed affine masks* — each mask bit an explicit
//! GF(2) linear form of the seed ([`model`]). The attack ([`attack`])
//! then runs a standard SAT-attack DIP loop over a symbolic seed
//! hypothesis pair and finishes with plain Gaussian elimination:
//!
//! 1. [`model::session_masks`] — derive the load/unload masks `α`, `β` as
//!    linear forms of the seed via one symbolic LFSR walk;
//! 2. [`attack::unlock`] — find distinguishing input patterns with the
//!    incremental CDCL solver, query the oracle, constrain, repeat until
//!    no distinguishing input exists;
//! 3. hand the mask values to [`lfsr::recover::SeedRecovery`] and read
//!    the seed — a functionally equivalent member of the secret's
//!    equivalence class, and the secret itself whenever every mask bit
//!    is observable — then verify against the oracle with random probe
//!    sessions.
//!
//! The [`robust`] module lifts the same loop into a fault-tolerant,
//! resumable state machine: budgeted SAT calls, retry + backoff against
//! transient oracle faults, majority-vote repair of bit-flip noise,
//! checkpoint/resume across process death, and graceful degradation to a
//! [`robust::PartialReport`] when the attack cannot finish. The classic
//! [`attack::unlock`] entry point is a strict-configuration wrapper over
//! it.
//!
//! # Example
//!
//! ```
//! use dynunlock::attack::{unlock, AttackConfig};
//! use gf2::Xoshiro256;
//! use lfsr::TapSet;
//! use netlist::generator::s208_like;
//! use scanlock::{LockSpec, LockedScanChip};
//! use sim::ScanChain;
//!
//! let c = s208_like();
//! let chain = ScanChain::natural(c.num_dffs());
//! let mut rng = Xoshiro256::new(42);
//! let spec = LockSpec::random(TapSet::maximal(8).unwrap(), 8, 5, &mut rng);
//! let secret = spec.random_seed(&mut rng);
//! let mut oracle = LockedScanChip::new(&c, chain.clone(), spec.clone(), secret.clone());
//!
//! let result = unlock(&c, &chain, &spec, &mut oracle, &AttackConfig::default()).unwrap();
//! assert!(result.verified);
//! if result.nullity == 0 {
//!     assert_eq!(result.seed, secret); // exact on this instance
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod model;
pub mod robust;

pub use attack::{unlock, AttackConfig, AttackError, Unlock};
pub use model::{session_masks, SessionMasks};
pub use robust::{
    unlock_robust, AttackState, Checkpoint, CheckpointError, DegradeReason, FaultStats,
    PartialReport, RetryPolicy, RobustConfig, RobustOutcome, Step,
};
