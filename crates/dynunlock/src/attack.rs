//! The DIP loop and seed recovery.

use std::fmt;
use std::time::Duration;

use cnf::{Encoder, XorMode};
use gf2::BitVec;
use netlist::Circuit;
use satsolver::{Lit, SolverStats};
use scanlock::LockSpec;
use sim::{Reliable, ScanAccess, ScanChain};

use crate::model::SessionMasks;
use crate::robust::{AttackState, RobustConfig, RobustOutcome};

/// Attack tuning knobs.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Capture cycles per session (the paper's standard session uses 1).
    pub captures: usize,
    /// Abort after this many DIP iterations.
    pub max_dips: usize,
    /// Random probe queries used to verify the recovered seed against the
    /// oracle after the loop converges.
    pub verify_queries: usize,
    /// RNG seed for the verification probes.
    pub rng_seed: u64,
    /// How the encoder lowers parities (session-mask linear forms, miter
    /// xors). [`XorMode::Native`] hands each one to the solver's GF(2)
    /// engine as a single xor constraint — this is what makes wide keys
    /// (64+ bits) tractable. [`XorMode::Tseitin`] keeps the classical
    /// clause expansion as a differential reference.
    pub xor_mode: XorMode,
    /// Certify the final UNSAT answer: re-derive it from a fresh
    /// proof-logging solver over the exported problem plus the activation
    /// unit, and verify the emitted DRAT+xor certificate with the
    /// independent `proofcheck` checker before trusting convergence
    /// (DESIGN.md §7).
    pub certify: bool,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            captures: 1,
            max_dips: 512,
            verify_queries: 16,
            rng_seed: 0xD15C0,
            xor_mode: XorMode::Native,
            certify: false,
        }
    }
}

/// A successful unlock.
#[derive(Debug, Clone)]
pub struct Unlock {
    /// The recovered seed. When the session masks span the full seed space
    /// this is *the* secret; otherwise it is a canonical member of the
    /// functionally equivalent class (verified against the oracle either
    /// way).
    pub seed: BitVec,
    /// DIP iterations until the miter went UNSAT.
    pub dip_iterations: usize,
    /// Total oracle sessions consumed (DIP queries + verification probes).
    pub oracle_queries: usize,
    /// Time spent inside SAT solver calls.
    pub solve_time: Duration,
    /// Wall-clock time of the whole attack.
    pub total_time: Duration,
    /// Rank of the linear system the masks gave over the seed bits.
    pub rank: usize,
    /// `width - rank`: log2 of the functionally equivalent seed class.
    pub nullity: usize,
    /// Whether the recovered seed survived the verification probes.
    pub verified: bool,
    /// The checked UNSAT certificate for the final convergence answer,
    /// when [`AttackConfig::certify`] was set.
    pub certificate: Option<proofcheck::Certificate>,
    /// Time spent producing and checking the certificate (zero when
    /// certification was off).
    pub certify_time: Duration,
    /// The SAT solver's lifetime work counters at the end of the attack
    /// (restarts, decisions, conflicts, budget exhaustions, ...).
    pub solver_stats: SolverStats,
}

/// Why an attack run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The DIP loop did not converge within [`AttackConfig::max_dips`].
    DipLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// Oracle responses contradicted the model — the spec, chain, or
    /// session convention does not describe the oracle.
    Inconsistent,
    /// The converged seed failed a verification probe (should be
    /// impossible against an oracle the model describes).
    VerificationFailed {
        /// Probes checked before the mismatch.
        probes_passed: usize,
    },
    /// Certification was requested and the final UNSAT answer could not
    /// be certified — either the re-solve found a model (the incremental
    /// solver's answer was wrong) or the emitted proof failed the
    /// independent check. Both mean a solver soundness bug.
    Certification {
        /// Why the certificate could not be produced or checked.
        reason: String,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::DipLimit { limit } => {
                write!(f, "DIP loop did not converge within {limit} iterations")
            }
            AttackError::Inconsistent => {
                write!(f, "oracle responses contradict the lock model")
            }
            AttackError::VerificationFailed { probes_passed } => {
                write!(
                    f,
                    "recovered seed failed verification after {probes_passed} probes"
                )
            }
            AttackError::Certification { reason } => {
                write!(f, "final UNSAT answer failed certification: {reason}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

/// One symbolic seed hypothesis: its seed variables and its per-position
/// mask literals (each a parity of seed variables).
#[derive(Debug)]
pub(crate) struct SeedCopy {
    pub(crate) vars: Vec<Lit>,
    pub(crate) alpha: Vec<Lit>,
    pub(crate) beta: Vec<Lit>,
}

pub(crate) fn seed_copy(enc: &mut Encoder, width: usize, masks: &SessionMasks) -> SeedCopy {
    let vars = enc.fresh_many(width);
    let alpha = masks
        .alpha
        .iter()
        .map(|row| enc.linear_form(&vars, row))
        .collect();
    let beta = masks
        .beta
        .iter()
        .map(|row| enc.linear_form(&vars, row))
        .collect();
    SeedCopy { vars, alpha, beta }
}

/// Encodes one locked session under a seed hypothesis: XOR the load mask
/// into the pattern, scatter into flop order, unroll the capture frames,
/// gather back to chain order, XOR the unload mask. Returns
/// `(scan_out, po)` literals.
pub(crate) fn locked_cone(
    enc: &mut Encoder,
    circuit: &Circuit,
    chain: &ScanChain,
    copy: &SeedCopy,
    pattern: &[Lit],
    pis: &[Lit],
    captures: usize,
) -> (Vec<Lit>, Vec<Lit>) {
    let n = chain.len();
    let loaded: Vec<Lit> = (0..n)
        .map(|p| enc.xor2(pattern[p], copy.alpha[p]))
        .collect();
    let mut state: Vec<Option<Lit>> = vec![None; n];
    for (pos, &lit) in loaded.iter().enumerate() {
        state[chain.dff_at(pos)] = Some(lit);
    }
    let mut state: Vec<Lit> = state
        .into_iter()
        .map(|l| l.expect("chain is a permutation of the flops"))
        .collect();
    let mut po = Vec::new();
    for _ in 0..captures {
        let cone = enc.comb(circuit, pis, &state);
        po = cone.po;
        state = cone.next_state;
    }
    let scan_out = (0..n)
        .map(|pos| {
            let captured = state[chain.dff_at(pos)];
            enc.xor2(captured, copy.beta[pos])
        })
        .collect();
    (scan_out, po)
}

/// Runs the DynUnlock attack against a scan oracle.
///
/// The attacker knows the netlist, the chain order, and the lock structure
/// ([`LockSpec`] — taps and key-gate placement, from reverse engineering);
/// only the LFSR seed is secret, and the only access to the oracle is
/// [`ScanAccess`].
///
/// The run has three phases:
///
/// 1. **DIP loop** (the SAT attack): two symbolic seed hypotheses drive
///    two copies of the affine session model over a shared symbolic
///    stimulus; while the solver can find a stimulus on which the copies
///    disagree, query the oracle there and constrain both copies to the
///    observed response. The solver instance stays warm throughout —
///    every iteration only appends constraints. Under the default
///    [`XorMode::Native`] the session-mask linear forms land in the
///    solver's GF(2) engine as single wide xor rows instead of Tseitin
///    chains, which is what keeps 64+-bit keys tractable.
/// 2. **Linear phase**: once no distinguishing input exists, read the
///    session masks off the final model and hand them, as explicit linear
///    forms of the seed, to [`SeedRecovery`]. Full rank pins the seed
///    exactly; otherwise every seed in the affine class is functionally
///    equivalent and a canonical member is returned.
/// 3. **Verification**: random probe sessions compare a re-locked chip
///    under the recovered seed against the oracle bit-for-bit.
///
/// # Errors
///
/// [`AttackError::DipLimit`] if the loop does not converge,
/// [`AttackError::Inconsistent`] if the oracle contradicts the model
/// (wrong spec/chain/convention), [`AttackError::VerificationFailed`] if
/// the converged seed fails a probe.
///
/// # Panics
///
/// Panics if dimensions disagree (chain vs. circuit flops, oracle port
/// counts, `captures == 0`).
pub fn unlock<O: ScanAccess>(
    circuit: &Circuit,
    chain: &ScanChain,
    spec: &LockSpec,
    oracle: &mut O,
    cfg: &AttackConfig,
) -> Result<Unlock, AttackError> {
    let state = AttackState::new(circuit, chain, spec, RobustConfig::strict(cfg.clone()));
    match state.run(&mut Reliable(&mut *oracle)) {
        RobustOutcome::Unlocked { unlock, .. } => Ok(unlock),
        RobustOutcome::Partial(report) => Err(report.reason.into_attack_error()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::Xoshiro256;
    use lfsr::TapSet;
    use netlist::generator::{s208_like, GeneratorConfig};
    use scanlock::LockedScanChip;

    /// One end-to-end lock-and-attack exercise. A builder instead of a
    /// positional argument list: the defaulted knobs (captures, xor mode,
    /// certification) read at the call site instead of as bare numbers.
    struct RoundTrip<'a> {
        circuit: &'a Circuit,
        chain: ScanChain,
        width: usize,
        num_gates: usize,
        captures: usize,
        seed: u64,
        xor_mode: XorMode,
        certify: bool,
    }

    impl<'a> RoundTrip<'a> {
        fn new(
            circuit: &'a Circuit,
            chain: ScanChain,
            width: usize,
            num_gates: usize,
            seed: u64,
        ) -> Self {
            RoundTrip {
                circuit,
                chain,
                width,
                num_gates,
                captures: 1,
                seed,
                xor_mode: XorMode::Native,
                certify: false,
            }
        }

        fn captures(mut self, captures: usize) -> Self {
            self.captures = captures;
            self
        }

        fn mode(mut self, xor_mode: XorMode) -> Self {
            self.xor_mode = xor_mode;
            self
        }

        fn certify(mut self) -> Self {
            self.certify = true;
            self
        }

        fn run(self) -> Unlock {
            let mut rng = Xoshiro256::new(self.seed);
            let taps = TapSet::maximal(self.width).unwrap();
            let spec = LockSpec::random(taps, self.chain.len(), self.num_gates, &mut rng);
            let secret = spec.random_seed(&mut rng);
            let mut oracle = LockedScanChip::new(
                self.circuit,
                self.chain.clone(),
                spec.clone(),
                secret.clone(),
            );
            let cfg = AttackConfig {
                captures: self.captures,
                xor_mode: self.xor_mode,
                certify: self.certify,
                ..AttackConfig::default()
            };
            let unlock = unlock(self.circuit, &self.chain, &spec, &mut oracle, &cfg)
                .expect("attack converges");
            assert!(unlock.verified);
            assert_eq!(
                unlock.certificate.is_some(),
                self.certify,
                "certificate present exactly when requested"
            );
            // On these dense instances every mask bit reaches an output, so a
            // full-rank system lands on the secret itself. (In general, full
            // rank only pins the solver's functionally equivalent model seed —
            // see tests/lock_roundtrip.rs.)
            if unlock.nullity == 0 {
                assert_eq!(unlock.seed, secret, "full-rank recovery is exact here");
            }
            unlock
        }
    }

    #[test]
    fn unlocks_s208_natural_chain() {
        let c = s208_like();
        let u = RoundTrip::new(&c, ScanChain::natural(8), 8, 5, 0xA0).run();
        assert!(u.dip_iterations <= 64, "tiny instance, few DIPs");
    }

    #[test]
    fn unlocks_s208_shuffled_chain() {
        let c = s208_like();
        let mut rng = Xoshiro256::new(99);
        let chain = ScanChain::shuffled(8, &mut rng);
        RoundTrip::new(&c, chain, 12, 6, 0xB1).run();
    }

    #[test]
    fn unlocks_generated_circuit_with_multiple_captures() {
        let c = GeneratorConfig::new("atk", 5, 3, 6, 50)
            .with_seed(7)
            .generate();
        RoundTrip::new(&c, ScanChain::natural(6), 8, 4, 0xC2)
            .captures(2)
            .run();
    }

    #[test]
    fn unlocks_wide_key_with_sparse_gates() {
        // Fewer gates than key bits: rank may be deficient, but the
        // recovered seed must still be functionally equivalent (verified
        // inside the round trip by probe).
        let c = s208_like();
        RoundTrip::new(&c, ScanChain::natural(8), 16, 3, 0xD3).run();
    }

    #[test]
    fn native_and_tseitin_modes_recover_the_same_lock() {
        // Same lock attacked under both lowering modes: both must verify,
        // and on a full-rank instance both must land on the same seed.
        let c = s208_like();
        let native = RoundTrip::new(&c, ScanChain::natural(8), 12, 6, 0xE4).run();
        let tseitin = RoundTrip::new(&c, ScanChain::natural(8), 12, 6, 0xE4)
            .mode(XorMode::Tseitin)
            .run();
        assert!(native.verified && tseitin.verified);
        assert_eq!(native.rank, tseitin.rank, "rank is a property of the lock");
        if native.nullity == 0 {
            assert_eq!(native.seed, tseitin.seed);
        }
    }

    #[test]
    fn unlocks_64_bit_key_natively() {
        // The headline width from the refactor: a 64-bit LFSR seed. Native
        // xor keeps each mask bit a single solver row, so this stays fast.
        let c = s208_like();
        let u = RoundTrip::new(&c, ScanChain::natural(8), 64, 6, 0xF5).run();
        assert!(u.verified);
    }

    #[test]
    fn certified_unlock_smoke() {
        // Certification re-derives the convergence UNSAT with a logged
        // solver and checks the emitted proof; a small instance keeps
        // this fast enough for every test run (the 64-bit certified
        // attack lives in tests/certified_attack.rs).
        let c = s208_like();
        let u = RoundTrip::new(&c, ScanChain::natural(8), 8, 5, 0xA0)
            .certify()
            .run();
        let cert = u.certificate.expect("certificate requested");
        assert!(cert.stats.steps() > 0, "a real refutation was logged");
        assert!(u.certify_time > Duration::ZERO);
    }

    #[test]
    fn gate_free_lock_converges_immediately() {
        let c = s208_like();
        let spec = LockSpec::new(TapSet::maximal(8).unwrap(), vec![]).unwrap();
        let secret = BitVec::from_u64(8, 0x3C);
        let chain = ScanChain::natural(8);
        let mut oracle = LockedScanChip::new(&c, chain.clone(), spec.clone(), secret);
        let u = unlock(&c, &chain, &spec, &mut oracle, &AttackConfig::default()).unwrap();
        assert_eq!(u.dip_iterations, 0, "no key gates, no DIPs needed");
        assert_eq!(u.rank, 0);
        assert!(u.verified);
    }

    #[test]
    fn wrong_spec_is_reported_inconsistent() {
        // Attack a chip whose real gate placement differs from the spec the
        // attacker assumes: either the loop detects the contradiction or
        // verification catches the bad seed — it must not silently succeed.
        let c = s208_like();
        let chain = ScanChain::natural(8);
        let taps = TapSet::maximal(8).unwrap();
        let mut rng = Xoshiro256::new(5);
        let real = LockSpec::random(taps.clone(), 8, 5, &mut rng);
        let assumed = LockSpec::random(taps, 8, 5, &mut rng);
        assert_ne!(real, assumed);
        let secret = real.random_seed(&mut rng);
        let mut oracle = LockedScanChip::new(&c, chain.clone(), real, secret);
        let err = unlock(&c, &chain, &assumed, &mut oracle, &AttackConfig::default());
        assert!(err.is_err(), "mismatched model must not verify");
    }
}
