//! The public structure of an EFF-Dyn lock.

use gf2::{BitVec, Rng64};
use lfsr::TapSet;

use crate::ScanLockError;

/// One XOR key gate on the scan shift path.
///
/// The gate sits on the scan input of the cell at chain position `pos`:
/// whenever a shift clock fires, the bit moving *into* that cell is XORed
/// with LFSR state bit `lfsr_bit` as of that clock edge. Key gates are
/// only on the scan path — capture cycles read functional D inputs and are
/// unaffected (though the LFSR still steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyGate {
    /// Chain position whose scan input is masked (0 = nearest scan-in).
    pub pos: usize,
    /// LFSR state bit driving the gate.
    pub lfsr_bit: usize,
}

/// Everything about an EFF-Dyn lock *except* the seed: the key-LFSR tap
/// structure and the key-gate placement.
///
/// Under the paper's threat model this is public — the attacker reverse
/// engineers the netlist and sees the register, its feedback taps, and
/// every key gate's wiring. The tamper-proof memory holds only the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSpec {
    taps: TapSet,
    /// Sorted by position; positions are unique.
    gates: Vec<KeyGate>,
}

impl LockSpec {
    /// Validates and creates a lock spec. Gates are kept sorted by chain
    /// position.
    ///
    /// # Errors
    ///
    /// Rejects duplicate positions and state-bit indices outside the
    /// register width.
    pub fn new(taps: TapSet, mut gates: Vec<KeyGate>) -> Result<Self, ScanLockError> {
        gates.sort_by_key(|g| g.pos);
        for w in gates.windows(2) {
            if w[0].pos == w[1].pos {
                return Err(ScanLockError::DuplicatePosition { pos: w[0].pos });
            }
        }
        if let Some(bad) = gates.iter().find(|g| g.lfsr_bit >= taps.width()) {
            return Err(ScanLockError::BitOutOfRange {
                bit: bad.lfsr_bit,
                width: taps.width(),
            });
        }
        Ok(LockSpec { taps, gates })
    }

    /// A random placement: `num_gates` key gates on distinct chain
    /// positions (clamped to `num_cells`), each driven by a random LFSR
    /// state bit. Deterministic in the generator.
    pub fn random<R: Rng64>(
        taps: TapSet,
        num_cells: usize,
        num_gates: usize,
        rng: &mut R,
    ) -> LockSpec {
        let mut positions: Vec<usize> = (0..num_cells).collect();
        rng.shuffle(&mut positions);
        positions.truncate(num_gates.min(num_cells));
        let width = taps.width();
        let gates = positions
            .into_iter()
            .map(|pos| KeyGate {
                pos,
                lfsr_bit: rng.gen_index(width),
            })
            .collect();
        LockSpec::new(taps, gates).expect("random placement satisfies the invariants")
    }

    /// The key-LFSR tap set.
    pub fn taps(&self) -> &TapSet {
        &self.taps
    }

    /// The key-LFSR width (the paper's *key size*).
    pub fn width(&self) -> usize {
        self.taps.width()
    }

    /// The key gates, sorted by chain position.
    pub fn gates(&self) -> &[KeyGate] {
        &self.gates
    }

    /// Largest locked chain position, if any gate exists.
    pub fn max_pos(&self) -> Option<usize> {
        self.gates.last().map(|g| g.pos)
    }

    /// Draws a uniformly random *nonzero* seed for this lock's register.
    /// (The all-zero seed is a fixed point of any LFSR: the chip would
    /// mask with a constant zero key, i.e. not be locked at all.)
    pub fn random_seed<R: Rng64>(&self, rng: &mut R) -> BitVec {
        loop {
            let seed = BitVec::random(self.width(), rng);
            if !seed.is_zero() {
                return seed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::SplitMix64;

    fn taps8() -> TapSet {
        TapSet::maximal(8).unwrap()
    }

    #[test]
    fn gates_are_sorted_and_validated() {
        let spec = LockSpec::new(
            taps8(),
            vec![
                KeyGate {
                    pos: 5,
                    lfsr_bit: 0,
                },
                KeyGate {
                    pos: 1,
                    lfsr_bit: 7,
                },
            ],
        )
        .unwrap();
        assert_eq!(spec.gates()[0].pos, 1);
        assert_eq!(spec.gates()[1].pos, 5);
        assert_eq!(spec.max_pos(), Some(5));
        assert_eq!(spec.width(), 8);
    }

    #[test]
    fn duplicate_position_rejected() {
        let err = LockSpec::new(
            taps8(),
            vec![
                KeyGate {
                    pos: 2,
                    lfsr_bit: 0,
                },
                KeyGate {
                    pos: 2,
                    lfsr_bit: 1,
                },
            ],
        );
        assert_eq!(err, Err(ScanLockError::DuplicatePosition { pos: 2 }));
    }

    #[test]
    fn bit_out_of_range_rejected() {
        let err = LockSpec::new(
            taps8(),
            vec![KeyGate {
                pos: 0,
                lfsr_bit: 8,
            }],
        );
        assert_eq!(err, Err(ScanLockError::BitOutOfRange { bit: 8, width: 8 }));
    }

    #[test]
    fn random_spec_is_valid_and_deterministic() {
        let mut r1 = SplitMix64::new(3);
        let mut r2 = SplitMix64::new(3);
        let s1 = LockSpec::random(taps8(), 20, 6, &mut r1);
        let s2 = LockSpec::random(taps8(), 20, 6, &mut r2);
        assert_eq!(s1, s2);
        assert_eq!(s1.gates().len(), 6);
        // clamped when asking for more gates than cells
        let s3 = LockSpec::random(taps8(), 4, 100, &mut r1);
        assert_eq!(s3.gates().len(), 4);
    }

    #[test]
    fn random_seed_is_nonzero_and_right_width() {
        let spec = LockSpec::random(taps8(), 8, 3, &mut SplitMix64::new(9));
        let seed = spec.random_seed(&mut SplitMix64::new(0));
        assert_eq!(seed.len(), 8);
        assert!(!seed.is_zero());
    }
}
