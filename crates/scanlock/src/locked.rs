//! The cycle-accurate EFF-Dyn locked chip.

use gf2::BitVec;
use lfsr::Lfsr;
use netlist::Circuit;
use sim::{Evaluator, ScanAccess, ScanChain, ScanResponse};

/// An EFF-Dyn-locked scan chip: [`sim::ScanChip`] plus a key LFSR whose
/// per-cycle output XOR-masks the scan shift path.
///
/// The chip is simulated **cycle-accurately** — every clock edge shifts
/// the chain through the key gates and steps the LFSR — rather than via
/// the closed-form affine masks the attack derives; the `dynunlock` tests
/// cross-check the two, so the defense model cannot silently agree with
/// the attack model by construction.
///
/// # Session timing
///
/// One [`query_captures`](ScanAccess::query_captures) session with `n`
/// cells and `c` captures runs `2n + c` clock edges, numbered from 0:
///
/// * power-on reset: the LFSR state is the secret seed, edge counter 0;
/// * edges `0..n`: shift-in (the bit destined for chain position `p`
///   enters at edge `n-1-p`);
/// * edges `n..n+c`: captures (key gates idle, LFSR still steps);
/// * edges `n+c..2n+c`: shift-out (the scan-out port is read *before*
///   each edge; the bit captured at position `p` is read before edge
///   `n+c+(n-1-p)`).
///
/// The key applied at edge `t` is the LFSR state after `t` steps from the
/// seed (edge 0 uses the seed itself); the register steps at the end of
/// every edge. The `dynunlock` attack model mirrors exactly this
/// convention.
#[derive(Debug, Clone)]
pub struct LockedScanChip<'c> {
    evaluator: Evaluator<'c>,
    chain: ScanChain,
    spec: crate::LockSpec,
    /// The tamper-proof secret. Not exposed; [`ScanAccess`] is the only
    /// interface the attack gets.
    seed: BitVec,
    lfsr: Lfsr,
    /// `gate_bit[pos]` = LFSR bit driving the key gate at `pos`, if any.
    gate_bit: Vec<Option<usize>>,
}

impl<'c> LockedScanChip<'c> {
    /// Creates a locked chip.
    ///
    /// # Panics
    ///
    /// Panics if the chain length differs from the circuit's flop count,
    /// if a key gate sits past the end of the chain, or if the seed width
    /// differs from the spec's register width.
    pub fn new(
        circuit: &'c Circuit,
        chain: ScanChain,
        spec: crate::LockSpec,
        seed: BitVec,
    ) -> Self {
        assert_eq!(
            chain.len(),
            circuit.num_dffs(),
            "chain must cover all flops"
        );
        assert_eq!(seed.len(), spec.width(), "seed width mismatch");
        if let Some(max) = spec.max_pos() {
            assert!(
                max < chain.len(),
                "key gate at position {max} past chain end"
            );
        }
        let mut gate_bit = vec![None; chain.len()];
        for g in spec.gates() {
            gate_bit[g.pos] = Some(g.lfsr_bit);
        }
        let lfsr = Lfsr::new(spec.taps().clone(), seed.clone());
        LockedScanChip {
            evaluator: Evaluator::new(circuit),
            chain,
            spec,
            seed,
            lfsr,
            gate_bit,
        }
    }

    /// The circuit inside the chip.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// The scan chain structure (public under the threat model).
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// The lock structure (public under the threat model).
    pub fn spec(&self) -> &crate::LockSpec {
        &self.spec
    }

    /// One shift clock edge: every cell takes its predecessor's value
    /// (cell 0 takes `si`), XOR-masked through any key gate on the way;
    /// then the LFSR steps.
    fn shift_edge(&mut self, cells: &mut [bool], si: bool) {
        for p in (1..cells.len()).rev() {
            cells[p] = cells[p - 1] ^ self.key_at(p);
        }
        if let Some(c0) = cells.first_mut() {
            *c0 = si ^ self.key_at(0);
        }
        self.lfsr.step();
    }

    /// Key bit applied at chain position `pos` on the current edge.
    fn key_at(&self, pos: usize) -> bool {
        self.gate_bit[pos].is_some_and(|bit| self.lfsr.bit(bit))
    }
}

impl ScanAccess for LockedScanChip<'_> {
    fn num_cells(&self) -> usize {
        self.chain.len()
    }

    fn num_pis(&self) -> usize {
        self.circuit().inputs().len()
    }

    fn num_pos(&self) -> usize {
        self.circuit().outputs().len()
    }

    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        assert!(captures >= 1, "at least one capture cycle");
        let n = self.chain.len();
        assert_eq!(pattern.len(), n, "pattern length mismatch");

        // Power-on reset: a fresh session restarts the key schedule.
        self.lfsr.reseed(self.seed.clone());

        // Shift-in: cells indexed by chain position, flops start at zero.
        let mut cells = vec![false; n];
        for t in 0..n {
            self.shift_edge(&mut cells, pattern[n - 1 - t]);
        }

        // Captures: key gates are off the functional path; the LFSR still
        // steps once per edge.
        let mut po = Vec::new();
        for _ in 0..captures {
            let state = self.chain.pattern_to_state(&cells);
            self.evaluator.eval(pis, &state);
            po = self.evaluator.output_values();
            cells = self.chain.state_to_pattern(&self.evaluator.next_state());
            self.lfsr.step();
        }

        // Shift-out: read the port, then clock. `raw[j]` is the bit seen
        // before edge `n + captures + j`; scan-in is held low.
        let mut raw = vec![false; n];
        for slot in &mut raw {
            *slot = *cells.last().expect("chain is nonempty");
            self.shift_edge(&mut cells, false);
        }
        let scan_out = (0..n).map(|pos| raw[n - 1 - pos]).collect();
        ScanResponse { scan_out, po }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeyGate, LockSpec};
    use gf2::{Rng64, SplitMix64};
    use lfsr::TapSet;
    use netlist::generator::{s208_like, GeneratorConfig};
    use sim::ScanChip;

    fn spec8(gates: Vec<KeyGate>) -> LockSpec {
        LockSpec::new(TapSet::maximal(8).unwrap(), gates).unwrap()
    }

    #[test]
    fn no_gates_behaves_like_honest_chip() {
        let c = s208_like();
        let chain = ScanChain::natural(8);
        let seed = BitVec::from_u64(8, 0x5A);
        let mut locked = LockedScanChip::new(&c, chain.clone(), spec8(vec![]), seed);
        let mut honest = ScanChip::new(&c, chain);
        let mut rng = SplitMix64::new(7);
        for _ in 0..8 {
            let pattern: Vec<bool> = (0..8).map(|_| rng.next_u64() & 1 == 1).collect();
            let pis: Vec<bool> = (0..10).map(|_| rng.next_u64() & 1 == 1).collect();
            assert_eq!(
                locked.query(&pattern, &pis),
                honest.query(&pattern, &pis),
                "an empty lock is no lock"
            );
        }
    }

    #[test]
    fn zero_seed_behaves_like_honest_chip() {
        let c = s208_like();
        let chain = ScanChain::natural(8);
        let spec = LockSpec::random(TapSet::maximal(8).unwrap(), 8, 5, &mut SplitMix64::new(2));
        let mut locked = LockedScanChip::new(&c, chain.clone(), spec, BitVec::zeros(8));
        let mut honest = ScanChip::new(&c, chain);
        let pattern = vec![true, false, true, true, false, false, true, false];
        let pis = vec![false; 10];
        assert_eq!(locked.query(&pattern, &pis), honest.query(&pattern, &pis));
    }

    #[test]
    fn locked_chip_garbles_responses() {
        let c = s208_like();
        let chain = ScanChain::natural(8);
        let spec = LockSpec::random(TapSet::maximal(8).unwrap(), 8, 5, &mut SplitMix64::new(2));
        let seed = BitVec::from_u64(8, 0xC3);
        let mut locked = LockedScanChip::new(&c, chain.clone(), spec, seed);
        let mut honest = ScanChip::new(&c, chain);
        let pattern = vec![true; 8];
        let pis = vec![false; 10];
        assert_ne!(
            locked.query(&pattern, &pis).scan_out,
            honest.query(&pattern, &pis).scan_out
        );
    }

    #[test]
    fn sessions_are_fresh_power_cycles() {
        // Identical queries must see identical key schedules no matter
        // what ran in between — the ScanAccess contract.
        let c = GeneratorConfig::new("fresh", 5, 3, 12, 70)
            .with_seed(4)
            .generate();
        let chain = ScanChain::natural(12);
        let taps = TapSet::maximal(16).unwrap();
        let spec = LockSpec::random(taps, 12, 6, &mut SplitMix64::new(11));
        let seed = spec.random_seed(&mut SplitMix64::new(12));
        let mut locked = LockedScanChip::new(&c, chain, spec, seed);
        let mut rng = SplitMix64::new(13);
        let pattern: Vec<bool> = (0..12).map(|_| rng.next_u64() & 1 == 1).collect();
        let pis: Vec<bool> = (0..5).map(|_| rng.next_u64() & 1 == 1).collect();
        let first = locked.query_captures(&pattern, &pis, 2);
        for _ in 0..3 {
            let other: Vec<bool> = (0..12).map(|_| rng.next_u64() & 1 == 1).collect();
            locked.query(&other, &pis);
        }
        assert_eq!(locked.query_captures(&pattern, &pis, 2), first);
    }

    #[test]
    fn single_gate_on_shift_register_masks_known_cycles() {
        // One key gate at position 0 of a pure shift register: the bit
        // destined for position p picks up exactly key(edge n-1-p) going
        // in, and nothing coming out (no gates past position 0).
        let c = netlist::generator::shift_register(4);
        let chain = ScanChain::natural(4);
        let taps = TapSet::maximal(8).unwrap();
        let spec = LockSpec::new(
            taps.clone(),
            vec![KeyGate {
                pos: 0,
                lfsr_bit: 3,
            }],
        )
        .unwrap();
        let seed = BitVec::from_u64(8, 0x9D);
        let mut locked = LockedScanChip::new(&c, chain.clone(), spec, seed.clone());

        let pattern = vec![false; 4];
        let pis = vec![false; 1];
        let resp = locked.query(&pattern, &pis);

        // Reference: key bit 3 at edges 0..4 from the seed.
        let mut reference = Lfsr::new(taps, seed);
        let key: Vec<bool> = (0..4)
            .map(|_| {
                let k = reference.bit(3);
                reference.step();
                k
            })
            .collect();
        // Loaded state: loaded[p] = pattern[p] ^ key[n-1-p]; a shift
        // register's capture moves q[i] <- q[i-1] (q[0] <- din = 0).
        let loaded: Vec<bool> = (0..4).map(|p| key[3 - p]).collect();
        let captured = [false, loaded[0], loaded[1], loaded[2]];
        assert_eq!(resp.scan_out, captured, "no out-mask for a pos-0 gate");
    }
}
