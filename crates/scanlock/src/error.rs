//! Error type for lock construction.

use std::fmt;

/// Errors produced while constructing a [`crate::LockSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScanLockError {
    /// Two key gates were placed on the same chain segment.
    DuplicatePosition {
        /// The doubly-locked chain position.
        pos: usize,
    },
    /// A key gate reads an LFSR state bit outside the register.
    BitOutOfRange {
        /// The offending state-bit index.
        bit: usize,
        /// The LFSR width.
        width: usize,
    },
}

impl fmt::Display for ScanLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanLockError::DuplicatePosition { pos } => {
                write!(f, "two key gates at chain position {pos}")
            }
            ScanLockError::BitOutOfRange { bit, width } => {
                write!(f, "key gate reads LFSR bit {bit} of a {width}-bit register")
            }
        }
    }
}

impl std::error::Error for ScanLockError {}
