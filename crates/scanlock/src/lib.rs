//! The paper's EFF-Dyn defense: dynamic scan-chain obfuscation.
//!
//! EFF-Dyn inserts XOR *key gates* on the scan shift path and drives each
//! one from a bit of an on-chip key LFSR that steps on **every** clock
//! edge (paper Fig. 2). Data shifting through the chain is therefore
//! masked by a key that changes each cycle; without the LFSR seed an
//! attacker can neither load a chosen state nor read a captured one.
//!
//! * [`LockSpec`] — the *public* structure of a lock: the LFSR tap set
//!   plus which chain segments carry key gates and which LFSR state bit
//!   drives each. Under the paper's threat model the attacker recovers
//!   this from the reverse-engineered netlist; only the seed is secret.
//! * [`LockedScanChip`] — a cycle-accurate locked chip implementing
//!   [`sim::ScanAccess`]: every [`query`](sim::ScanAccess::query) is one
//!   complete powered session that power-on resets the key LFSR to the
//!   secret seed, exactly as the trait contract promises. That reset is
//!   what the DynUnlock attack exploits: every query sees the same key
//!   schedule, so the dynamic lock collapses to one unknown-but-fixed
//!   affine mask pair per session structure.
//!
//! # Example
//!
//! ```
//! use gf2::{BitVec, SplitMix64};
//! use lfsr::TapSet;
//! use netlist::generator::s208_like;
//! use scanlock::{LockSpec, LockedScanChip};
//! use sim::{ScanAccess, ScanChain, ScanChip};
//!
//! let c = s208_like();
//! let chain = ScanChain::natural(c.num_dffs());
//! let mut rng = SplitMix64::new(1);
//! let spec = LockSpec::random(TapSet::maximal(8).unwrap(), 8, 4, &mut rng);
//! let seed = BitVec::from_u64(8, 0xB7);
//! let mut locked = LockedScanChip::new(&c, chain.clone(), spec, seed);
//! let mut honest = ScanChip::new(&c, chain);
//!
//! let pattern = vec![true; 8];
//! let pis = vec![false; 10];
//! // The locked chip garbles the response...
//! assert_ne!(locked.query(&pattern, &pis), honest.query(&pattern, &pis));
//! // ...but identical queries see identical key schedules (power-on reset).
//! assert_eq!(locked.query(&pattern, &pis), locked.query(&pattern, &pis));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod locked;
mod spec;

pub use error::ScanLockError;
pub use locked::LockedScanChip;
pub use spec::{KeyGate, LockSpec};
