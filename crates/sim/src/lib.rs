//! Gate-level simulation: combinational evaluation, sequential stepping,
//! and scan-chain test access for *unlocked* circuits.
//!
//! This crate is the ground-truth substrate of the reproduction: the
//! locked-chip oracle in `scanlock` layers obfuscation on top of the
//! primitives here, and the attack's final verification compares
//! reconstructed responses against the honest [`ScanChip`].
//!
//! * [`Evaluator`] — reusable levelized evaluation of the combinational core;
//! * [`WidePackedEvaluator`] — the lane-word-parallel counterpart,
//!   generic over [`LaneWord`]: [`PackedEvaluator`] packs 64 patterns
//!   per `u64`, [`PackedEvaluator256`] packs 256 per [`W256`] block;
//! * [`ParPackedEvaluator`] / [`ParPackedScanChip`] — multi-core
//!   fan-out: lane blocks evaluated across worker threads against the
//!   shared read-only schedule (`DU_THREADS` / explicit knob);
//! * [`SeqSim`] / [`PackedSeqSim`] — clock-by-clock functional simulation,
//!   scalar and 64 lanes at once;
//! * [`ScanChain`] — the order in which flops are stitched into the chain;
//! * [`ScanChip`] / [`WidePackedScanChip`] — load / capture / unload test
//!   access, no obfuscation, scalar and lane-parallel;
//! * [`ScanAccess`] — the oracle interface shared by unlocked and locked
//!   chips (the attack only ever talks to this trait);
//! * [`FaultyOracle`] / [`FallibleScanAccess`] — seeded fault injection
//!   (bit flips, transient errors, dropped sessions, latency) over any
//!   honest oracle, and the fallible interface fault-tolerant attack
//!   code consumes ([`Reliable`] lifts a trustworthy oracle into it).
//!
//! The scalar paths are the differential-test references for every
//! packed width and thread count; see DESIGN.md §5 for the data layout
//! and the thread/lane execution model.
//!
//! # Example
//!
//! ```
//! use netlist::generator::counter;
//! use sim::SeqSim;
//!
//! let c = counter(3);
//! let mut simulator = SeqSim::new(&c);
//! for _ in 0..4 {
//!     simulator.step(&[true]); // enable high: count up
//! }
//! assert_eq!(simulator.state(), &[false, false, true]); // 4 = 0b100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod faulty;
mod lane;
mod oracle;
mod packed;
mod parallel;
mod scan;
mod seq;

pub use comb::Evaluator;
pub use faulty::{FallibleScanAccess, FaultSpec, FaultyOracle, FaultyStats, OracleFault, Reliable};
pub use lane::{LaneWord, W256};
pub use oracle::{check_session_freshness, FreshnessViolation, ScanAccess, ScanResponse};
pub use packed::{
    pack_lanes, pack_lanes_wide, try_pack_lanes, try_pack_lanes_wide, unpack_lane,
    unpack_lane_wide, PackError, PackedEvaluator, PackedEvaluator256, WidePackedEvaluator,
};
pub use parallel::{PackedFrame, ParPackedEvaluator, ParPackedScanChip};
pub use scan::{
    PackedScanChip, PackedScanChip256, PackedScanResponse, ScanChain, ScanChip, WidePackedScanChip,
    WidePackedScanResponse,
};
pub use seq::{PackedSeqSim, SeqSim};
