//! Gate-level simulation: combinational evaluation, sequential stepping,
//! and scan-chain test access for *unlocked* circuits.
//!
//! This crate is the ground-truth substrate of the reproduction: the
//! locked-chip oracle in `scanlock` layers obfuscation on top of the
//! primitives here, and the attack's final verification compares
//! reconstructed responses against the honest [`ScanChip`].
//!
//! * [`Evaluator`] — reusable levelized evaluation of the combinational core;
//! * [`PackedEvaluator`] — the 64-lane word-parallel counterpart: one
//!   `u64` per net evaluates 64 independent patterns per sweep;
//! * [`SeqSim`] / [`PackedSeqSim`] — clock-by-clock functional simulation,
//!   scalar and 64 lanes at once;
//! * [`ScanChain`] — the order in which flops are stitched into the chain;
//! * [`ScanChip`] / [`PackedScanChip`] — load / capture / unload test
//!   access, no obfuscation, scalar and 64-lane;
//! * [`ScanAccess`] — the oracle interface shared by unlocked and locked
//!   chips (the attack only ever talks to this trait).
//!
//! The scalar paths are the differential-test references for the packed
//! ones; see DESIGN.md §5 for the data layout.
//!
//! # Example
//!
//! ```
//! use netlist::generator::counter;
//! use sim::SeqSim;
//!
//! let c = counter(3);
//! let mut simulator = SeqSim::new(&c);
//! for _ in 0..4 {
//!     simulator.step(&[true]); // enable high: count up
//! }
//! assert_eq!(simulator.state(), &[false, false, true]); // 4 = 0b100
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod oracle;
mod packed;
mod scan;
mod seq;

pub use comb::Evaluator;
pub use oracle::{check_session_freshness, FreshnessViolation, ScanAccess, ScanResponse};
pub use packed::{pack_lanes, unpack_lane, PackedEvaluator};
pub use scan::{PackedScanChip, PackedScanResponse, ScanChain, ScanChip};
pub use seq::{PackedSeqSim, SeqSim};
