//! Scan-chain structure and unobfuscated scan test access — scalar and
//! lane-word-parallel (64 lanes as `u64`, 256 lanes as `W256`, or any
//! [`LaneWord`]).

use netlist::Circuit;

use crate::lane::{LaneWord, W256};
use crate::packed::WidePackedEvaluator;
use crate::{Evaluator, ScanAccess, ScanResponse};

/// The order in which flops are stitched into a single scan chain.
///
/// Position 0 is the cell nearest the scan-in port; position `len-1` is
/// nearest scan-out. `order[pos]` is the index into `circuit.dffs()` of
/// the flop at chain position `pos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    order: Vec<usize>,
}

impl ScanChain {
    /// The natural chain: flop `i` at position `i`.
    pub fn natural(num_dffs: usize) -> Self {
        ScanChain {
            order: (0..num_dffs).collect(),
        }
    }

    /// A chain with an explicit flop order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(i < order.len() && !seen[i], "order must be a permutation");
            seen[i] = true;
        }
        ScanChain { order }
    }

    /// A pseudo-random chain order (deterministic in the generator).
    pub fn shuffled<R: gf2::Rng64>(num_dffs: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..num_dffs).collect();
        rng.shuffle(&mut order);
        ScanChain { order }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Flop index at chain position `pos`.
    pub fn dff_at(&self, pos: usize) -> usize {
        self.order[pos]
    }

    /// Chain position of flop `dff`.
    pub fn position_of(&self, dff: usize) -> usize {
        self.order
            .iter()
            .position(|&d| d == dff)
            .expect("flop not in chain")
    }

    /// Converts a pattern indexed by chain position into a state vector
    /// indexed by flop index.
    pub fn pattern_to_state(&self, pattern: &[bool]) -> Vec<bool> {
        self.scatter(pattern)
    }

    /// Converts a state vector (by flop index) into a response indexed by
    /// chain position.
    pub fn state_to_pattern(&self, state: &[bool]) -> Vec<bool> {
        self.gather(state)
    }

    /// Packed variant of [`ScanChain::pattern_to_state`]: each lane word
    /// holds `W::LANES` lanes of one chain position.
    pub fn pattern_to_state_packed<W: Copy + Default>(&self, pattern: &[W]) -> Vec<W> {
        self.scatter(pattern)
    }

    /// Packed variant of [`ScanChain::state_to_pattern`].
    pub fn state_to_pattern_packed<W: Copy>(&self, state: &[W]) -> Vec<W> {
        self.gather(state)
    }

    /// `out[order[pos]] = input[pos]` — the permutation is lane-agnostic,
    /// so one implementation serves `bool` and packed `u64` values.
    fn scatter<T: Copy + Default>(&self, pattern: &[T]) -> Vec<T> {
        assert_eq!(pattern.len(), self.len(), "pattern length mismatch");
        let mut state = vec![T::default(); self.len()];
        for (pos, &dff) in self.order.iter().enumerate() {
            state[dff] = pattern[pos];
        }
        state
    }

    /// `out[pos] = input[order[pos]]`.
    fn gather<T: Copy>(&self, state: &[T]) -> Vec<T> {
        assert_eq!(state.len(), self.len(), "state length mismatch");
        self.order.iter().map(|&dff| state[dff]).collect()
    }
}

/// An *unlocked* scan-testable chip: plain load / capture / unload with no
/// obfuscation. This is the ground truth the attack's verification step
/// compares against, and the base the locked chip builds on.
///
/// # Example
///
/// ```
/// use netlist::generator::s208_like;
/// use sim::{ScanAccess, ScanChain, ScanChip};
///
/// let c = s208_like();
/// let chain = ScanChain::natural(c.num_dffs());
/// let mut chip = ScanChip::new(&c, chain);
/// let pattern = vec![true; 8];
/// let pis = vec![false; 10];
/// let resp = chip.query(&pattern, &pis);
/// assert_eq!(resp.scan_out.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ScanChip<'c> {
    evaluator: Evaluator<'c>,
    chain: ScanChain,
    state: Vec<bool>,
}

impl<'c> ScanChip<'c> {
    /// Creates a chip with the given chain; flops reset to zero.
    ///
    /// # Panics
    ///
    /// Panics if the chain length differs from the circuit's flop count.
    pub fn new(circuit: &'c Circuit, chain: ScanChain) -> Self {
        assert_eq!(
            chain.len(),
            circuit.num_dffs(),
            "chain must cover all flops"
        );
        ScanChip {
            evaluator: Evaluator::new(circuit),
            chain,
            state: vec![false; circuit.num_dffs()],
        }
    }

    /// The circuit inside the chip.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// The scan chain structure.
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// Shift-in: after `len` shift cycles the cell at position `pos` holds
    /// `pattern[pos]`.
    pub fn load(&mut self, pattern: &[bool]) {
        self.state = self.chain.pattern_to_state(pattern);
    }

    /// One capture cycle: flops load their D values; returns the primary
    /// outputs observed during the capture.
    pub fn capture(&mut self, pis: &[bool]) -> Vec<bool> {
        self.evaluator.eval(pis, &self.state);
        let po = self.evaluator.output_values();
        self.state = self.evaluator.next_state();
        po
    }

    /// Shift-out: returns the captured values indexed by chain position.
    pub fn unload(&self) -> Vec<bool> {
        self.chain.state_to_pattern(&self.state)
    }
}

/// What comes back from one packed scan session: `W::LANES` lanes per
/// word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidePackedScanResponse<W> {
    /// Packed values shifted out of the chain, indexed by chain position.
    pub scan_out: Vec<W>,
    /// Packed primary-output words observed during the (last) capture.
    pub po: Vec<W>,
}

/// The 64-lane packed scan response (`u64` words).
pub type PackedScanResponse = WidePackedScanResponse<u64>;

/// The lane-parallel counterpart of [`ScanChip`]: one load / capture /
/// unload session answers `W::LANES` independent scan queries at once.
/// This is the throughput path for attack phases that sweep many patterns
/// (signature collection, hypothesis filtering); the scalar [`ScanChip`]
/// remains the differential-test reference, and `sim::par` fans batches
/// of these blocks across threads.
///
/// # Example
///
/// ```
/// use netlist::generator::s208_like;
/// use sim::{PackedScanChip, ScanChain};
///
/// let c = s208_like();
/// let chain = ScanChain::natural(c.num_dffs());
/// let mut chip = PackedScanChip::new(&c, chain);
/// let patterns = vec![!0u64; 8]; // all 64 lanes load all-ones
/// let pis = vec![0u64; 10];
/// let resp = chip.query(&patterns, &pis);
/// assert_eq!(resp.scan_out.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct WidePackedScanChip<'c, W: LaneWord = u64> {
    evaluator: WidePackedEvaluator<'c, W>,
    chain: ScanChain,
    state: Vec<W>,
}

/// The 64-lane (`u64`) packed scan chip.
pub type PackedScanChip<'c> = WidePackedScanChip<'c, u64>;

/// The 256-lane ([`W256`]) packed scan chip.
pub type PackedScanChip256<'c> = WidePackedScanChip<'c, W256>;

impl<'c, W: LaneWord> WidePackedScanChip<'c, W> {
    /// Creates a packed chip with the given chain; flops reset to zero in
    /// every lane.
    ///
    /// # Panics
    ///
    /// Panics if the chain length differs from the circuit's flop count.
    pub fn new(circuit: &'c Circuit, chain: ScanChain) -> Self {
        assert_eq!(
            chain.len(),
            circuit.num_dffs(),
            "chain must cover all flops"
        );
        WidePackedScanChip {
            evaluator: WidePackedEvaluator::new(circuit),
            chain,
            state: vec![W::zeros(); circuit.num_dffs()],
        }
    }

    /// The circuit inside the chip.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// The scan chain structure.
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// Shift-in of `W::LANES` patterns at once: `pattern[pos]` packs the
    /// bit each lane loads into the cell at chain position `pos`.
    pub fn load(&mut self, pattern: &[W]) {
        self.state = self.chain.pattern_to_state_packed(pattern);
    }

    /// One capture cycle across all lanes; returns the packed primary
    /// outputs observed during the capture.
    pub fn capture(&mut self, pis: &[W]) -> Vec<W> {
        self.evaluator.eval(pis, &self.state);
        let po = self.evaluator.output_values();
        self.state = self.evaluator.next_state();
        po
    }

    /// Shift-out: packed captured values indexed by chain position.
    pub fn unload(&self) -> Vec<W> {
        self.chain.state_to_pattern_packed(&self.state)
    }

    /// A full session with `captures` capture cycles, `W::LANES` lanes
    /// at once.
    ///
    /// # Panics
    ///
    /// Panics if `captures == 0` or vector lengths are wrong.
    pub fn query_captures(
        &mut self,
        pattern: &[W],
        pis: &[W],
        captures: usize,
    ) -> WidePackedScanResponse<W> {
        assert!(captures >= 1, "at least one capture cycle");
        self.load(pattern);
        let mut po = Vec::new();
        for _ in 0..captures {
            po = self.capture(pis);
        }
        WidePackedScanResponse {
            scan_out: self.unload(),
            po,
        }
    }

    /// A standard single-capture session, `W::LANES` lanes at once.
    pub fn query(&mut self, pattern: &[W], pis: &[W]) -> WidePackedScanResponse<W> {
        self.query_captures(pattern, pis, 1)
    }
}

impl ScanAccess for ScanChip<'_> {
    fn num_cells(&self) -> usize {
        self.chain.len()
    }

    fn num_pis(&self) -> usize {
        self.circuit().inputs().len()
    }

    fn num_pos(&self) -> usize {
        self.circuit().outputs().len()
    }

    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        assert!(captures >= 1, "at least one capture cycle");
        self.load(pattern);
        let mut po = Vec::new();
        for _ in 0..captures {
            po = self.capture(pis);
        }
        ScanResponse {
            scan_out: self.unload(),
            po,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::generator::{s208_like, GeneratorConfig};
    use netlist::{CircuitBuilder, GateKind};

    #[test]
    fn natural_chain_is_identity() {
        let chain = ScanChain::natural(4);
        let pattern = vec![true, false, true, true];
        assert_eq!(chain.pattern_to_state(&pattern), pattern);
        assert_eq!(chain.state_to_pattern(&pattern), pattern);
    }

    #[test]
    fn permuted_chain_roundtrip() {
        let chain = ScanChain::from_order(vec![2, 0, 1]);
        let pattern = vec![true, false, true];
        let state = chain.pattern_to_state(&pattern);
        assert_eq!(chain.state_to_pattern(&state), pattern);
        // position 0 holds flop 2
        assert_eq!(chain.dff_at(0), 2);
        assert_eq!(chain.position_of(2), 0);
        assert!(state[2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        ScanChain::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn load_capture_unload_matches_seq_sim() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let pis: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        chip.load(&pattern);
        let po = chip.capture(&pis);
        let resp = chip.unload();

        let mut s = crate::SeqSim::new(&c);
        s.set_state(&pattern); // natural chain: pattern == state
        let po2 = s.step(&pis);
        assert_eq!(po, po2);
        assert_eq!(resp, s.state());
    }

    #[test]
    fn query_is_one_full_session() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern = vec![false; 8];
        let pis = vec![true; 10];
        let r1 = chip.query(&pattern, &pis);
        let r2 = chip.query(&pattern, &pis);
        assert_eq!(r1, r2, "queries are stateless sessions");
    }

    #[test]
    fn multi_capture_advances_state_twice() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let pis = vec![false; 10];
        let two = chip.query_captures(&pattern, &pis, 2);

        let mut s = crate::SeqSim::new(&c);
        s.set_state(&pattern);
        s.step(&pis);
        s.step(&pis);
        assert_eq!(two.scan_out, s.state());
    }

    #[test]
    fn shuffled_chain_applies_permutation() {
        let c = GeneratorConfig::new("sc", 4, 2, 6, 30)
            .with_seed(1)
            .generate();
        let mut rng = gf2::SplitMix64::new(5);
        let chain = ScanChain::shuffled(6, &mut rng);
        let mut chip = ScanChip::new(&c, chain.clone());
        let mut pattern = vec![false; 6];
        pattern[0] = true;
        chip.load(&pattern);
        // The single 1 landed in the flop at chain position 0.
        let resp = chip.unload();
        assert_eq!(resp, pattern);
    }

    #[test]
    fn packed_query_matches_scalar_chip_lane_by_lane() {
        use crate::packed::{pack_lanes, unpack_lane};
        use gf2::{Rng64, SplitMix64};

        let c = GeneratorConfig::new("pk", 6, 4, 10, 80)
            .with_seed(3)
            .generate();
        let mut rng = SplitMix64::new(21);
        let chain = ScanChain::shuffled(10, &mut rng);

        let patterns: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..10).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let pis: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..6).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let packed_pattern = pack_lanes(&patterns);
        let packed_pis = pack_lanes(&pis);

        let mut packed = PackedScanChip::new(&c, chain.clone());
        let resp = packed.query_captures(&packed_pattern, &packed_pis, 2);

        let mut scalar = ScanChip::new(&c, chain);
        for lane in 0..64 {
            let sresp = scalar.query_captures(&patterns[lane], &pis[lane], 2);
            assert_eq!(
                unpack_lane(&resp.scan_out, lane),
                sresp.scan_out,
                "scan_out lane {lane}"
            );
            assert_eq!(unpack_lane(&resp.po, lane), sresp.po, "po lane {lane}");
        }
    }

    #[test]
    fn packed_256_query_matches_scalar_chip_lane_by_lane() {
        use crate::packed::{pack_lanes_wide, unpack_lane_wide};
        use gf2::{Rng64, SplitMix64};

        let c = GeneratorConfig::new("pk256", 5, 3, 8, 60)
            .with_seed(9)
            .generate();
        let mut rng = SplitMix64::new(31);
        let chain = ScanChain::shuffled(8, &mut rng);

        let patterns: Vec<Vec<bool>> = (0..256)
            .map(|_| (0..8).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let pis: Vec<Vec<bool>> = (0..256)
            .map(|_| (0..5).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let packed_pattern: Vec<W256> = pack_lanes_wide(&patterns);
        let packed_pis: Vec<W256> = pack_lanes_wide(&pis);

        let mut packed = PackedScanChip256::new(&c, chain.clone());
        let resp = packed.query_captures(&packed_pattern, &packed_pis, 2);

        let mut scalar = ScanChip::new(&c, chain);
        for lane in (0..256).step_by(17) {
            let sresp = scalar.query_captures(&patterns[lane], &pis[lane], 2);
            assert_eq!(
                unpack_lane_wide(&resp.scan_out, lane),
                sresp.scan_out,
                "scan_out lane {lane}"
            );
            assert_eq!(unpack_lane_wide(&resp.po, lane), sresp.po, "po lane {lane}");
        }
    }

    #[test]
    fn packed_chain_permutes_match_scalar() {
        let chain = ScanChain::from_order(vec![2, 0, 1]);
        let words = vec![0xAAu64, 0xBB, 0xCC];
        let state = chain.pattern_to_state_packed(&words);
        assert_eq!(state, vec![0xBB, 0xCC, 0xAA]);
        assert_eq!(chain.state_to_pattern_packed(&state), words);
    }

    #[test]
    fn po_observed_during_capture() {
        let mut b = CircuitBuilder::new("po");
        let x = b.input("x");
        let q = b.dff("q", x);
        let y = b.gate(GateKind::Buf, &[q], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut chip = ScanChip::new(&c, ScanChain::natural(1));
        let resp = chip.query(&[true], &[false]);
        assert!(resp.po[0], "PO reads the loaded state during capture");
        assert!(!resp.scan_out[0], "flop captured x=false");
    }
}
