//! Scan-chain structure and unobfuscated scan test access.

use netlist::Circuit;

use crate::{Evaluator, ScanAccess, ScanResponse};

/// The order in which flops are stitched into a single scan chain.
///
/// Position 0 is the cell nearest the scan-in port; position `len-1` is
/// nearest scan-out. `order[pos]` is the index into `circuit.dffs()` of
/// the flop at chain position `pos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    order: Vec<usize>,
}

impl ScanChain {
    /// The natural chain: flop `i` at position `i`.
    pub fn natural(num_dffs: usize) -> Self {
        ScanChain {
            order: (0..num_dffs).collect(),
        }
    }

    /// A chain with an explicit flop order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &i in &order {
            assert!(i < order.len() && !seen[i], "order must be a permutation");
            seen[i] = true;
        }
        ScanChain { order }
    }

    /// A pseudo-random chain order (deterministic in the generator).
    pub fn shuffled<R: gf2::Rng64>(num_dffs: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..num_dffs).collect();
        rng.shuffle(&mut order);
        ScanChain { order }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Flop index at chain position `pos`.
    pub fn dff_at(&self, pos: usize) -> usize {
        self.order[pos]
    }

    /// Chain position of flop `dff`.
    pub fn position_of(&self, dff: usize) -> usize {
        self.order
            .iter()
            .position(|&d| d == dff)
            .expect("flop not in chain")
    }

    /// Converts a pattern indexed by chain position into a state vector
    /// indexed by flop index.
    pub fn pattern_to_state(&self, pattern: &[bool]) -> Vec<bool> {
        assert_eq!(pattern.len(), self.len(), "pattern length mismatch");
        let mut state = vec![false; self.len()];
        for (pos, &dff) in self.order.iter().enumerate() {
            state[dff] = pattern[pos];
        }
        state
    }

    /// Converts a state vector (by flop index) into a response indexed by
    /// chain position.
    pub fn state_to_pattern(&self, state: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.len(), "state length mismatch");
        self.order.iter().map(|&dff| state[dff]).collect()
    }
}

/// An *unlocked* scan-testable chip: plain load / capture / unload with no
/// obfuscation. This is the ground truth the attack's verification step
/// compares against, and the base the locked chip builds on.
///
/// # Example
///
/// ```
/// use netlist::generator::s208_like;
/// use sim::{ScanAccess, ScanChain, ScanChip};
///
/// let c = s208_like();
/// let chain = ScanChain::natural(c.num_dffs());
/// let mut chip = ScanChip::new(&c, chain);
/// let pattern = vec![true; 8];
/// let pis = vec![false; 10];
/// let resp = chip.query(&pattern, &pis);
/// assert_eq!(resp.scan_out.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ScanChip<'c> {
    evaluator: Evaluator<'c>,
    chain: ScanChain,
    state: Vec<bool>,
}

impl<'c> ScanChip<'c> {
    /// Creates a chip with the given chain; flops reset to zero.
    ///
    /// # Panics
    ///
    /// Panics if the chain length differs from the circuit's flop count.
    pub fn new(circuit: &'c Circuit, chain: ScanChain) -> Self {
        assert_eq!(
            chain.len(),
            circuit.num_dffs(),
            "chain must cover all flops"
        );
        ScanChip {
            evaluator: Evaluator::new(circuit),
            chain,
            state: vec![false; circuit.num_dffs()],
        }
    }

    /// The circuit inside the chip.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// The scan chain structure.
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// Shift-in: after `len` shift cycles the cell at position `pos` holds
    /// `pattern[pos]`.
    pub fn load(&mut self, pattern: &[bool]) {
        self.state = self.chain.pattern_to_state(pattern);
    }

    /// One capture cycle: flops load their D values; returns the primary
    /// outputs observed during the capture.
    pub fn capture(&mut self, pis: &[bool]) -> Vec<bool> {
        self.evaluator.eval(pis, &self.state);
        let po = self.evaluator.output_values();
        self.state = self.evaluator.next_state();
        po
    }

    /// Shift-out: returns the captured values indexed by chain position.
    pub fn unload(&self) -> Vec<bool> {
        self.chain.state_to_pattern(&self.state)
    }
}

impl ScanAccess for ScanChip<'_> {
    fn num_cells(&self) -> usize {
        self.chain.len()
    }

    fn num_pis(&self) -> usize {
        self.circuit().inputs().len()
    }

    fn num_pos(&self) -> usize {
        self.circuit().outputs().len()
    }

    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        assert!(captures >= 1, "at least one capture cycle");
        self.load(pattern);
        let mut po = Vec::new();
        for _ in 0..captures {
            po = self.capture(pis);
        }
        ScanResponse {
            scan_out: self.unload(),
            po,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::generator::{s208_like, GeneratorConfig};
    use netlist::{CircuitBuilder, GateKind};

    #[test]
    fn natural_chain_is_identity() {
        let chain = ScanChain::natural(4);
        let pattern = vec![true, false, true, true];
        assert_eq!(chain.pattern_to_state(&pattern), pattern);
        assert_eq!(chain.state_to_pattern(&pattern), pattern);
    }

    #[test]
    fn permuted_chain_roundtrip() {
        let chain = ScanChain::from_order(vec![2, 0, 1]);
        let pattern = vec![true, false, true];
        let state = chain.pattern_to_state(&pattern);
        assert_eq!(chain.state_to_pattern(&state), pattern);
        // position 0 holds flop 2
        assert_eq!(chain.dff_at(0), 2);
        assert_eq!(chain.position_of(2), 0);
        assert!(state[2]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        ScanChain::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn load_capture_unload_matches_seq_sim() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let pis: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        chip.load(&pattern);
        let po = chip.capture(&pis);
        let resp = chip.unload();

        let mut s = crate::SeqSim::new(&c);
        s.set_state(&pattern); // natural chain: pattern == state
        let po2 = s.step(&pis);
        assert_eq!(po, po2);
        assert_eq!(resp, s.state());
    }

    #[test]
    fn query_is_one_full_session() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern = vec![false; 8];
        let pis = vec![true; 10];
        let r1 = chip.query(&pattern, &pis);
        let r2 = chip.query(&pattern, &pis);
        assert_eq!(r1, r2, "queries are stateless sessions");
    }

    #[test]
    fn multi_capture_advances_state_twice() {
        let c = s208_like();
        let mut chip = ScanChip::new(&c, ScanChain::natural(8));
        let pattern: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let pis = vec![false; 10];
        let two = chip.query_captures(&pattern, &pis, 2);

        let mut s = crate::SeqSim::new(&c);
        s.set_state(&pattern);
        s.step(&pis);
        s.step(&pis);
        assert_eq!(two.scan_out, s.state());
    }

    #[test]
    fn shuffled_chain_applies_permutation() {
        let c = GeneratorConfig::new("sc", 4, 2, 6, 30)
            .with_seed(1)
            .generate();
        let mut rng = gf2::SplitMix64::new(5);
        let chain = ScanChain::shuffled(6, &mut rng);
        let mut chip = ScanChip::new(&c, chain.clone());
        let mut pattern = vec![false; 6];
        pattern[0] = true;
        chip.load(&pattern);
        // The single 1 landed in the flop at chain position 0.
        let resp = chip.unload();
        assert_eq!(resp, pattern);
    }

    #[test]
    fn po_observed_during_capture() {
        let mut b = CircuitBuilder::new("po");
        let x = b.input("x");
        let q = b.dff("q", x);
        let y = b.gate(GateKind::Buf, &[q], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut chip = ScanChip::new(&c, ScanChain::natural(1));
        let resp = chip.query(&[true], &[false]);
        assert!(resp.po[0], "PO reads the loaded state during capture");
        assert!(!resp.scan_out[0], "flop captured x=false");
    }
}
