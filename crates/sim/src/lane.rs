//! Lane-word abstraction: the packed kernels generic over lane width.
//!
//! PR 5's packed paths were hard-wired to `u64` (64 lanes). [`LaneWord`]
//! abstracts the per-net storage word so one set of kernels drives any
//! width: bit `l` of a lane word belongs to *lane* `l`, and every gate
//! kernel is a bitwise op on whole words. Two widths are provided:
//!
//! * `u64` — 64 lanes, one machine word per net (the PR 5 layout);
//! * [`W256`] — 256 lanes as a `[u64; 4]` block, so one schedule walk
//!   drives 256 patterns and the per-gate loop/index overhead amortizes
//!   over four words (the compiler is free to vectorize the four-word
//!   ops; DESIGN.md §5).
//!
//! Within a `W256` block, lane `l` lives in word `l / 64`, bit `l % 64`.
//! The differential-test harness pins every width against the scalar
//! `Evaluator` reference.

use std::fmt;

/// One per-net storage word of a fixed number of independent lanes.
///
/// Implementations must satisfy, for all lanes `l < LANES`:
/// `zeros().lane(l) == false`, `ones().lane(l) == true`, and the bitwise
/// ops must act lane-wise (`a.and(b).lane(l) == (a.lane(l) & b.lane(l))`,
/// and likewise for `or` / `xor` / `not`).
pub trait LaneWord:
    Copy + Clone + Eq + PartialEq + Default + Send + Sync + fmt::Debug + 'static
{
    /// Number of independent lanes in one word.
    const LANES: usize;

    /// The all-lanes-false word.
    fn zeros() -> Self;

    /// The all-lanes-true word.
    fn ones() -> Self;

    /// Lane-wise NOT.
    fn not(self) -> Self;

    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;

    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;

    /// Lane-wise XOR.
    fn xor(self, other: Self) -> Self;

    /// Reads one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= Self::LANES`.
    fn lane(self, lane: usize) -> bool;

    /// Writes one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= Self::LANES`.
    fn set_lane(&mut self, lane: usize, bit: bool);
}

impl LaneWord for u64 {
    const LANES: usize = 64;

    fn zeros() -> Self {
        0
    }

    fn ones() -> Self {
        !0
    }

    fn not(self) -> Self {
        !self
    }

    fn and(self, other: Self) -> Self {
        self & other
    }

    fn or(self, other: Self) -> Self {
        self | other
    }

    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    fn lane(self, lane: usize) -> bool {
        assert!(lane < 64, "lane {lane} out of range for u64");
        (self >> lane) & 1 == 1
    }

    fn set_lane(&mut self, lane: usize, bit: bool) {
        assert!(lane < 64, "lane {lane} out of range for u64");
        *self = (*self & !(1u64 << lane)) | (u64::from(bit) << lane);
    }
}

/// A 256-lane block: four `u64` words per net. Lane `l` is bit `l % 64`
/// of word `l / 64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct W256(pub [u64; 4]);

impl LaneWord for W256 {
    const LANES: usize = 256;

    fn zeros() -> Self {
        W256([0; 4])
    }

    fn ones() -> Self {
        W256([!0; 4])
    }

    fn not(self) -> Self {
        let W256([a, b, c, d]) = self;
        W256([!a, !b, !c, !d])
    }

    fn and(self, other: Self) -> Self {
        let W256(a) = self;
        let W256(b) = other;
        W256([a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]])
    }

    fn or(self, other: Self) -> Self {
        let W256(a) = self;
        let W256(b) = other;
        W256([a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]])
    }

    fn xor(self, other: Self) -> Self {
        let W256(a) = self;
        let W256(b) = other;
        W256([a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]])
    }

    fn lane(self, lane: usize) -> bool {
        assert!(lane < 256, "lane {lane} out of range for W256");
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    fn set_lane(&mut self, lane: usize, bit: bool) {
        assert!(lane < 256, "lane {lane} out of range for W256");
        let w = &mut self.0[lane / 64];
        let shift = lane % 64;
        *w = (*w & !(1u64 << shift)) | (u64::from(bit) << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<W: LaneWord>() {
        assert!(W::LANES >= 1);
        for l in 0..W::LANES {
            assert!(!W::zeros().lane(l));
            assert!(W::ones().lane(l));
            assert!(!W::ones().not().lane(l));
        }
        // lane-wise ops on a pseudo-random pair of words
        let mut a = W::zeros();
        let mut b = W::zeros();
        for l in 0..W::LANES {
            a.set_lane(l, l % 3 == 0);
            b.set_lane(l, l % 2 == 0);
        }
        for l in 0..W::LANES {
            let (x, y) = (a.lane(l), b.lane(l));
            assert_eq!(a.and(b).lane(l), x & y, "and lane {l}");
            assert_eq!(a.or(b).lane(l), x | y, "or lane {l}");
            assert_eq!(a.xor(b).lane(l), x ^ y, "xor lane {l}");
            assert_eq!(a.not().lane(l), !x, "not lane {l}");
        }
    }

    #[test]
    fn u64_satisfies_the_lane_laws() {
        check_laws::<u64>();
    }

    #[test]
    fn w256_satisfies_the_lane_laws() {
        check_laws::<W256>();
    }

    #[test]
    fn w256_lane_maps_to_word_and_bit() {
        let mut w = W256::zeros();
        w.set_lane(64, true);
        assert_eq!(w.0, [0, 1, 0, 0]);
        w.set_lane(255, true);
        assert_eq!(w.0[3], 1u64 << 63);
        w.set_lane(64, false);
        assert_eq!(w.0[1], 0);
        assert!(w.lane(255));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn w256_lane_bounds_are_checked() {
        let _ = W256::zeros().lane(256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn u64_lane_bounds_are_checked() {
        let _ = 0u64.lane(64);
    }
}
