//! Levelized evaluation of the combinational core.

use netlist::{Circuit, GateKind, NetId};

/// Reusable combinational evaluator.
///
/// Holds a per-net value buffer sized for one circuit so repeated
/// evaluations (oracle queries, sequential stepping) do not allocate.
/// Sources are the primary inputs and flop outputs; everything else is
/// computed in topological order.
///
/// # Example
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
/// use sim::Evaluator;
///
/// let mut b = CircuitBuilder::new("mux-ish");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate(GateKind::Or, &[x, y], "z");
/// b.output(z);
/// let c = b.finish().unwrap();
///
/// let mut ev = Evaluator::new(&c);
/// ev.eval(&[false, true], &[]);
/// assert!(ev.output_values()[0]);
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'c> {
    circuit: &'c Circuit,
    values: Vec<bool>,
}

impl<'c> Evaluator<'c> {
    /// Creates an evaluator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        Evaluator {
            circuit,
            values: vec![false; circuit.num_nets()],
        }
    }

    /// The circuit being evaluated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Evaluates all nets from primary-input values and flop-output values
    /// (`state[i]` is the Q value of `circuit.dffs()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `pis` or `state` have the wrong length.
    pub fn eval(&mut self, pis: &[bool], state: &[bool]) {
        let c = self.circuit;
        assert_eq!(pis.len(), c.inputs().len(), "PI count mismatch");
        assert_eq!(state.len(), c.dffs().len(), "state length mismatch");
        for (i, &net) in c.inputs().iter().enumerate() {
            self.values[net.index()] = pis[i];
        }
        for (i, dff) in c.dffs().iter().enumerate() {
            self.values[dff.q.index()] = state[i];
        }
        // Evaluate each gate by indexing `values` directly — no per-gate
        // fanin copy. This stays on `topo_gates` order (independent of the
        // levelized schedule) so it remains a reference implementation for
        // the word-parallel path.
        for &gi in c.topo_gates() {
            let gate = &c.gates()[gi];
            let vals = &self.values;
            let out = match gate.kind {
                GateKind::Buf => vals[gate.inputs[0].index()],
                GateKind::Not => !vals[gate.inputs[0].index()],
                GateKind::And => gate.inputs.iter().all(|n| vals[n.index()]),
                GateKind::Nand => !gate.inputs.iter().all(|n| vals[n.index()]),
                GateKind::Or => gate.inputs.iter().any(|n| vals[n.index()]),
                GateKind::Nor => !gate.inputs.iter().any(|n| vals[n.index()]),
                GateKind::Xor => gate.inputs.iter().fold(false, |a, n| a ^ vals[n.index()]),
                GateKind::Xnor => !gate.inputs.iter().fold(false, |a, n| a ^ vals[n.index()]),
                GateKind::Const0 => false,
                GateKind::Const1 => true,
            };
            self.values[gate.output.index()] = out;
        }
    }

    /// Value of a net after the last [`Evaluator::eval`].
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Values of the primary outputs after the last eval.
    pub fn output_values(&self) -> Vec<bool> {
        self.circuit
            .outputs()
            .iter()
            .map(|&n| self.value(n))
            .collect()
    }

    /// Next-state vector (each flop's D value) after the last eval.
    pub fn next_state(&self) -> Vec<bool> {
        self.circuit
            .dffs()
            .iter()
            .map(|dff| self.value(dff.d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{CircuitBuilder, GateKind};

    fn full_adder() -> Circuit {
        let mut b = CircuitBuilder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let s1 = b.gate(GateKind::Xor, &[a, x], "s1");
        let sum = b.gate(GateKind::Xor, &[s1, cin], "sum");
        let c1 = b.gate(GateKind::And, &[a, x], "c1");
        let c2 = b.gate(GateKind::And, &[s1, cin], "c2");
        let cout = b.gate(GateKind::Or, &[c1, c2], "cout");
        b.output(sum);
        b.output(cout);
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        let mut ev = Evaluator::new(&c);
        for bits in 0..8u32 {
            let a = bits & 1 == 1;
            let x = bits & 2 == 2;
            let cin = bits & 4 == 4;
            ev.eval(&[a, x, cin], &[]);
            let out = ev.output_values();
            let total = u32::from(a) + u32::from(x) + u32::from(cin);
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn state_feeds_logic() {
        let mut b = CircuitBuilder::new("st");
        let x = b.input("x");
        let q = b.dff("q", x);
        let y = b.gate(GateKind::Xor, &[q, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut ev = Evaluator::new(&c);
        ev.eval(&[true], &[false]);
        assert!(ev.output_values()[0]);
        ev.eval(&[true], &[true]);
        assert!(!ev.output_values()[0]);
        // next state is the D pin, i.e. x
        assert_eq!(ev.next_state(), vec![true]);
    }

    #[test]
    fn reuse_does_not_leak_previous_values() {
        let c = full_adder();
        let mut ev = Evaluator::new(&c);
        ev.eval(&[true, true, true], &[]);
        ev.eval(&[false, false, false], &[]);
        assert_eq!(ev.output_values(), vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "PI count mismatch")]
    fn wrong_pi_count_panics() {
        let c = full_adder();
        Evaluator::new(&c).eval(&[true], &[]);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn wrong_state_len_panics() {
        let c = full_adder();
        Evaluator::new(&c).eval(&[true, false, true], &[false]);
    }
}
