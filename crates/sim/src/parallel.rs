//! Multi-core fan-out for the packed simulation paths.
//!
//! One [`EvalSchedule`](netlist::EvalSchedule) is computed per circuit
//! and is strictly read-only during evaluation, so N-pattern workloads
//! split cleanly: pack the patterns into `W::LANES`-wide lane blocks and
//! evaluate the blocks on worker threads, each with its own private
//! value array. [`ParPackedEvaluator`] does that for combinational
//! sweeps and [`ParPackedScanChip`] for whole load/capture/unload scan
//! sessions.
//!
//! Thread counts follow the workspace policy (`par::resolve`): an
//! explicit [`with_threads`](ParPackedEvaluator::with_threads) knob
//! beats the `DU_THREADS` environment variable beats the machine's
//! available parallelism. Workloads of at most one lane block (N ≤
//! `W::LANES` patterns) and `threads = 1` configurations run serially on
//! the calling thread — the parallel path is never entered for work
//! that cannot use it.

use netlist::Circuit;

use crate::lane::LaneWord;
use crate::packed::{pack_lanes_wide, unpack_lane_wide, WidePackedEvaluator};
use crate::scan::{ScanChain, WidePackedScanChip, WidePackedScanResponse};
use crate::ScanResponse;

/// The packed result of evaluating one lane block: primary outputs and
/// next state, one `W` word per net position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedFrame<W> {
    /// Packed primary-output words.
    pub po: Vec<W>,
    /// Packed next-state (flop D) words.
    pub next_state: Vec<W>,
}

/// Multi-core combinational evaluation over lane blocks.
///
/// The evaluator itself holds no mutable state — each worker thread
/// builds a private [`WidePackedEvaluator`] over the shared circuit and
/// its read-only schedule, so `eval_blocks` takes `&self` and blocks
/// fan out without synchronization.
///
/// # Example
///
/// ```
/// use netlist::generator::s208_like;
/// use sim::ParPackedEvaluator;
///
/// let c = s208_like();
/// let ev: ParPackedEvaluator = ParPackedEvaluator::new(&c).with_threads(2);
/// let stimuli: Vec<(Vec<bool>, Vec<bool>)> = (0..100)
///     .map(|i| (vec![i % 2 == 0; 10], vec![i % 3 == 0; 8]))
///     .collect();
/// let frames = ev.eval_patterns(&stimuli);
/// assert_eq!(frames.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct ParPackedEvaluator<'c, W: LaneWord = u64> {
    circuit: &'c Circuit,
    threads: usize,
    _lane: std::marker::PhantomData<W>,
}

impl<'c, W: LaneWord> ParPackedEvaluator<'c, W> {
    /// Creates an evaluator with the default thread count
    /// (`DU_THREADS` or the machine's available parallelism).
    pub fn new(circuit: &'c Circuit) -> Self {
        ParPackedEvaluator {
            circuit,
            threads: par::resolve(None),
            _lane: std::marker::PhantomData,
        }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lanes per block (`W::LANES`).
    pub fn lane_width(&self) -> usize {
        W::LANES
    }

    /// The circuit being evaluated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Evaluates packed lane blocks — `blocks[i]` is `(pis, state)` in
    /// the [`WidePackedEvaluator::eval`] layout — across the configured
    /// threads, returning one [`PackedFrame`] per block in input order.
    ///
    /// # Panics
    ///
    /// Panics if any block's `pis` or `state` have the wrong length.
    pub fn eval_blocks(&self, blocks: &[(Vec<W>, Vec<W>)]) -> Vec<PackedFrame<W>> {
        let circuit = self.circuit;
        par::map_chunks(blocks, self.threads, move |_, chunk| {
            let mut ev = WidePackedEvaluator::<W>::new(circuit);
            chunk
                .iter()
                .map(|(pis, state)| {
                    ev.eval(pis, state);
                    PackedFrame {
                        po: ev.output_values(),
                        next_state: ev.next_state(),
                    }
                })
                .collect()
        })
    }

    /// Evaluates N scalar stimuli — `stimuli[i]` is `(pi bits, state
    /// bits)` — by packing them into `W::LANES`-wide blocks, fanning the
    /// blocks across threads, and unpacking per-stimulus `(po bits,
    /// next-state bits)` results in input order.
    ///
    /// With `N <= W::LANES` (a single block) the evaluation runs
    /// serially on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if stimulus vector lengths do not match the circuit.
    pub fn eval_patterns(&self, stimuli: &[(Vec<bool>, Vec<bool>)]) -> Vec<(Vec<bool>, Vec<bool>)> {
        let blocks: Vec<(Vec<W>, Vec<W>)> = stimuli
            .chunks(W::LANES)
            .map(|group| {
                let pis: Vec<Vec<bool>> = group.iter().map(|(p, _)| p.clone()).collect();
                let states: Vec<Vec<bool>> = group.iter().map(|(_, s)| s.clone()).collect();
                (pack_lanes_wide(&pis), pack_lanes_wide(&states))
            })
            .collect();
        // An all-flop no-PI (or vice versa) circuit packs one side to an
        // empty word vector; re-zero-fill so eval sees the right lengths.
        let blocks: Vec<(Vec<W>, Vec<W>)> = blocks
            .into_iter()
            .map(|(mut pis, mut state)| {
                pis.resize(self.circuit.inputs().len(), W::zeros());
                state.resize(self.circuit.num_dffs(), W::zeros());
                (pis, state)
            })
            .collect();
        let frames = self.eval_blocks(&blocks);
        stimuli
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let frame = &frames[i / W::LANES];
                let lane = i % W::LANES;
                (
                    unpack_lane_wide(&frame.po, lane),
                    unpack_lane_wide(&frame.next_state, lane),
                )
            })
            .collect()
    }
}

/// Multi-core scan-session fan-out: batches of independent
/// load/capture/unload sessions packed `W::LANES` per block and answered
/// across threads.
///
/// Scan sessions are stateless (each starts from its loaded pattern), so
/// a batch splits perfectly; each worker owns a private
/// [`WidePackedScanChip`] over the shared circuit and chain.
#[derive(Debug, Clone)]
pub struct ParPackedScanChip<'c, W: LaneWord = u64> {
    circuit: &'c Circuit,
    chain: ScanChain,
    threads: usize,
    _lane: std::marker::PhantomData<W>,
}

impl<'c, W: LaneWord> ParPackedScanChip<'c, W> {
    /// Creates a batched chip with the given chain and the default
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the chain length differs from the circuit's flop count.
    pub fn new(circuit: &'c Circuit, chain: ScanChain) -> Self {
        assert_eq!(
            chain.len(),
            circuit.num_dffs(),
            "chain must cover all flops"
        );
        ParPackedScanChip {
            circuit,
            chain,
            threads: par::resolve(None),
            _lane: std::marker::PhantomData,
        }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lanes per block (`W::LANES`).
    pub fn lane_width(&self) -> usize {
        W::LANES
    }

    /// Answers packed session blocks — `sessions[i]` is `(pattern
    /// words, pi words)` — with `captures` capture cycles each, fanned
    /// across the configured threads, in input order.
    ///
    /// # Panics
    ///
    /// Panics if `captures == 0` or vector lengths are wrong.
    pub fn query_blocks(
        &self,
        sessions: &[(Vec<W>, Vec<W>)],
        captures: usize,
    ) -> Vec<WidePackedScanResponse<W>> {
        assert!(captures >= 1, "at least one capture cycle");
        let circuit = self.circuit;
        let chain = &self.chain;
        par::map_chunks(sessions, self.threads, move |_, chunk| {
            let mut chip = WidePackedScanChip::<W>::new(circuit, chain.clone());
            chunk
                .iter()
                .map(|(pattern, pis)| chip.query_captures(pattern, pis, captures))
                .collect()
        })
    }

    /// Answers N scalar sessions — `sessions[i]` is `(pattern bits, pi
    /// bits)` — by packing them `W::LANES` per block, fanning blocks
    /// across threads, and unpacking per-session [`ScanResponse`]s in
    /// input order. Single-block batches (N ≤ `W::LANES`) run serially.
    ///
    /// The scalar [`ScanChip`] answers the same sessions bit-for-bit;
    /// the differential tests pin that equivalence.
    ///
    /// # Panics
    ///
    /// Panics if `captures == 0` or vector lengths are wrong.
    pub fn query_patterns(
        &self,
        sessions: &[(Vec<bool>, Vec<bool>)],
        captures: usize,
    ) -> Vec<ScanResponse> {
        let blocks: Vec<(Vec<W>, Vec<W>)> = sessions
            .chunks(W::LANES)
            .map(|group| {
                let patterns: Vec<Vec<bool>> = group.iter().map(|(p, _)| p.clone()).collect();
                let pis: Vec<Vec<bool>> = group.iter().map(|(_, q)| q.clone()).collect();
                let mut packed_patterns: Vec<W> = pack_lanes_wide(&patterns);
                let mut packed_pis: Vec<W> = pack_lanes_wide(&pis);
                packed_patterns.resize(self.circuit.num_dffs(), W::zeros());
                packed_pis.resize(self.circuit.inputs().len(), W::zeros());
                (packed_patterns, packed_pis)
            })
            .collect();
        let responses = self.query_blocks(&blocks, captures);
        sessions
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let resp = &responses[i / W::LANES];
                let lane = i % W::LANES;
                ScanResponse {
                    scan_out: unpack_lane_wide(&resp.scan_out, lane),
                    po: unpack_lane_wide(&resp.po, lane),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::W256;
    use crate::{Evaluator, ScanAccess, ScanChip};
    use gf2::{Rng64, SplitMix64};
    use netlist::generator::GeneratorConfig;

    fn random_stimuli(c: &Circuit, n: usize, rng: &mut SplitMix64) -> Vec<(Vec<bool>, Vec<bool>)> {
        (0..n)
            .map(|_| {
                (
                    (0..c.inputs().len())
                        .map(|_| rng.next_u64() & 1 == 1)
                        .collect(),
                    (0..c.num_dffs()).map(|_| rng.next_u64() & 1 == 1).collect(),
                )
            })
            .collect()
    }

    fn scalar_frames(
        c: &Circuit,
        stimuli: &[(Vec<bool>, Vec<bool>)],
    ) -> Vec<(Vec<bool>, Vec<bool>)> {
        let mut ev = Evaluator::new(c);
        stimuli
            .iter()
            .map(|(pis, state)| {
                ev.eval(pis, state);
                (ev.output_values(), ev.next_state())
            })
            .collect()
    }

    #[test]
    fn par_eval_matches_scalar_across_thread_counts_and_widths() {
        let c = GeneratorConfig::new("par", 9, 5, 14, 160)
            .with_seed(7)
            .generate();
        let mut rng = SplitMix64::new(99);
        // 150 patterns: ragged final block for both 64- and 256-lane words
        let stimuli = random_stimuli(&c, 150, &mut rng);
        let expect = scalar_frames(&c, &stimuli);
        for threads in [1, 2, 5] {
            let ev64: ParPackedEvaluator = ParPackedEvaluator::new(&c).with_threads(threads);
            assert_eq!(ev64.eval_patterns(&stimuli), expect, "u64 t={threads}");
            let ev256: ParPackedEvaluator<W256> = ParPackedEvaluator::new(&c).with_threads(threads);
            assert_eq!(ev256.eval_patterns(&stimuli), expect, "W256 t={threads}");
        }
    }

    #[test]
    fn single_block_batches_take_the_serial_path() {
        let c = GeneratorConfig::new("small", 4, 3, 6, 40)
            .with_seed(3)
            .generate();
        let mut rng = SplitMix64::new(1);
        let stimuli = random_stimuli(&c, 10, &mut rng); // << one block
        let ev: ParPackedEvaluator = ParPackedEvaluator::new(&c).with_threads(8);
        assert_eq!(ev.eval_patterns(&stimuli), scalar_frames(&c, &stimuli));
        assert_eq!(ev.threads(), 8);
        assert_eq!(ev.lane_width(), 64);
    }

    #[test]
    fn par_scan_chip_matches_scalar_chip() {
        let c = GeneratorConfig::new("parscan", 6, 4, 9, 90)
            .with_seed(21)
            .generate();
        let mut rng = SplitMix64::new(5);
        let chain = ScanChain::shuffled(c.num_dffs(), &mut rng);
        let sessions: Vec<(Vec<bool>, Vec<bool>)> = (0..70)
            .map(|_| {
                (
                    (0..c.num_dffs()).map(|_| rng.next_u64() & 1 == 1).collect(),
                    (0..c.inputs().len())
                        .map(|_| rng.next_u64() & 1 == 1)
                        .collect(),
                )
            })
            .collect();
        let mut scalar = ScanChip::new(&c, chain.clone());
        for captures in [1, 2] {
            let expect: Vec<ScanResponse> = sessions
                .iter()
                .map(|(pattern, pis)| scalar.query_captures(pattern, pis, captures))
                .collect();
            for threads in [1, 3] {
                let par_chip: ParPackedScanChip =
                    ParPackedScanChip::new(&c, chain.clone()).with_threads(threads);
                assert_eq!(
                    par_chip.query_patterns(&sessions, captures),
                    expect,
                    "captures {captures}, threads {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "chain must cover all flops")]
    fn wrong_chain_length_panics() {
        let c = GeneratorConfig::new("bad", 3, 2, 5, 30)
            .with_seed(2)
            .generate();
        let _: ParPackedScanChip = ParPackedScanChip::new(&c, ScanChain::natural(3));
    }
}
