//! 64-lane word-parallel combinational evaluation.
//!
//! The scalar [`Evaluator`](crate::Evaluator) stores one `bool` per net
//! and walks the circuit once per pattern. [`PackedEvaluator`] stores one
//! `u64` per net — bit `l` of every word belongs to *lane* `l` — so a
//! single sweep evaluates 64 independent patterns: every gate becomes one
//! or two bitwise instructions per fanin instead of a per-pattern branch.
//! Both evaluators implement identical semantics; the scalar one is the
//! differential-test reference (DESIGN.md §5).
//!
//! Gate visits follow the circuit's precomputed
//! [`EvalSchedule`](netlist::EvalSchedule): levelized order with a
//! flattened fanin index, so the inner loop is a linear walk over two
//! dense arrays with no per-gate allocation or pointer chasing.

use netlist::{Circuit, GateKind, NetId};

/// Packs up to 64 per-pattern `bool` vectors into lane words.
///
/// `patterns[l]` becomes lane `l`: the returned vector has one `u64` per
/// position, with bit `l` of word `i` equal to `patterns[l][i]`. Unused
/// lanes (when fewer than 64 patterns are given) are zero.
///
/// # Panics
///
/// Panics if more than 64 patterns are given or lengths differ.
pub fn pack_lanes(patterns: &[Vec<bool>]) -> Vec<u64> {
    assert!(patterns.len() <= 64, "at most 64 lanes per word");
    let len = patterns.first().map_or(0, Vec::len);
    assert!(
        patterns.iter().all(|p| p.len() == len),
        "all patterns must share one length"
    );
    let mut words = vec![0u64; len];
    for (lane, pattern) in patterns.iter().enumerate() {
        for (i, &bit) in pattern.iter().enumerate() {
            words[i] |= u64::from(bit) << lane;
        }
    }
    words
}

/// Extracts one lane from packed words: the inverse of [`pack_lanes`].
///
/// # Panics
///
/// Panics if `lane >= 64`.
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    assert!(lane < 64, "lane {lane} out of range");
    words.iter().map(|&w| (w >> lane) & 1 == 1).collect()
}

/// Reusable 64-lane combinational evaluator.
///
/// # Example
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
/// use sim::PackedEvaluator;
///
/// let mut b = CircuitBuilder::new("xor");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate(GateKind::Xor, &[x, y], "z");
/// b.output(z);
/// let c = b.finish().unwrap();
///
/// let mut ev = PackedEvaluator::new(&c);
/// // lane l of each input word is that lane's pattern bit
/// ev.eval(&[0b01, 0b11], &[]);
/// assert_eq!(ev.output_values(), vec![0b10]); // 0^1=1 in lane 1 only
/// ```
#[derive(Debug, Clone)]
pub struct PackedEvaluator<'c> {
    circuit: &'c Circuit,
    values: Vec<u64>,
}

impl<'c> PackedEvaluator<'c> {
    /// Creates an evaluator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        PackedEvaluator {
            circuit,
            values: vec![0; circuit.num_nets()],
        }
    }

    /// The circuit being evaluated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Evaluates all nets for 64 lanes at once from packed primary-input
    /// words and packed flop-output words (`state[i]` is the Q word of
    /// `circuit.dffs()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `pis` or `state` have the wrong length.
    pub fn eval(&mut self, pis: &[u64], state: &[u64]) {
        let c = self.circuit;
        assert_eq!(pis.len(), c.inputs().len(), "PI count mismatch");
        assert_eq!(state.len(), c.dffs().len(), "state length mismatch");
        for (i, &net) in c.inputs().iter().enumerate() {
            self.values[net.index()] = pis[i];
        }
        for (i, dff) in c.dffs().iter().enumerate() {
            self.values[dff.q.index()] = state[i];
        }
        let sched = c.schedule();
        let fanins = sched.fanins();
        let values = &mut self.values;
        for op in sched.ops() {
            let ins = &fanins[op.fanin_start as usize..op.fanin_end as usize];
            let word = match op.kind {
                GateKind::Buf => values[ins[0] as usize],
                GateKind::Not => !values[ins[0] as usize],
                GateKind::And => ins.iter().fold(!0u64, |acc, &f| acc & values[f as usize]),
                GateKind::Nand => !ins.iter().fold(!0u64, |acc, &f| acc & values[f as usize]),
                GateKind::Or => ins.iter().fold(0u64, |acc, &f| acc | values[f as usize]),
                GateKind::Nor => !ins.iter().fold(0u64, |acc, &f| acc | values[f as usize]),
                GateKind::Xor => ins.iter().fold(0u64, |acc, &f| acc ^ values[f as usize]),
                GateKind::Xnor => !ins.iter().fold(0u64, |acc, &f| acc ^ values[f as usize]),
                GateKind::Const0 => 0,
                GateKind::Const1 => !0u64,
            };
            values[op.output as usize] = word;
        }
    }

    /// Packed value of a net after the last [`PackedEvaluator::eval`].
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Value of a net in one lane after the last eval.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn lane_value(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < 64, "lane {lane} out of range");
        (self.values[net.index()] >> lane) & 1 == 1
    }

    /// Packed values of the primary outputs after the last eval.
    pub fn output_values(&self) -> Vec<u64> {
        self.circuit
            .outputs()
            .iter()
            .map(|&n| self.value(n))
            .collect()
    }

    /// Packed next-state vector (each flop's D word) after the last eval.
    pub fn next_state(&self) -> Vec<u64> {
        self.circuit
            .dffs()
            .iter()
            .map(|dff| self.value(dff.d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use gf2::{Rng64, SplitMix64};
    use netlist::generator::GeneratorConfig;
    use netlist::CircuitBuilder;

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = SplitMix64::new(3);
        let patterns: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..17).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let words = pack_lanes(&patterns);
        assert_eq!(words.len(), 17);
        for (lane, pattern) in patterns.iter().enumerate() {
            assert_eq!(&unpack_lane(&words, lane), pattern, "lane {lane}");
        }
    }

    #[test]
    fn pack_fewer_than_64_lanes_zero_fills() {
        let words = pack_lanes(&[vec![true, false]]);
        assert_eq!(words, vec![1, 0]);
        assert_eq!(unpack_lane(&words, 63), vec![false, false]);
    }

    #[test]
    fn every_gate_kind_matches_scalar_on_all_lane_patterns() {
        // A circuit exercising every kind; 64 lanes of random stimulus.
        let mut b = CircuitBuilder::new("kinds");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let g0 = b.gate(GateKind::Buf, &[x], "g0");
        let g1 = b.gate(GateKind::Not, &[y], "g1");
        let g2 = b.gate(GateKind::And, &[x, y, z], "g2");
        let g3 = b.gate(GateKind::Nand, &[g0, g1], "g3");
        let g4 = b.gate(GateKind::Or, &[g2, g3, z], "g4");
        let g5 = b.gate(GateKind::Nor, &[x, g4], "g5");
        let g6 = b.gate(GateKind::Xor, &[g4, g5, y], "g6");
        let g7 = b.gate(GateKind::Xnor, &[g6, z], "g7");
        let c0 = b.gate(GateKind::Const0, &[], "c0");
        let c1 = b.gate(GateKind::Const1, &[], "c1");
        let g8 = b.gate(GateKind::Or, &[g7, c0, c1], "g8");
        b.output(g8);
        b.output(g6);
        let c = b.finish().unwrap();

        let mut rng = SplitMix64::new(9);
        let pi_words: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut packed = PackedEvaluator::new(&c);
        packed.eval(&pi_words, &[]);
        let mut scalar = Evaluator::new(&c);
        for lane in 0..64 {
            let pis = unpack_lane(&pi_words, lane);
            scalar.eval(&pis, &[]);
            for net in [g0, g1, g2, g3, g4, g5, g6, g7, g8] {
                assert_eq!(
                    packed.lane_value(net, lane),
                    scalar.value(net),
                    "net {net} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn random_circuit_all_lanes_match_scalar() {
        let cfg = GeneratorConfig::new("packed-diff", 8, 6, 12, 120).with_seed(42);
        let c = cfg.generate();
        let mut rng = SplitMix64::new(77);
        let pis: Vec<u64> = (0..c.inputs().len()).map(|_| rng.next_u64()).collect();
        let state: Vec<u64> = (0..c.num_dffs()).map(|_| rng.next_u64()).collect();

        let mut packed = PackedEvaluator::new(&c);
        packed.eval(&pis, &state);
        let packed_po = packed.output_values();
        let packed_ns = packed.next_state();

        let mut scalar = Evaluator::new(&c);
        for lane in 0..64 {
            scalar.eval(&unpack_lane(&pis, lane), &unpack_lane(&state, lane));
            assert_eq!(
                unpack_lane(&packed_po, lane),
                scalar.output_values(),
                "PO lane {lane}"
            );
            assert_eq!(
                unpack_lane(&packed_ns, lane),
                scalar.next_state(),
                "next-state lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "PI count mismatch")]
    fn wrong_pi_count_panics() {
        let cfg = GeneratorConfig::new("p", 4, 2, 3, 20).with_seed(1);
        let c = cfg.generate();
        PackedEvaluator::new(&c).eval(&[0], &[0, 0, 0]);
    }
}
