//! Word-parallel combinational evaluation, generic over lane width.
//!
//! The scalar [`Evaluator`](crate::Evaluator) stores one `bool` per net
//! and walks the circuit once per pattern. [`WidePackedEvaluator`] stores
//! one [`LaneWord`] per net — bit `l` of every word belongs to *lane* `l`
//! — so a single sweep evaluates `W::LANES` independent patterns: every
//! gate becomes one or two bitwise instructions per fanin instead of a
//! per-pattern branch. [`PackedEvaluator`] is the 64-lane (`u64`)
//! instantiation, [`PackedEvaluator256`] the 256-lane ([`W256`]) one.
//! All widths implement identical semantics; the scalar evaluator is the
//! differential-test reference (DESIGN.md §5).
//!
//! Gate visits follow the circuit's precomputed
//! [`EvalSchedule`](netlist::EvalSchedule): levelized order with a
//! flattened fanin index, so the inner loop is a linear walk over two
//! dense arrays with no per-gate allocation or pointer chasing. The
//! schedule is read-only and shared — `sim::par` fans lane blocks out
//! across threads against one schedule.

use std::fmt;

use netlist::{Circuit, GateKind, NetId};

use crate::lane::{LaneWord, W256};

/// Why a set of patterns cannot be packed into lane words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PackError {
    /// More patterns than the lane word has lanes.
    TooManyPatterns {
        /// Number of patterns given.
        got: usize,
        /// Lane capacity of the word type.
        lanes: usize,
    },
    /// A pattern's length differs from the first pattern's.
    RaggedPattern {
        /// Index of the offending pattern.
        index: usize,
        /// Its length.
        len: usize,
        /// The length of pattern 0, which every pattern must match.
        expected: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::TooManyPatterns { got, lanes } => {
                write!(f, "{got} patterns exceed the {lanes}-lane word capacity")
            }
            PackError::RaggedPattern {
                index,
                len,
                expected,
            } => write!(
                f,
                "pattern {index} has length {len}, expected {expected} (all patterns must share one length)"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// Packs up to `W::LANES` per-pattern `bool` vectors into lane words.
///
/// `patterns[l]` becomes lane `l`: the returned vector has one word per
/// position, with lane `l` of word `i` equal to `patterns[l][i]`. Unused
/// lanes (when fewer than `W::LANES` patterns are given) are zero.
///
/// # Errors
///
/// [`PackError::TooManyPatterns`] if more than `W::LANES` patterns are
/// given, [`PackError::RaggedPattern`] if lengths differ — never a
/// silent truncation or out-of-bounds lane shift.
pub fn try_pack_lanes_wide<W: LaneWord>(patterns: &[Vec<bool>]) -> Result<Vec<W>, PackError> {
    if patterns.len() > W::LANES {
        return Err(PackError::TooManyPatterns {
            got: patterns.len(),
            lanes: W::LANES,
        });
    }
    let len = patterns.first().map_or(0, Vec::len);
    for (index, p) in patterns.iter().enumerate() {
        if p.len() != len {
            return Err(PackError::RaggedPattern {
                index,
                len: p.len(),
                expected: len,
            });
        }
    }
    let mut words = vec![W::zeros(); len];
    for (lane, pattern) in patterns.iter().enumerate() {
        for (i, &bit) in pattern.iter().enumerate() {
            if bit {
                words[i].set_lane(lane, true);
            }
        }
    }
    Ok(words)
}

/// [`try_pack_lanes_wide`] that panics on invalid input.
///
/// # Panics
///
/// Panics if more than `W::LANES` patterns are given or lengths differ
/// (guard-tested; see `PackError` for the typed alternative).
pub fn pack_lanes_wide<W: LaneWord>(patterns: &[Vec<bool>]) -> Vec<W> {
    try_pack_lanes_wide(patterns).unwrap_or_else(|e| panic!("pack_lanes: {e}"))
}

/// Extracts one lane from packed words: the inverse of
/// [`pack_lanes_wide`].
///
/// # Panics
///
/// Panics if `lane >= W::LANES`.
pub fn unpack_lane_wide<W: LaneWord>(words: &[W], lane: usize) -> Vec<bool> {
    assert!(
        lane < W::LANES,
        "lane {lane} out of range for a {}-lane word",
        W::LANES
    );
    words.iter().map(|w| w.lane(lane)).collect()
}

/// 64-lane [`try_pack_lanes_wide`]: packs up to 64 patterns into `u64`
/// lane words, returning a typed error on invalid input.
///
/// # Errors
///
/// See [`try_pack_lanes_wide`].
pub fn try_pack_lanes(patterns: &[Vec<bool>]) -> Result<Vec<u64>, PackError> {
    try_pack_lanes_wide(patterns)
}

/// Packs up to 64 per-pattern `bool` vectors into `u64` lane words.
///
/// # Panics
///
/// Panics if more than 64 patterns are given or lengths differ; use
/// [`try_pack_lanes`] for the typed-error variant.
pub fn pack_lanes(patterns: &[Vec<bool>]) -> Vec<u64> {
    pack_lanes_wide(patterns)
}

/// Extracts one lane from packed `u64` words: the inverse of
/// [`pack_lanes`].
///
/// # Panics
///
/// Panics if `lane >= 64`.
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    unpack_lane_wide(words, lane)
}

/// Reusable lane-parallel combinational evaluator, generic over the lane
/// word `W`.
///
/// # Example
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
/// use sim::PackedEvaluator;
///
/// let mut b = CircuitBuilder::new("xor");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate(GateKind::Xor, &[x, y], "z");
/// b.output(z);
/// let c = b.finish().unwrap();
///
/// let mut ev = PackedEvaluator::new(&c);
/// // lane l of each input word is that lane's pattern bit
/// ev.eval(&[0b01, 0b11], &[]);
/// assert_eq!(ev.output_values(), vec![0b10]); // 0^1=1 in lane 1 only
/// ```
#[derive(Debug, Clone)]
pub struct WidePackedEvaluator<'c, W: LaneWord> {
    circuit: &'c Circuit,
    values: Vec<W>,
}

/// The 64-lane (`u64`) packed evaluator — one machine word per net.
pub type PackedEvaluator<'c> = WidePackedEvaluator<'c, u64>;

/// The 256-lane ([`W256`]) packed evaluator — a `[u64; 4]` block per
/// net, amortizing the schedule walk over four words.
pub type PackedEvaluator256<'c> = WidePackedEvaluator<'c, W256>;

impl<'c, W: LaneWord> WidePackedEvaluator<'c, W> {
    /// Creates an evaluator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        WidePackedEvaluator {
            circuit,
            values: vec![W::zeros(); circuit.num_nets()],
        }
    }

    /// The circuit being evaluated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Evaluates all nets for `W::LANES` lanes at once from packed
    /// primary-input words and packed flop-output words (`state[i]` is
    /// the Q word of `circuit.dffs()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `pis` or `state` have the wrong length.
    pub fn eval(&mut self, pis: &[W], state: &[W]) {
        let c = self.circuit;
        assert_eq!(pis.len(), c.inputs().len(), "PI count mismatch");
        assert_eq!(state.len(), c.dffs().len(), "state length mismatch");
        for (i, &net) in c.inputs().iter().enumerate() {
            self.values[net.index()] = pis[i];
        }
        for (i, dff) in c.dffs().iter().enumerate() {
            self.values[dff.q.index()] = state[i];
        }
        let sched = c.schedule();
        let fanins = sched.fanins();
        let values = &mut self.values;
        for op in sched.ops() {
            let ins = &fanins[op.fanin_start as usize..op.fanin_end as usize];
            let word = match op.kind {
                GateKind::Buf => values[ins[0] as usize],
                GateKind::Not => values[ins[0] as usize].not(),
                GateKind::And => ins
                    .iter()
                    .fold(W::ones(), |acc, &f| acc.and(values[f as usize])),
                GateKind::Nand => ins
                    .iter()
                    .fold(W::ones(), |acc, &f| acc.and(values[f as usize]))
                    .not(),
                GateKind::Or => ins
                    .iter()
                    .fold(W::zeros(), |acc, &f| acc.or(values[f as usize])),
                GateKind::Nor => ins
                    .iter()
                    .fold(W::zeros(), |acc, &f| acc.or(values[f as usize]))
                    .not(),
                GateKind::Xor => ins
                    .iter()
                    .fold(W::zeros(), |acc, &f| acc.xor(values[f as usize])),
                GateKind::Xnor => ins
                    .iter()
                    .fold(W::zeros(), |acc, &f| acc.xor(values[f as usize]))
                    .not(),
                GateKind::Const0 => W::zeros(),
                GateKind::Const1 => W::ones(),
            };
            values[op.output as usize] = word;
        }
    }

    /// Packed value of a net after the last eval.
    pub fn value(&self, net: NetId) -> W {
        self.values[net.index()]
    }

    /// Value of a net in one lane after the last eval.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn lane_value(&self, net: NetId, lane: usize) -> bool {
        assert!(
            lane < W::LANES,
            "lane {lane} out of range for a {}-lane word",
            W::LANES
        );
        self.values[net.index()].lane(lane)
    }

    /// Packed values of the primary outputs after the last eval.
    pub fn output_values(&self) -> Vec<W> {
        self.circuit
            .outputs()
            .iter()
            .map(|&n| self.value(n))
            .collect()
    }

    /// Packed next-state vector (each flop's D word) after the last eval.
    pub fn next_state(&self) -> Vec<W> {
        self.circuit
            .dffs()
            .iter()
            .map(|dff| self.value(dff.d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use gf2::{Rng64, SplitMix64};
    use netlist::generator::GeneratorConfig;
    use netlist::CircuitBuilder;

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = SplitMix64::new(3);
        let patterns: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..17).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let words = pack_lanes(&patterns);
        assert_eq!(words.len(), 17);
        for (lane, pattern) in patterns.iter().enumerate() {
            assert_eq!(&unpack_lane(&words, lane), pattern, "lane {lane}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip_256_lanes() {
        let mut rng = SplitMix64::new(5);
        let patterns: Vec<Vec<bool>> = (0..200)
            .map(|_| (0..9).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect();
        let words: Vec<W256> = pack_lanes_wide(&patterns);
        assert_eq!(words.len(), 9);
        for (lane, pattern) in patterns.iter().enumerate() {
            assert_eq!(&unpack_lane_wide(&words, lane), pattern, "lane {lane}");
        }
        // unused lanes stay zero
        assert_eq!(unpack_lane_wide(&words, 255), vec![false; 9]);
    }

    #[test]
    fn pack_fewer_than_64_lanes_zero_fills() {
        let words = pack_lanes(&[vec![true, false]]);
        assert_eq!(words, vec![1, 0]);
        assert_eq!(unpack_lane(&words, 63), vec![false, false]);
    }

    #[test]
    fn too_many_patterns_is_a_typed_error() {
        let patterns: Vec<Vec<bool>> = (0..65).map(|_| vec![true]).collect();
        assert_eq!(
            try_pack_lanes(&patterns),
            Err(PackError::TooManyPatterns { got: 65, lanes: 64 })
        );
        // ...but 65 patterns fit a 256-lane block
        assert!(try_pack_lanes_wide::<W256>(&patterns).is_ok());
        let wide: Vec<Vec<bool>> = (0..257).map(|_| vec![true]).collect();
        assert_eq!(
            try_pack_lanes_wide::<W256>(&wide),
            Err(PackError::TooManyPatterns {
                got: 257,
                lanes: 256
            })
        );
    }

    #[test]
    fn ragged_patterns_are_a_typed_error() {
        let patterns = vec![vec![true, false], vec![true], vec![false, true]];
        assert_eq!(
            try_pack_lanes(&patterns),
            Err(PackError::RaggedPattern {
                index: 1,
                len: 1,
                expected: 2
            })
        );
        let msg = try_pack_lanes(&patterns).unwrap_err().to_string();
        assert!(
            msg.contains("pattern 1"),
            "message names the pattern: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "65 patterns exceed the 64-lane word capacity")]
    fn pack_lanes_panics_on_too_many_patterns() {
        let patterns: Vec<Vec<bool>> = (0..65).map(|_| vec![true]).collect();
        let _ = pack_lanes(&patterns);
    }

    #[test]
    #[should_panic(expected = "all patterns must share one length")]
    fn pack_lanes_panics_on_ragged_patterns() {
        let _ = pack_lanes(&[vec![true, false], vec![true]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unpack_lane_bounds_are_checked() {
        let _ = unpack_lane(&[0u64], 64);
    }

    fn kinds_circuit() -> (Circuit, Vec<NetId>) {
        // A circuit exercising every gate kind.
        let mut b = CircuitBuilder::new("kinds");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let g0 = b.gate(GateKind::Buf, &[x], "g0");
        let g1 = b.gate(GateKind::Not, &[y], "g1");
        let g2 = b.gate(GateKind::And, &[x, y, z], "g2");
        let g3 = b.gate(GateKind::Nand, &[g0, g1], "g3");
        let g4 = b.gate(GateKind::Or, &[g2, g3, z], "g4");
        let g5 = b.gate(GateKind::Nor, &[x, g4], "g5");
        let g6 = b.gate(GateKind::Xor, &[g4, g5, y], "g6");
        let g7 = b.gate(GateKind::Xnor, &[g6, z], "g7");
        let c0 = b.gate(GateKind::Const0, &[], "c0");
        let c1 = b.gate(GateKind::Const1, &[], "c1");
        let g8 = b.gate(GateKind::Or, &[g7, c0, c1], "g8");
        b.output(g8);
        b.output(g6);
        let probes = vec![g0, g1, g2, g3, g4, g5, g6, g7, g8];
        (b.finish().unwrap(), probes)
    }

    #[test]
    fn every_gate_kind_matches_scalar_on_all_lane_patterns() {
        let (c, probes) = kinds_circuit();
        let mut rng = SplitMix64::new(9);
        let pi_words: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut packed = PackedEvaluator::new(&c);
        packed.eval(&pi_words, &[]);
        let mut scalar = Evaluator::new(&c);
        for lane in 0..64 {
            let pis = unpack_lane(&pi_words, lane);
            scalar.eval(&pis, &[]);
            for &net in &probes {
                assert_eq!(
                    packed.lane_value(net, lane),
                    scalar.value(net),
                    "net {net} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn every_gate_kind_matches_scalar_on_256_lanes() {
        let (c, probes) = kinds_circuit();
        let mut rng = SplitMix64::new(11);
        let pi_words: Vec<W256> = (0..3)
            .map(|_| {
                W256([
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                ])
            })
            .collect();
        let mut packed = PackedEvaluator256::new(&c);
        packed.eval(&pi_words, &[]);
        let mut scalar = Evaluator::new(&c);
        for lane in (0..256).step_by(7) {
            let pis = unpack_lane_wide(&pi_words, lane);
            scalar.eval(&pis, &[]);
            for &net in &probes {
                assert_eq!(
                    packed.lane_value(net, lane),
                    scalar.value(net),
                    "net {net} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn random_circuit_all_lanes_match_scalar() {
        let cfg = GeneratorConfig::new("packed-diff", 8, 6, 12, 120).with_seed(42);
        let c = cfg.generate();
        let mut rng = SplitMix64::new(77);
        let pis: Vec<u64> = (0..c.inputs().len()).map(|_| rng.next_u64()).collect();
        let state: Vec<u64> = (0..c.num_dffs()).map(|_| rng.next_u64()).collect();

        let mut packed = PackedEvaluator::new(&c);
        packed.eval(&pis, &state);
        let packed_po = packed.output_values();
        let packed_ns = packed.next_state();

        let mut scalar = Evaluator::new(&c);
        for lane in 0..64 {
            scalar.eval(&unpack_lane(&pis, lane), &unpack_lane(&state, lane));
            assert_eq!(
                unpack_lane(&packed_po, lane),
                scalar.output_values(),
                "PO lane {lane}"
            );
            assert_eq!(
                unpack_lane(&packed_ns, lane),
                scalar.next_state(),
                "next-state lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "PI count mismatch")]
    fn wrong_pi_count_panics() {
        let cfg = GeneratorConfig::new("p", 4, 2, 3, 20).with_seed(1);
        let c = cfg.generate();
        PackedEvaluator::new(&c).eval(&[0], &[0, 0, 0]);
    }
}
