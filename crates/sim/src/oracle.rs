//! The oracle interface the attack talks to.

use gf2::{Rng64, SplitMix64};

/// What comes back from one scan test session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResponse {
    /// Values shifted out of the chain, indexed by chain position.
    pub scan_out: Vec<bool>,
    /// Primary-output values observed during the (last) capture cycle.
    pub po: Vec<bool>,
}

/// Scan test access to a chip — the *only* interface the attacker has to
/// the oracle (a functional IC on their bench).
///
/// One [`query`](ScanAccess::query) is a complete powered session:
/// power-on reset (which restarts any on-chip PRNG), `num_cells` shift-in
/// cycles, one capture cycle with the given primary inputs, and
/// `num_cells` shift-out cycles. That session structure is what makes the
/// DynUnlock combinational model exact: every query sees the same key
/// schedule.
///
/// Implemented by the honest [`ScanChip`](crate::ScanChip) and by the
/// locked chip in the `scanlock` crate.
pub trait ScanAccess {
    /// Scan chain length.
    fn num_cells(&self) -> usize;

    /// Number of primary inputs.
    fn num_pis(&self) -> usize;

    /// Number of primary outputs.
    fn num_pos(&self) -> usize;

    /// A full session with `captures` capture cycles between shift-in and
    /// shift-out (primary inputs held constant across captures).
    ///
    /// # Panics
    ///
    /// Implementations panic if `captures == 0` or vector lengths are wrong.
    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse;

    /// A standard single-capture session.
    fn query(&mut self, pattern: &[bool], pis: &[bool]) -> ScanResponse {
        self.query_captures(pattern, pis, 1)
    }
}

impl<O: ScanAccess + ?Sized> ScanAccess for &mut O {
    fn num_cells(&self) -> usize {
        (**self).num_cells()
    }

    fn num_pis(&self) -> usize {
        (**self).num_pis()
    }

    fn num_pos(&self) -> usize {
        (**self).num_pos()
    }

    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        (**self).query_captures(pattern, pis, captures)
    }
}

/// Evidence that a [`ScanAccess`] implementation broke the session
/// contract, found by [`check_session_freshness`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FreshnessViolation {
    /// An *immediate* repeat of a query disagreed with its first run:
    /// the oracle is non-deterministic (noisy scan-out, or a session
    /// reset that does not actually restart the key schedule). Caught
    /// with no intervening traffic, so no cross-session state can be
    /// blamed.
    NonDeterministic {
        /// Index (into the probe set) of the query that diverged.
        probe: usize,
        /// Response seen the first time the probe ran.
        first: ScanResponse,
        /// Response seen when the probe was immediately repeated.
        repeat: ScanResponse,
    },
    /// A replay *after intervening decoy traffic* disagreed with its
    /// first run, while immediate repeats agreed: state leaks across
    /// sessions (e.g. an on-chip LFSR that keeps free-running instead of
    /// power-on resetting).
    StaleState {
        /// Index (into the probe set) of the query whose replay diverged.
        probe: usize,
        /// Response seen the first time the probe ran.
        first: ScanResponse,
        /// Response seen when the probe was replayed later.
        replay: ScanResponse,
    },
}

/// Checks the session contract every `ScanAccess` implementation must
/// honor: one query is one complete powered session, so identical queries
/// return identical responses *no matter what ran in between* (any
/// on-chip PRNG must power-on reset).
///
/// Two passes, both deterministic in `rng_seed`. First, each of `probes`
/// random sessions is run twice back-to-back; any disagreement is flagged
/// as [`FreshnessViolation::NonDeterministic`] — this is what catches
/// noisy or fault-injected oracles, which a pure replay check would
/// misattribute to state leakage. Second, the probes are replayed in
/// reverse order with decoy queries interleaved; a chip whose key
/// schedule drifts across sessions (e.g. an LFSR that keeps free-running)
/// is caught by the first diverging replay and flagged as
/// [`FreshnessViolation::StaleState`].
///
/// The DynUnlock model is *built* on this contract — it is what collapses
/// a dynamically keyed lock into fixed affine masks — so the conformance
/// suite runs this against every oracle implementation in the tree.
///
/// # Errors
///
/// Returns the first [`FreshnessViolation`] found, if any.
pub fn check_session_freshness<O: ScanAccess>(
    oracle: &mut O,
    probes: usize,
    rng_seed: u64,
) -> Result<(), FreshnessViolation> {
    let n = oracle.num_cells();
    let pis = oracle.num_pis();
    let mut rng = SplitMix64::new(rng_seed);
    let random_session = |rng: &mut SplitMix64| {
        let pattern: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
        let pi_vals: Vec<bool> = (0..pis).map(|_| rng.gen_bool()).collect();
        let captures = 1 + rng.gen_index(3);
        (pattern, pi_vals, captures)
    };
    let sessions: Vec<_> = (0..probes).map(|_| random_session(&mut rng)).collect();
    let mut firsts: Vec<ScanResponse> = Vec::with_capacity(probes);
    for (probe, (pat, pi, c)) in sessions.iter().enumerate() {
        let first = oracle.query_captures(pat, pi, *c);
        let repeat = oracle.query_captures(pat, pi, *c);
        if repeat != first {
            return Err(FreshnessViolation::NonDeterministic {
                probe,
                first,
                repeat,
            });
        }
        firsts.push(first);
    }
    for (probe, ((pat, pi, c), first)) in sessions.iter().zip(firsts).enumerate().rev() {
        // Decoy traffic between first run and replay: state leaking out of
        // any earlier session shifts the chip's schedule and shows up here.
        let (dpat, dpi, dc) = random_session(&mut rng);
        oracle.query_captures(&dpat, &dpi, dc);
        let replay = oracle.query_captures(pat, pi, *c);
        if replay != first {
            return Err(FreshnessViolation::StaleState {
                probe,
                first,
                replay,
            });
        }
    }
    Ok(())
}
