//! The oracle interface the attack talks to.

/// What comes back from one scan test session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResponse {
    /// Values shifted out of the chain, indexed by chain position.
    pub scan_out: Vec<bool>,
    /// Primary-output values observed during the (last) capture cycle.
    pub po: Vec<bool>,
}

/// Scan test access to a chip — the *only* interface the attacker has to
/// the oracle (a functional IC on their bench).
///
/// One [`query`](ScanAccess::query) is a complete powered session:
/// power-on reset (which restarts any on-chip PRNG), `num_cells` shift-in
/// cycles, one capture cycle with the given primary inputs, and
/// `num_cells` shift-out cycles. That session structure is what makes the
/// DynUnlock combinational model exact: every query sees the same key
/// schedule.
///
/// Implemented by the honest [`ScanChip`](crate::ScanChip) and by the
/// locked chip in the `scanlock` crate.
pub trait ScanAccess {
    /// Scan chain length.
    fn num_cells(&self) -> usize;

    /// Number of primary inputs.
    fn num_pis(&self) -> usize;

    /// Number of primary outputs.
    fn num_pos(&self) -> usize;

    /// A full session with `captures` capture cycles between shift-in and
    /// shift-out (primary inputs held constant across captures).
    ///
    /// # Panics
    ///
    /// Implementations panic if `captures == 0` or vector lengths are wrong.
    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse;

    /// A standard single-capture session.
    fn query(&mut self, pattern: &[bool], pis: &[bool]) -> ScanResponse {
        self.query_captures(pattern, pis, 1)
    }
}
