//! Clocked functional simulation — scalar and 64-lane word-parallel.

use netlist::Circuit;

use crate::{Evaluator, PackedEvaluator};

/// A sequential (functional-mode) simulator: holds the flop state and
/// advances it one clock per [`SeqSim::step`].
///
/// # Example
///
/// ```
/// use netlist::generator::shift_register;
/// use sim::SeqSim;
///
/// let c = shift_register(3);
/// let mut s = SeqSim::new(&c);
/// s.step(&[true]);
/// s.step(&[false]);
/// s.step(&[false]);
/// // the `true` shifted three positions deep
/// assert_eq!(s.state(), &[false, false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct SeqSim<'c> {
    evaluator: Evaluator<'c>,
    state: Vec<bool>,
}

impl<'c> SeqSim<'c> {
    /// Creates a simulator with the all-zero reset state.
    pub fn new(circuit: &'c Circuit) -> Self {
        SeqSim {
            evaluator: Evaluator::new(circuit),
            state: vec![false; circuit.num_dffs()],
        }
    }

    /// The circuit under simulation.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// Current flop state, indexed like `circuit.dffs()`.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overwrites the flop state (e.g. after a scan load).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the flop count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state length mismatch");
        self.state.copy_from_slice(state);
    }

    /// Resets all flops to zero.
    pub fn reset(&mut self) {
        self.state.fill(false);
    }

    /// Applies one clock: evaluates the combinational core on (`pis`,
    /// current state), loads every flop with its D value, and returns the
    /// primary-output values *before* the edge (Mealy view).
    pub fn step(&mut self, pis: &[bool]) -> Vec<bool> {
        self.evaluator.eval(pis, &self.state);
        let po = self.evaluator.output_values();
        self.state = self.evaluator.next_state();
        po
    }

    /// Primary-output values for `pis` at the current state, without
    /// clocking.
    pub fn peek_outputs(&mut self, pis: &[bool]) -> Vec<bool> {
        self.evaluator.eval(pis, &self.state);
        self.evaluator.output_values()
    }
}

/// A 64-lane sequential simulator: 64 independent machines advance one
/// clock per [`PackedSeqSim::step`], each lane seeing its own primary
/// inputs and flop state (bit `l` of every word belongs to lane `l`).
///
/// # Example
///
/// ```
/// use netlist::generator::shift_register;
/// use sim::PackedSeqSim;
///
/// let c = shift_register(3);
/// let mut s = PackedSeqSim::new(&c);
/// // lane 0 shifts in a 1, lane 1 shifts in a 0
/// s.step(&[0b01]);
/// s.step(&[0b00]);
/// s.step(&[0b00]);
/// // the 1 reached the deepest flop in lane 0 only
/// assert_eq!(s.state()[2], 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct PackedSeqSim<'c> {
    evaluator: PackedEvaluator<'c>,
    state: Vec<u64>,
}

impl<'c> PackedSeqSim<'c> {
    /// Creates a simulator with the all-zero reset state in every lane.
    pub fn new(circuit: &'c Circuit) -> Self {
        PackedSeqSim {
            evaluator: PackedEvaluator::new(circuit),
            state: vec![0; circuit.num_dffs()],
        }
    }

    /// The circuit under simulation.
    pub fn circuit(&self) -> &'c Circuit {
        self.evaluator.circuit()
    }

    /// Current packed flop state, indexed like `circuit.dffs()`.
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Overwrites the packed flop state (e.g. after a scan load).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the flop count.
    pub fn set_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.state.len(), "state length mismatch");
        self.state.copy_from_slice(state);
    }

    /// Resets all flops to zero in every lane.
    pub fn reset(&mut self) {
        self.state.fill(0);
    }

    /// Applies one clock to all 64 lanes; returns the packed
    /// primary-output words observed before the edge (Mealy view).
    pub fn step(&mut self, pis: &[u64]) -> Vec<u64> {
        self.evaluator.eval(pis, &self.state);
        let po = self.evaluator.output_values();
        self.state = self.evaluator.next_state();
        po
    }

    /// Packed primary-output words for `pis` at the current state, without
    /// clocking.
    pub fn peek_outputs(&mut self, pis: &[u64]) -> Vec<u64> {
        self.evaluator.eval(pis, &self.state);
        self.evaluator.output_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::generator::{counter, shift_register};
    use netlist::{CircuitBuilder, GateKind};

    #[test]
    fn counter_counts() {
        let c = counter(4);
        let mut s = SeqSim::new(&c);
        for expect in 1..=10u32 {
            s.step(&[true]);
            let value: u32 = s
                .state()
                .iter()
                .enumerate()
                .map(|(i, &b)| u32::from(b) << i)
                .sum();
            assert_eq!(value, expect);
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let c = counter(3);
        let mut s = SeqSim::new(&c);
        s.step(&[true]);
        let before = s.state().to_vec();
        s.step(&[false]);
        assert_eq!(s.state(), &before[..]);
    }

    #[test]
    fn shift_register_delays() {
        let c = shift_register(4);
        let mut s = SeqSim::new(&c);
        let stream = [true, false, true, true, false, false, true];
        let mut outs = Vec::new();
        for &bit in &stream {
            outs.push(s.step(&[bit])[0]);
        }
        // output is the input delayed by 3 (Mealy: q3 visible during the
        // cycle after the bit has crossed 4 flops... the PO reads q3 before
        // the edge, so delay is exactly 4 steps; check suffix alignment).
        for i in 4..stream.len() {
            assert_eq!(outs[i], stream[i - 4], "delay mismatch at {i}");
        }
    }

    #[test]
    fn set_state_then_peek() {
        let mut b = CircuitBuilder::new("p");
        let x = b.input("x");
        let q = b.dff("q", x);
        let y = b.gate(GateKind::And, &[q, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut s = SeqSim::new(&c);
        s.set_state(&[true]);
        assert!(s.peek_outputs(&[true])[0]);
        assert!(!s.peek_outputs(&[false])[0]);
        // peek must not clock
        assert_eq!(s.state(), &[true]);
    }

    #[test]
    fn reset_zeroes_state() {
        let c = counter(3);
        let mut s = SeqSim::new(&c);
        s.step(&[true]);
        s.reset();
        assert!(s.state().iter().all(|&b| !b));
    }

    #[test]
    fn packed_step_matches_scalar_in_every_lane() {
        use crate::packed::unpack_lane;
        use gf2::{Rng64, SplitMix64};

        let c = counter(4);
        let mut rng = SplitMix64::new(5);
        let stimuli: Vec<u64> = (0..12).map(|_| rng.next_u64()).collect();

        let mut packed = PackedSeqSim::new(&c);
        let mut scalars: Vec<SeqSim> = (0..64).map(|_| SeqSim::new(&c)).collect();
        for &enable_word in &stimuli {
            let po = packed.step(&[enable_word]);
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                let spo = scalar.step(&[(enable_word >> lane) & 1 == 1]);
                assert_eq!(unpack_lane(&po, lane), spo, "PO lane {lane}");
                assert_eq!(
                    unpack_lane(packed.state(), lane),
                    scalar.state(),
                    "state lane {lane}"
                );
            }
        }
    }

    #[test]
    fn packed_peek_does_not_clock() {
        let c = counter(3);
        let mut s = PackedSeqSim::new(&c);
        s.step(&[!0u64]);
        let before = s.state().to_vec();
        s.peek_outputs(&[!0u64]);
        assert_eq!(s.state(), &before[..]);
        s.reset();
        assert!(s.state().iter().all(|&w| w == 0));
    }
}
