//! Deterministic fault injection for scan oracles.
//!
//! Real bench oracles are noisy and flaky: probe contact bounces, scan
//! clocks glitch, sessions die mid-shift, and robust-scan defenses
//! deliberately perturb scan-out. [`FaultyOracle`] wraps any honest
//! [`ScanAccess`] implementation and injects those failure modes from a
//! seeded RNG, so every fault schedule is exactly reproducible — the
//! substrate for every fault-tolerance test in the tree.
//!
//! A faulty oracle deliberately breaks the [`ScanAccess`] determinism
//! contract (`check_session_freshness` would — correctly — flag it), so
//! it does *not* implement `ScanAccess`. It implements the fallible
//! interface [`FallibleScanAccess`] instead; wrap a trustworthy oracle in
//! [`Reliable`] to lift it into the same interface.

use std::fmt;
use std::time::Duration;

use gf2::{Rng64, SplitMix64};

use crate::oracle::{ScanAccess, ScanResponse};

/// Why a fallible oracle query failed. Transient by construction: the
/// same logical query may be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleFault {
    /// The query never reached the chip (bus glitch, timeout); retry is
    /// safe and the chip saw nothing.
    Transient,
    /// The session started but died before shift-out completed; the
    /// response is lost, but the power-on-reset contract means a retry
    /// still sees the same schedule.
    SessionDropped,
}

impl fmt::Display for OracleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFault::Transient => write!(f, "transient query error"),
            OracleFault::SessionDropped => write!(f, "session dropped mid-query"),
        }
    }
}

impl std::error::Error for OracleFault {}

/// Scan access that may fail per query. The fallible mirror of
/// [`ScanAccess`]: same session semantics, but each query can return an
/// [`OracleFault`] instead of a response, and a returned response may be
/// corrupted (bit flips) depending on the implementation.
pub trait FallibleScanAccess {
    /// Scan chain length.
    fn num_cells(&self) -> usize;

    /// Number of primary inputs.
    fn num_pis(&self) -> usize;

    /// Number of primary outputs.
    fn num_pos(&self) -> usize;

    /// A full session with `captures` capture cycles; see
    /// [`ScanAccess::query_captures`].
    ///
    /// # Errors
    ///
    /// Returns an [`OracleFault`] when the session fails; retrying the
    /// same query is always safe.
    fn try_query_captures(
        &mut self,
        pattern: &[bool],
        pis: &[bool],
        captures: usize,
    ) -> Result<ScanResponse, OracleFault>;

    /// A standard single-capture session.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleFault`] when the session fails.
    fn try_query(&mut self, pattern: &[bool], pis: &[bool]) -> Result<ScanResponse, OracleFault> {
        self.try_query_captures(pattern, pis, 1)
    }
}

/// Lifts an infallible [`ScanAccess`] oracle into the
/// [`FallibleScanAccess`] interface (queries never fail). This is how
/// trustworthy oracles enter fault-tolerant attack code.
#[derive(Debug, Clone)]
pub struct Reliable<O>(pub O);

impl<O: ScanAccess> FallibleScanAccess for Reliable<O> {
    fn num_cells(&self) -> usize {
        self.0.num_cells()
    }

    fn num_pis(&self) -> usize {
        self.0.num_pis()
    }

    fn num_pos(&self) -> usize {
        self.0.num_pos()
    }

    fn try_query_captures(
        &mut self,
        pattern: &[bool],
        pis: &[bool],
        captures: usize,
    ) -> Result<ScanResponse, OracleFault> {
        Ok(self.0.query_captures(pattern, pis, captures))
    }
}

/// Fault schedule parameters for a [`FaultyOracle`].
///
/// Probabilities are integer parts-per-million so schedules are exact
/// across platforms (no floating-point rounding in the hot path). All
/// rates default to zero — `FaultSpec::new(seed)` is a no-fault wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// RNG seed; the entire fault schedule is a pure function of this
    /// seed and the query sequence.
    pub seed: u64,
    /// Probability (ppm) that any single response bit flips.
    pub bit_flip_ppm: u32,
    /// Probability (ppm) that a query fails with [`OracleFault::Transient`]
    /// before reaching the chip.
    pub transient_ppm: u32,
    /// Probability (ppm) that a session starts but is dropped
    /// ([`OracleFault::SessionDropped`]).
    pub drop_session_ppm: u32,
    /// Simulated latency charged per query attempt (accounted in
    /// [`FaultyStats::latency`], never slept).
    pub latency_per_query: Duration,
}

impl FaultSpec {
    /// A no-fault spec with the given RNG seed.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            bit_flip_ppm: 0,
            transient_ppm: 0,
            drop_session_ppm: 0,
            latency_per_query: Duration::ZERO,
        }
    }

    /// Sets the per-bit flip probability (parts per million).
    #[must_use]
    pub fn with_bit_flips(mut self, ppm: u32) -> FaultSpec {
        self.bit_flip_ppm = ppm;
        self
    }

    /// Sets the per-query transient-error probability (parts per million).
    #[must_use]
    pub fn with_transients(mut self, ppm: u32) -> FaultSpec {
        self.transient_ppm = ppm;
        self
    }

    /// Sets the per-query session-drop probability (parts per million).
    #[must_use]
    pub fn with_drops(mut self, ppm: u32) -> FaultSpec {
        self.drop_session_ppm = ppm;
        self
    }

    /// Sets the simulated per-query latency.
    #[must_use]
    pub fn with_latency(mut self, latency: Duration) -> FaultSpec {
        self.latency_per_query = latency;
        self
    }
}

/// Counters accumulated by a [`FaultyOracle`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultyStats {
    /// Query attempts made (including failed ones).
    pub queries: u64,
    /// Queries that failed with [`OracleFault::Transient`].
    pub transient_faults: u64,
    /// Queries that failed with [`OracleFault::SessionDropped`].
    pub dropped_sessions: u64,
    /// Response bits flipped by injected noise.
    pub flipped_bits: u64,
    /// Total simulated latency accounted (never slept).
    pub latency: Duration,
}

impl FaultyStats {
    /// Total failed queries, either fault kind.
    pub fn faults(&self) -> u64 {
        self.transient_faults + self.dropped_sessions
    }
}

/// A seeded fault-injection wrapper around an honest [`ScanAccess`]
/// oracle.
///
/// Each query attempt rolls, in order: transient error, session drop,
/// then an independent flip roll per response bit. The roll sequence is
/// fixed, so a given `(seed, query sequence)` pair always produces the
/// same fault schedule regardless of platform. Latency is accounted in
/// [`FaultyStats`], not slept, so tests stay fast.
#[derive(Debug, Clone)]
pub struct FaultyOracle<O> {
    inner: O,
    spec: FaultSpec,
    rng: SplitMix64,
    stats: FaultyStats,
}

const PPM: u64 = 1_000_000;

impl<O: ScanAccess> FaultyOracle<O> {
    /// Wraps `inner` with the fault schedule described by `spec`.
    pub fn new(inner: O, spec: FaultSpec) -> FaultyOracle<O> {
        FaultyOracle {
            inner,
            spec,
            rng: SplitMix64::new(spec.seed),
            stats: FaultyStats::default(),
        }
    }

    /// The fault counters accumulated so far.
    pub fn stats(&self) -> &FaultyStats {
        &self.stats
    }

    /// The fault schedule parameters.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Borrows the wrapped honest oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps back to the honest oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    fn roll(&mut self, ppm: u32) -> bool {
        // Guard the rng call: gen_range consumes state, and a zero rate
        // must not perturb the schedule of the rates that are in use.
        ppm > 0 && self.rng.gen_range(PPM) < u64::from(ppm)
    }
}

impl<O: ScanAccess> FallibleScanAccess for FaultyOracle<O> {
    fn num_cells(&self) -> usize {
        self.inner.num_cells()
    }

    fn num_pis(&self) -> usize {
        self.inner.num_pis()
    }

    fn num_pos(&self) -> usize {
        self.inner.num_pos()
    }

    fn try_query_captures(
        &mut self,
        pattern: &[bool],
        pis: &[bool],
        captures: usize,
    ) -> Result<ScanResponse, OracleFault> {
        self.stats.queries += 1;
        self.stats.latency += self.spec.latency_per_query;
        if self.roll(self.spec.transient_ppm) {
            self.stats.transient_faults += 1;
            return Err(OracleFault::Transient);
        }
        if self.roll(self.spec.drop_session_ppm) {
            self.stats.dropped_sessions += 1;
            return Err(OracleFault::SessionDropped);
        }
        let mut resp = self.inner.query_captures(pattern, pis, captures);
        if self.spec.bit_flip_ppm > 0 {
            for bit in resp.scan_out.iter_mut().chain(resp.po.iter_mut()) {
                if self.rng.gen_range(PPM) < u64::from(self.spec.bit_flip_ppm) {
                    *bit = !*bit;
                    self.stats.flipped_bits += 1;
                }
            }
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScanChain, ScanChip};
    use netlist::generator::counter;
    use netlist::Circuit;

    fn chip(c: &Circuit) -> ScanChip<'_> {
        ScanChip::new(c, ScanChain::natural(c.num_dffs()))
    }

    fn run_schedule(spec: FaultSpec) -> (Vec<Result<ScanResponse, OracleFault>>, FaultyStats) {
        let c = counter(8);
        let mut o = FaultyOracle::new(chip(&c), spec);
        let mut rng = SplitMix64::new(7);
        let mut out = Vec::new();
        for _ in 0..200 {
            let pat: Vec<bool> = (0..o.num_cells()).map(|_| rng.gen_bool()).collect();
            let pi: Vec<bool> = (0..o.num_pis()).map(|_| rng.gen_bool()).collect();
            out.push(o.try_query(&pat, &pi));
        }
        (out, *o.stats())
    }

    #[test]
    fn zero_rates_are_transparent() {
        let (results, stats) = run_schedule(FaultSpec::new(42));
        let c = counter(8);
        let mut honest = chip(&c);
        let mut rng = SplitMix64::new(7);
        for r in &results {
            let pat: Vec<bool> = (0..honest.num_cells()).map(|_| rng.gen_bool()).collect();
            let pi: Vec<bool> = (0..honest.num_pis()).map(|_| rng.gen_bool()).collect();
            assert_eq!(r.as_ref().unwrap(), &honest.query(&pat, &pi));
        }
        assert_eq!(stats.faults(), 0);
        assert_eq!(stats.flipped_bits, 0);
        assert_eq!(stats.queries, 200);
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let spec = FaultSpec::new(0xFA17)
            .with_bit_flips(40_000)
            .with_transients(100_000)
            .with_drops(50_000);
        let (a, sa) = run_schedule(spec);
        let (b, sb) = run_schedule(spec);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.faults() > 0, "rates this high must fire in 200 queries");
        assert!(sa.flipped_bits > 0);
        assert!(sa.transient_faults > 0);
        assert!(sa.dropped_sessions > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::new(1)
            .with_bit_flips(40_000)
            .with_transients(100_000);
        let (a, _) = run_schedule(spec);
        let (b, _) = run_schedule(FaultSpec { seed: 2, ..spec });
        assert_ne!(a, b);
    }

    #[test]
    fn latency_is_accounted_not_slept() {
        let spec = FaultSpec::new(3).with_latency(Duration::from_millis(250));
        let t0 = std::time::Instant::now();
        let (_, stats) = run_schedule(spec);
        assert_eq!(stats.latency, Duration::from_millis(250) * 200);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "latency must be simulated, not slept"
        );
    }

    #[test]
    fn reliable_adapter_never_fails() {
        let c = counter(8);
        let mut o = Reliable(chip(&c));
        let pat = vec![false; o.num_cells()];
        let pi = vec![false; o.num_pis()];
        let direct = chip(&c).query(&pat, &pi);
        assert_eq!(o.try_query(&pat, &pi).unwrap(), direct);
        assert_eq!(o.num_pos(), chip(&c).num_pos());
    }
}
