//! Standalone checker for DRAT+xor proofs emitted by `satsolver`.
//!
//! A certifying solver run (see `satsolver::proof`) streams three step
//! kinds; this crate re-verifies them against the input formula with an
//! independent implementation — no solver code is trusted:
//!
//! * **Clause additions** are checked by RUP (reverse unit propagation):
//!   assume the negation of every literal, unit-propagate over the active
//!   clause set, and require a conflict. Propagation here is a separate
//!   two-watched-literal engine written for checking, not solving.
//! * **Xor-derived clauses** (`x` lines) are *not* RUP in general — that
//!   is the point of native GF(2) reasoning — so each one carries its
//!   derivation: the input xor constraints whose GF(2) sum, after
//!   substituting the listed (RUP-verified) unit literals, yields the row
//!   the clause was read off. The checker refolds that sum densely over
//!   [`gf2::BitVec`] and accepts the clause iff its variables are exactly
//!   the row's and its unique falsifying assignment violates the row's
//!   parity.
//! * **Deletions** deactivate the matching clause (by literal multiset).
//!   Because every activated clause was verified implied before use,
//!   ignoring an unmatched deletion is sound — deletions can only make
//!   the checker reject more, never accept more.
//!
//! The check is a forward pass: each addition is verified against the
//! clauses active *at that point*, and the run succeeds when a verified
//! empty clause closes the refutation. [`certify_unsat`] bundles the
//! whole loop — fresh logged solver, proof extraction, check — for
//! callers like `dynunlock`'s `certify` flag and the fuzz tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use gf2::BitVec;
use satsolver::dimacs::Cnf;
use satsolver::proof::{DratProof, ProofStats};
use satsolver::{Lit, SolveResult, Solver};

/// One parsed proof step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// Clause addition (empty = refutation), checked by RUP.
    Add(Vec<Lit>),
    /// Clause deletion (advisory; unmatched deletions are ignored).
    Delete(Vec<Lit>),
    /// Xor-derived clause with its GF(2) provenance.
    XorDerived {
        /// The derived clause (empty = refutation by inconsistent row).
        lits: Vec<Lit>,
        /// Indices of the input `x`-line constraints summed, 0-based in
        /// add order (the wire format is 1-based; `0` terminates).
        origins: Vec<u32>,
        /// Unit literals substituted into the sum; each is RUP-verified.
        units: Vec<Lit>,
    },
}

/// Why a proof failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The proof text did not parse.
    Parse {
        /// 1-based proof line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A step failed verification.
    Step {
        /// 0-based index into the step list.
        index: usize,
        /// What went wrong.
        reason: String,
    },
    /// The proof ran out of steps without deriving the empty clause.
    NotRefutation,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse { line, msg } => write!(f, "proof line {line}: {msg}"),
            CheckError::Step { index, reason } => write!(f, "proof step {index}: {reason}"),
            CheckError::NotRefutation => {
                write!(f, "proof ends without deriving the empty clause")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Summary of a successful check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Clause additions verified by RUP (including the empty clause if it
    /// closed the proof as a plain addition).
    pub rup_additions: u64,
    /// Xor-derived steps verified by GF(2) refolding.
    pub xor_steps: u64,
    /// Unit literals RUP-verified inside xor steps.
    pub xor_units_checked: u64,
    /// Deletions applied (matched an active clause).
    pub deletions_applied: u64,
    /// Deletions ignored (no matching active clause).
    pub deletions_ignored: u64,
}

/// Parses DRAT+xor proof text (the format `satsolver::proof::DratProof`
/// emits — see DESIGN.md §7).
///
/// # Errors
///
/// Returns [`CheckError::Parse`] on the first malformed line.
pub fn parse_proof(text: &str) -> Result<Vec<ProofStep>, CheckError> {
    let mut steps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let err = |msg: &str| CheckError::Parse {
            line: lineno + 1,
            msg: msg.to_string(),
        };
        if let Some(rest) = line.strip_prefix("d ") {
            let (lits, extra) = parse_lit_group(rest).ok_or_else(|| err("malformed deletion"))?;
            if !extra.trim().is_empty() {
                return Err(err("trailing tokens after deletion"));
            }
            steps.push(ProofStep::Delete(lits));
        } else if let Some(rest) = line.strip_prefix('x') {
            let (lits, rest) = parse_lit_group(rest).ok_or_else(|| err("malformed x-line lits"))?;
            let (origins, rest) =
                parse_u32_group(rest).ok_or_else(|| err("malformed x-line origins"))?;
            let (units, extra) =
                parse_lit_group(rest).ok_or_else(|| err("malformed x-line units"))?;
            if !extra.trim().is_empty() {
                return Err(err("trailing tokens after x-line"));
            }
            steps.push(ProofStep::XorDerived {
                lits,
                origins,
                units,
            });
        } else {
            let (lits, extra) = parse_lit_group(line).ok_or_else(|| err("malformed addition"))?;
            if !extra.trim().is_empty() {
                return Err(err("trailing tokens after addition"));
            }
            steps.push(ProofStep::Add(lits));
        }
    }
    Ok(steps)
}

/// Parses DIMACS-coded literals up to a `0` terminator; returns the
/// literals and the unconsumed remainder.
fn parse_lit_group(text: &str) -> Option<(Vec<Lit>, &str)> {
    let mut lits = Vec::new();
    let mut rest = text;
    loop {
        let trimmed = rest.trim_start();
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        let (tok, tail) = trimmed.split_at(end);
        let code: i64 = tok.parse().ok()?;
        rest = tail;
        if code == 0 {
            return Some((lits, rest));
        }
        lits.push(Lit::from_dimacs(code));
    }
}

/// Parses the 1-based origin-id group up to its `0` terminator, returning
/// 0-based indices and the unconsumed remainder.
fn parse_u32_group(text: &str) -> Option<(Vec<u32>, &str)> {
    let mut ids = Vec::new();
    let mut rest = text;
    loop {
        let trimmed = rest.trim_start();
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        let (tok, tail) = trimmed.split_at(end);
        let id: u32 = tok.parse().ok()?;
        rest = tail;
        match id.checked_sub(1) {
            None => return Some((ids, rest)),
            Some(zero_based) => ids.push(zero_based),
        }
    }
}

/// The checker's own unit-propagation engine: two watched literals over
/// an arena of (de)activatable clauses, with a persistent trail for
/// formula-level facts and a rollback mark for per-check assumptions.
#[derive(Debug, Default)]
struct Prop {
    /// Clause literals, reordered freely (slots 0/1 are the watch pair).
    clauses: Vec<Vec<Lit>>,
    active: Vec<bool>,
    /// `watches[l.index()]`: clauses watching literal `l` (visited when
    /// `l` becomes false). Stale entries are dropped lazily.
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment (`None` = unassigned).
    assigns: Vec<Option<bool>>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Set once the active set is propagation-contradictory; every later
    /// check passes trivially (everything is implied).
    contradiction: bool,
    /// Active clauses by sorted-literal key, for deletion matching.
    by_key: HashMap<Vec<Lit>, Vec<u32>>,
}

impl Prop {
    fn new(num_vars: usize) -> Prop {
        Prop {
            assigns: vec![None; num_vars],
            watches: vec![Vec::new(); 2 * num_vars],
            ..Prop::default()
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|b| b == l.is_positive())
    }

    fn enqueue(&mut self, l: Lit) {
        debug_assert!(self.value(l).is_none());
        self.assigns[l.var().index()] = Some(l.is_positive());
        self.trail.push(l);
    }

    /// Sorted-dedup key for deletion matching.
    fn key(lits: &[Lit]) -> Vec<Lit> {
        let mut k = lits.to_vec();
        k.sort_unstable();
        k.dedup();
        k
    }

    /// Activates a clause: registers watches, enqueues persistent units,
    /// and propagates to a fixpoint. Any conflict flips `contradiction`.
    /// The clause is published to the arena *before* propagation runs —
    /// propagation may revisit it through its own watch entries.
    fn add_clause(&mut self, lits: &[Lit]) {
        let mut lits = Self::key(lits);
        let cid = self.clauses.len() as u32;
        self.by_key.entry(lits.clone()).or_default().push(cid);
        // Prefer non-false literals in the watch slots so the watch
        // invariant (a false watched literal has been visited) holds
        // from the start.
        let mut slot = 0usize;
        for i in 0..lits.len() {
            if self.value(lits[i]) != Some(false) {
                lits.swap(slot, i);
                slot += 1;
                if slot == 2 {
                    break;
                }
            }
        }
        let first = lits.first().copied();
        let watch_pair = (lits.len() >= 2).then(|| (lits[0], lits[1]));
        self.clauses.push(lits);
        self.active.push(true);
        if let Some((w0, w1)) = watch_pair {
            self.watches[w0.index()].push(cid);
            self.watches[w1.index()].push(cid);
        }
        let Some(first) = first else {
            self.contradiction = true; // empty clause
            return;
        };
        match slot {
            0 => self.contradiction = true, // every literal already false
            1 => match self.value(first) {
                Some(true) => {}
                Some(false) => unreachable!("slot counted it non-false"),
                None => {
                    self.enqueue(first);
                    if self.propagate() {
                        self.contradiction = true;
                    }
                }
            },
            _ => {}
        }
    }

    /// Deactivates the most recently added active clause with the same
    /// literal set. Returns whether a clause matched.
    fn delete_clause(&mut self, lits: &[Lit]) -> bool {
        let key = Self::key(lits);
        if let Some(stack) = self.by_key.get_mut(&key) {
            while let Some(cid) = stack.pop() {
                if self.active[cid as usize] {
                    self.active[cid as usize] = false;
                    return true;
                }
            }
        }
        false
    }

    /// Unit-propagates from `qhead`; returns `true` on conflict. Watches
    /// moved during propagation stay valid across assumption rollback
    /// because rolled-back literals return to unassigned.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fl = !p; // the literal that just became false
            let mut ws = std::mem::take(&mut self.watches[fl.index()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = false;
            'next: while i < ws.len() {
                let cid = ws[i] as usize;
                i += 1;
                if !self.active[cid] {
                    continue; // stale entry for a deleted clause
                }
                if self.clauses[cid][0] == fl {
                    self.clauses[cid].swap(0, 1);
                }
                let first = self.clauses[cid][0];
                if self.value(first) == Some(true) {
                    ws[j] = cid as u32;
                    j += 1;
                    continue;
                }
                for k in 2..self.clauses[cid].len() {
                    let l = self.clauses[cid][k];
                    if self.value(l) != Some(false) {
                        self.clauses[cid].swap(1, k);
                        self.watches[l.index()].push(cid as u32);
                        continue 'next;
                    }
                }
                ws[j] = cid as u32;
                j += 1;
                match self.value(first) {
                    Some(false) => {
                        conflict = true;
                        while i < ws.len() {
                            ws[j] = ws[i];
                            j += 1;
                            i += 1;
                        }
                    }
                    None => self.enqueue(first),
                    Some(true) => unreachable!("handled above"),
                }
            }
            ws.truncate(j);
            self.watches[fl.index()] = ws;
            if conflict {
                return true;
            }
        }
        false
    }

    /// RUP check: is `clause` implied by unit propagation over the active
    /// set? Temporary assumptions are rolled back before returning.
    fn is_rup(&mut self, clause: &[Lit]) -> bool {
        if self.contradiction {
            return true;
        }
        debug_assert_eq!(self.qhead, self.trail.len(), "persistent state at fixpoint");
        let saved = self.trail.len();
        let mut conflict = false;
        for &l in clause {
            match self.value(l) {
                Some(true) => {
                    conflict = true; // ¬l contradicts the current state
                    break;
                }
                Some(false) => {}
                None => self.enqueue(!l),
            }
        }
        let ok = conflict || self.propagate();
        for idx in saved..self.trail.len() {
            self.assigns[self.trail[idx].var().index()] = None;
        }
        self.trail.truncate(saved);
        self.qhead = saved;
        ok
    }
}

/// Checks a parsed proof against its input formula.
///
/// # Errors
///
/// Returns the first failing step ([`CheckError::Step`]) or
/// [`CheckError::NotRefutation`] if the proof never derives the empty
/// clause.
pub fn check(cnf: &Cnf, steps: &[ProofStep]) -> Result<CheckReport, CheckError> {
    let mut prop = Prop::new(cnf.num_vars);
    for c in &cnf.clauses {
        prop.add_clause(c);
    }
    // Input xor constraints, normalized to (sorted vars, parity) for the
    // dense refold. They are *not* clauses and never join propagation.
    let inputs: Vec<(Vec<satsolver::Var>, bool)> = cnf
        .xors
        .iter()
        .map(satsolver::XorClause::normalized)
        .collect();

    let mut report = CheckReport::default();
    for (index, step) in steps.iter().enumerate() {
        let fail = |reason: String| CheckError::Step { index, reason };
        // Reject out-of-range variables up front: a malformed proof must
        // fail the check, not panic the checker.
        let step_lits: &[Lit] = match step {
            ProofStep::Add(lits) | ProofStep::Delete(lits) => lits,
            ProofStep::XorDerived { lits, .. } => lits,
        };
        let unit_lits: &[Lit] = match step {
            ProofStep::XorDerived { units, .. } => units,
            _ => &[],
        };
        for l in step_lits.iter().chain(unit_lits) {
            if l.var().index() >= cnf.num_vars {
                return Err(fail(format!(
                    "variable {} out of range (formula has {})",
                    l.var(),
                    cnf.num_vars
                )));
            }
        }
        match step {
            ProofStep::Delete(lits) => {
                if prop.delete_clause(lits) {
                    report.deletions_applied += 1;
                } else {
                    report.deletions_ignored += 1;
                }
            }
            ProofStep::Add(lits) => {
                if !prop.is_rup(lits) {
                    return Err(fail(format!("clause {} is not RUP", dimacs(lits))));
                }
                report.rup_additions += 1;
                if lits.is_empty() {
                    return Ok(report);
                }
                prop.add_clause(lits);
            }
            ProofStep::XorDerived {
                lits,
                origins,
                units,
            } => {
                // Refold the claimed derivation densely over GF(2).
                let mut row = BitVec::zeros(cnf.num_vars);
                let mut rhs = false;
                for &id in origins {
                    let (vars, r) = inputs
                        .get(id as usize)
                        .ok_or_else(|| fail(format!("origin {id} out of range")))?;
                    for v in vars {
                        row.flip(v.index());
                    }
                    rhs ^= r;
                }
                for &u in units {
                    // Substituting `u` is xoring in the singleton
                    // constraint `var(u) = polarity(u)` — sound only if
                    // the unit itself is derivable.
                    if !prop.is_rup(&[u]) {
                        return Err(fail(format!(
                            "substituted unit {} is not RUP",
                            u.to_dimacs()
                        )));
                    }
                    report.xor_units_checked += 1;
                    row.flip(u.var().index());
                    rhs ^= u.is_positive();
                }
                if lits.is_empty() {
                    // Refutation by inconsistent row: 0 = 1.
                    if !row.is_zero() || !rhs {
                        return Err(fail("empty x-line does not refold to 0 = 1".to_string()));
                    }
                    report.xor_steps += 1;
                    return Ok(report);
                }
                // The clause must cover the row's variables exactly, and
                // its unique falsifying assignment must violate the row:
                // that assignment sets each variable to the negation of
                // its literal's polarity, so its parity is the negative-
                // literal count mod 2.
                let mut neg = 0usize;
                let mut seen = BitVec::zeros(cnf.num_vars);
                for l in lits {
                    let v = l.var().index();
                    if seen.get(v) {
                        return Err(fail(format!("duplicate variable in {}", dimacs(lits))));
                    }
                    seen.flip(v);
                    if !row.get(v) {
                        return Err(fail(format!(
                            "variable {} of {} not in the derived row",
                            l.var(),
                            dimacs(lits)
                        )));
                    }
                    neg += usize::from(!l.is_positive());
                }
                if lits.len() != row.count_ones() {
                    return Err(fail(format!(
                        "clause {} misses {} row variable(s)",
                        dimacs(lits),
                        row.count_ones() - lits.len()
                    )));
                }
                if (neg % 2 == 1) == rhs {
                    return Err(fail(format!(
                        "clause {} does not block the row's violating parity",
                        dimacs(lits)
                    )));
                }
                report.xor_steps += 1;
                prop.add_clause(lits);
            }
        }
    }
    Err(CheckError::NotRefutation)
}

/// Parses and checks proof text in one call.
///
/// # Errors
///
/// See [`parse_proof`] and [`check`].
pub fn check_text(cnf: &Cnf, proof: &str) -> Result<CheckReport, CheckError> {
    let steps = parse_proof(proof)?;
    check(cnf, &steps)
}

fn dimacs(lits: &[Lit]) -> String {
    let codes: Vec<String> = lits.iter().map(|l| l.to_dimacs().to_string()).collect();
    format!("[{}]", codes.join(" "))
}

/// A checked UNSAT certificate: the formula, the proof text, and both
/// sides' numbers. Carrying the formula makes the certificate
/// self-contained — it can be re-checked (or deliberately corrupted, in
/// mutation tests) without reconstructing the instance, and dumped as a
/// `.cnf`/`.drat` pair for the standalone `drat-check`.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The formula the proof refutes.
    pub formula: Cnf,
    /// The DRAT+xor proof text.
    pub proof: String,
    /// The solver-side step counters.
    pub stats: ProofStats,
    /// The checker-side verification report.
    pub report: CheckReport,
}

/// Why [`certify_unsat`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertifyError {
    /// The formula is satisfiable — there is nothing to certify.
    Sat,
    /// The emitted proof did not verify (a solver soundness bug).
    Check(CheckError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Sat => write!(f, "formula is satisfiable; no UNSAT certificate"),
            CertifyError::Check(e) => write!(f, "emitted proof failed verification: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Solves `cnf` with proof logging on and verifies the emitted proof,
/// returning the checked certificate.
///
/// The solver is built fresh with the logger installed **before** any
/// constraint is added, so add-time xor eliminations are captured too.
///
/// # Errors
///
/// [`CertifyError::Sat`] if the formula is satisfiable;
/// [`CertifyError::Check`] if the proof does not verify (which would mean
/// a solver soundness bug).
pub fn certify_unsat(cnf: &Cnf) -> Result<Certificate, CertifyError> {
    let shared = DratProof::shared();
    let mut solver = Solver::new();
    solver.set_proof_logger(shared.clone());
    for _ in 0..cnf.num_vars {
        solver.new_var();
    }
    // Mirror `Cnf::to_solver` add order: clauses then xors, so origin ids
    // in the proof index `cnf.xors` directly.
    let mut unsat = false;
    for c in &cnf.clauses {
        unsat |= !solver.add_clause(c);
    }
    for x in &cnf.xors {
        unsat |= !solver.add_xor(&x.lits, x.rhs);
    }
    if !unsat && solver.solve() == SolveResult::Sat {
        return Err(CertifyError::Sat);
    }
    drop(solver);
    let guard = shared.lock().expect("proof mutex");
    let proof = guard.text().to_string();
    let stats = *guard.stats();
    drop(guard);
    let report = check_text(cnf, &proof).map_err(CertifyError::Check)?;
    Ok(Certificate {
        formula: cnf.clone(),
        proof,
        stats,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[i64]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_dimacs(c)).collect()
    }

    /// Pigeonhole formula: `holes + 1` pigeons into `holes` holes (UNSAT).
    fn pigeonhole(holes: usize) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new(pigeons * holes);
        let var = |p: usize, h: usize| Lit::from_dimacs((p * holes + h + 1) as i64);
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn parse_the_three_step_kinds() {
        let steps = parse_proof("1 -2 0\nd 1 -2 0\nx 3 -4 0 1 2 0 -5 0\n0\n").unwrap();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0], ProofStep::Add(lits(&[1, -2])));
        assert_eq!(steps[1], ProofStep::Delete(lits(&[1, -2])));
        assert_eq!(
            steps[2],
            ProofStep::XorDerived {
                lits: lits(&[3, -4]),
                origins: vec![0, 1],
                units: lits(&[-5]),
            }
        );
        assert_eq!(steps[3], ProofStep::Add(Vec::new()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_proof("1 banana 0\n"),
            Err(CheckError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_proof("1 2\n"),
            Err(CheckError::Parse { .. })
        ));
    }

    #[test]
    fn hand_written_rup_refutation_checks() {
        // (a ∨ b)(¬a ∨ b)(a ∨ ¬b)(¬a ∨ ¬b) with the classic two-step proof.
        let cnf = Cnf::parse("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n").unwrap();
        let report = check_text(&cnf, "2 0\n0\n").unwrap();
        assert_eq!(report.rup_additions, 2);
    }

    #[test]
    fn non_rup_step_is_rejected() {
        let cnf = Cnf::parse("p cnf 2 1\n1 2 0\n").unwrap();
        let err = check_text(&cnf, "1 0\n0\n").unwrap_err();
        assert!(matches!(err, CheckError::Step { index: 0, .. }), "{err}");
    }

    #[test]
    fn missing_empty_clause_is_not_a_refutation() {
        let cnf = Cnf::parse("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n").unwrap();
        assert_eq!(check_text(&cnf, "2 0\n"), Err(CheckError::NotRefutation));
    }

    #[test]
    fn deletion_is_tracked_and_weakens_the_set() {
        let cnf = Cnf::parse("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n").unwrap();
        // A deletion keyed by a duplicated literal list still matches
        // [1 2]; without that clause the unit 2 is no longer RUP.
        let err = check_text(&cnf, "d 1 1 2 2 0\n2 0\n0\n").unwrap_err();
        assert!(matches!(err, CheckError::Step { index: 1, .. }), "{err}");
        // Deleting a clause not in the set is ignored, not an error.
        let report = check_text(&cnf, "d 2 0\n2 0\n0\n").unwrap();
        assert_eq!(report.deletions_ignored, 1);
        assert_eq!(report.deletions_applied, 0);
    }

    #[test]
    fn certify_pigeonhole() {
        let cnf = pigeonhole(4);
        let cert = certify_unsat(&cnf).unwrap();
        assert!(cert.report.rup_additions > 0);
        assert_eq!(cert.stats.additions, cert.report.rup_additions);
    }

    #[test]
    fn certify_xor_instances() {
        // Inconsistent at add time: the triangle refutes by elimination.
        let cnf = Cnf::parse("p cnf 3 3\nx1 2 0\nx2 3 0\nx1 3 0\n").unwrap();
        let cert = certify_unsat(&cnf).unwrap();
        assert!(cert.report.xor_steps > 0, "refuted by an x-step");

        // Unit substitution: the clause units 9 and 10 are folded into
        // the wide rows before they cancel into 0 = 1.
        let mut text = String::from("p cnf 10 4\nx1 2 3 4 5 6 7 8 9 0\nx");
        text.push_str("1 2 3 4 5 6 7 8 -10 0\n9 0\n10 0\n");
        let cnf = Cnf::parse(&text).unwrap();
        let cert = certify_unsat(&cnf).unwrap();
        assert!(cert.report.xor_steps > 0);
        assert!(cert.report.xor_units_checked > 0);

        // Needs search: the xor bank sums to 2⊕4⊕6 = 1 (odd count true)
        // while the clauses force exactly two of {2, 4, 6} true.
        let cnf = Cnf::parse(
            "p cnf 6 7\nx1 2 3 0\nx3 4 5 0\nx5 6 1 0\n2 4 0\n2 6 0\n4 6 0\n-2 -4 -6 0\n",
        )
        .unwrap();
        let cert = certify_unsat(&cnf).unwrap();
        assert!(cert.report.xor_steps > 0, "search must lean on the rows");
    }

    #[test]
    fn certify_rejects_sat_formula() {
        let cnf = Cnf::parse("p cnf 2 1\n1 2 0\n").unwrap();
        assert_eq!(certify_unsat(&cnf).unwrap_err(), CertifyError::Sat);
    }

    #[test]
    fn mutated_proof_is_rejected() {
        let cnf = pigeonhole(4);
        let cert = certify_unsat(&cnf).unwrap();
        // Replace the first line with the unit clause [1], which is not
        // RUP against the pigeonhole formula (no propagation fires from
        // assuming -1). The original first line cannot be "1 0": had it
        // been, the unmutated check would have rejected it.
        let (_, rest) = cert.proof.split_once('\n').unwrap();
        let mutated = format!("1 0\n{rest}");
        let err = check_text(&cnf, &mutated).unwrap_err();
        assert!(matches!(err, CheckError::Step { index: 0, .. }), "{err}");
    }

    #[test]
    fn mutated_xor_parity_is_rejected() {
        let cnf = Cnf::parse("p cnf 3 3\nx1 2 0\nx2 3 0\nx1 3 0\n").unwrap();
        let cert = certify_unsat(&cnf).unwrap();
        // The refutation is a single empty x-line summing all three
        // inputs. Dropping one origin breaks the refold to 0 = 1.
        assert!(cert.proof.contains("1 2 3 0"), "{}", cert.proof);
        let mutated = cert.proof.replacen("1 2 3 0", "1 2 0", 1);
        let err = check_text(&cnf, &mutated).unwrap_err();
        assert!(matches!(err, CheckError::Step { .. }), "{err}");
        // Truncating the closing step must also be rejected.
        let last_line_start = cert.proof.trim_end().rfind('\n').map_or(0, |i| i + 1);
        let truncated = &cert.proof[..last_line_start];
        assert!(check_text(&cnf, truncated).is_err());
    }
}
