//! Standalone DRAT+xor proof checker.
//!
//! ```text
//! drat-check <formula.cnf> <proof.drat>
//! ```
//!
//! Exit status: `0` when the proof verifies as a refutation of the
//! formula, `1` when it does not, `2` on usage or I/O errors.

use std::process::ExitCode;
use std::time::Instant;

use proofcheck::{check, parse_proof};
use satsolver::dimacs::Cnf;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [formula_path, proof_path] = args.as_slice() else {
        eprintln!("usage: drat-check <formula.cnf> <proof.drat>");
        return ExitCode::from(2);
    };
    let formula_text = match std::fs::read_to_string(formula_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("drat-check: {formula_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let proof_text = match std::fs::read_to_string(proof_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("drat-check: {proof_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cnf = match Cnf::parse(&formula_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("drat-check: {formula_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let start = Instant::now();
    let steps = match parse_proof(&proof_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("drat-check: NOT VERIFIED: {e}");
            return ExitCode::from(1);
        }
    };
    match check(&cnf, &steps) {
        Ok(report) => {
            let elapsed = start.elapsed();
            println!(
                "VERIFIED: {} vars, {} clauses, {} xors; \
                 {} RUP additions, {} xor steps ({} units substituted), \
                 {} deletions applied ({} ignored); {:.3} ms",
                cnf.num_vars,
                cnf.clauses.len(),
                cnf.xors.len(),
                report.rup_additions,
                report.xor_steps,
                report.xor_units_checked,
                report.deletions_applied,
                report.deletions_ignored,
                elapsed.as_secs_f64() * 1e3,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("drat-check: NOT VERIFIED: {e}");
            ExitCode::from(1)
        }
    }
}
