//! Certificate corpus: generate UNSAT instances, certify each with a
//! logged solver run, verify the emitted proof, and write the
//! `.cnf`/`.drat` pairs to disk for external re-checking by `drat-check`
//! (the CI `certify` job does exactly that).
//!
//! ```text
//! cert-corpus [out-dir]      # default: $CERT_CORPUS_DIR or target/cert-corpus
//! ```
//!
//! Exits nonzero if any instance fails to certify.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use proofcheck::certify_unsat;
use satsolver::dimacs::Cnf;
use satsolver::Lit;

/// `holes + 1` pigeons into `holes` holes: pure-CNF UNSAT.
fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new(pigeons * holes);
    let var = |p: usize, h: usize| Lit::from_dimacs((p * holes + h + 1) as i64);
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                cnf.add_clause(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    cnf
}

/// Three xor rows sharing parity variables in a triangle, each carrying
/// a body of `k` clause-equalized variables (`k` even, so every body
/// has even parity). The rows' GF(2) sum makes the parity variables
/// cancel and says the bodies' joint parity is odd — but the equality
/// chains force it even. The xor engine cannot see the equalities at
/// add time, so the refutation needs search and materialized xor
/// reasons.
fn xor_triangle(k: usize) -> Cnf {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "even body keeps body parity zero"
    );
    let mut cnf = Cnf::new(3 * k + 3);
    let body = |seg: usize, j: usize| Lit::from_dimacs((seg * k + j + 1) as i64);
    let parity = |i: usize| Lit::from_dimacs((3 * k + i % 3 + 1) as i64);
    for seg in 0..3 {
        let mut row: Vec<Lit> = (0..k).map(|j| body(seg, j)).collect();
        row.push(parity(seg));
        row.push(parity(seg + 1));
        cnf.add_xor(row, true);
        for j in 0..k - 1 {
            let (a, b) = (body(seg, j), body(seg, j + 1));
            cnf.add_clause(vec![a, !b]);
            cnf.add_clause(vec![!a, b]);
        }
    }
    cnf
}

/// Two wide parity rows that disagree only after unit substitution.
fn wide_disagreement(width: usize) -> Cnf {
    let mut cnf = Cnf::new(width + 2);
    let sel1 = Lit::from_dimacs((width + 1) as i64);
    let sel2 = Lit::from_dimacs((width + 2) as i64);
    let body: Vec<Lit> = (1..=width).map(|i| Lit::from_dimacs(i as i64)).collect();
    let mut row1 = body.clone();
    row1.push(sel1);
    let mut row2 = body;
    row2.push(!sel2);
    cnf.add_xor(row1, true);
    cnf.add_xor(row2, true);
    cnf.add_clause(vec![sel1]);
    cnf.add_clause(vec![sel2]);
    cnf
}

fn main() -> ExitCode {
    let out_dir: PathBuf = std::env::args().nth(1).map_or_else(
        || {
            std::env::var_os("CERT_CORPUS_DIR")
                .map_or_else(|| PathBuf::from("target/cert-corpus"), PathBuf::from)
        },
        PathBuf::from,
    );
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cert-corpus: {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }

    let corpus: Vec<(&str, Cnf)> = vec![
        ("php4", pigeonhole(4)),
        ("php5", pigeonhole(5)),
        ("xor-tri2", xor_triangle(2)),
        ("xor-tri8", xor_triangle(8)),
        ("xor-wide24", wide_disagreement(24)),
        ("xor-wide63", wide_disagreement(63)),
    ];

    println!(
        "{:<12} {:>6} {:>7} {:>6} {:>8} {:>6} {:>9} {:>9}",
        "instance", "vars", "clauses", "xors", "steps", "x-steps", "bytes", "check-ms"
    );
    let mut failed = false;
    for (name, cnf) in &corpus {
        let start = Instant::now();
        match certify_unsat(cnf) {
            Ok(cert) => {
                let elapsed = start.elapsed();
                let cnf_path = out_dir.join(format!("{name}.cnf"));
                let drat_path = out_dir.join(format!("{name}.drat"));
                let io = std::fs::write(&cnf_path, cnf.to_dimacs())
                    .and_then(|()| std::fs::write(&drat_path, &cert.proof));
                if let Err(e) = io {
                    eprintln!("cert-corpus: writing {name}: {e}");
                    return ExitCode::from(2);
                }
                println!(
                    "{:<12} {:>6} {:>7} {:>6} {:>8} {:>6} {:>9} {:>9.3}",
                    name,
                    cnf.num_vars,
                    cnf.clauses.len(),
                    cnf.xors.len(),
                    cert.stats.steps(),
                    cert.report.xor_steps,
                    cert.proof.len(),
                    elapsed.as_secs_f64() * 1e3,
                );
            }
            Err(e) => {
                eprintln!("cert-corpus: {name}: FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "all {} certificates verified -> {}",
            corpus.len(),
            out_dir.display()
        );
        ExitCode::SUCCESS
    }
}
