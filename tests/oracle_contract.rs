//! Conformance tests for the [`sim::ScanAccess`] session contract.
//!
//! The contract: one query is one complete powered session, so identical
//! queries return identical responses no matter what ran in between — any
//! on-chip key generator must power-on reset. The DynUnlock affine model
//! is built entirely on this; an oracle that leaks key-LFSR state across
//! sessions would silently invalidate the whole attack stack. Every
//! `ScanAccess` implementation in the tree must pass
//! [`sim::check_session_freshness`], and the checker itself must actually
//! catch a leaky implementation.

use dynunlock_repro::gf2::{BitVec, Rng64, SplitMix64};
use dynunlock_repro::lfsr::{Lfsr, TapSet};
use dynunlock_repro::netlist::generator::{s208_like, GeneratorConfig};
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::{
    check_session_freshness, FallibleScanAccess, FaultSpec, FaultyOracle, FreshnessViolation,
    ScanAccess, ScanChain, ScanChip, ScanResponse,
};

#[test]
fn honest_chip_honors_the_session_contract() {
    let c = s208_like();
    let mut chip = ScanChip::new(&c, ScanChain::natural(c.num_dffs()));
    check_session_freshness(&mut chip, 12, 0xF00D).expect("honest chip is stateless per session");
}

#[test]
fn locked_chip_honors_the_session_contract() {
    let mut rng = SplitMix64::new(41);
    for trial in 0..4u64 {
        let c = GeneratorConfig::new("contract", 5, 3, 10, 60)
            .with_seed(trial)
            .generate();
        let chain = ScanChain::shuffled(c.num_dffs(), &mut rng);
        let spec = LockSpec::random(TapSet::maximal(12).unwrap(), c.num_dffs(), 5, &mut rng);
        let seed = spec.random_seed(&mut rng);
        let mut chip = LockedScanChip::new(&c, chain, spec, seed);
        check_session_freshness(&mut chip, 12, trial)
            .expect("locked chip power-on resets every session");
    }
}

/// A deliberately broken oracle: wraps an honest chip but XORs a key LFSR
/// that *keeps free-running across sessions* into the scan-out — exactly
/// the defense EFF-Dyn would be if power-on reset did not exist.
struct LeakyChip<'c> {
    inner: ScanChip<'c>,
    lfsr: Lfsr,
}

impl ScanAccess for LeakyChip<'_> {
    fn num_cells(&self) -> usize {
        self.inner.num_cells()
    }
    fn num_pis(&self) -> usize {
        self.inner.num_pis()
    }
    fn num_pos(&self) -> usize {
        self.inner.num_pos()
    }
    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        // No reseed here: the LFSR state survives from the last query.
        let mut resp = self.inner.query_captures(pattern, pis, captures);
        for bit in &mut resp.scan_out {
            *bit ^= self.lfsr.bit(0);
            self.lfsr.step();
        }
        resp
    }
}

#[test]
fn freshness_checker_catches_a_leaky_oracle() {
    let c = s208_like();
    let taps = TapSet::maximal(8).unwrap();
    let mut leaky = LeakyChip {
        inner: ScanChip::new(&c, ScanChain::natural(c.num_dffs())),
        lfsr: Lfsr::new(taps, BitVec::from_u64(8, 0x5D)),
    };
    let violation = check_session_freshness(&mut leaky, 8, 7)
        .expect_err("a non-resetting key stream must be detected");
    // A key stream that advances on *every* query already breaks the
    // immediate-repeat pass, so this chip is reported as non-deterministic
    // (the stale-state pass never even runs). Either way the violation
    // must carry diverging evidence.
    match violation {
        FreshnessViolation::NonDeterministic { first, repeat, .. } => assert_ne!(first, repeat),
        FreshnessViolation::StaleState { first, replay, .. } => assert_ne!(first, replay),
        other => panic!("unexpected violation kind: {other:?}"),
    }
}

/// A chip that leaks state *only across sessions*: the key stream advances
/// once per query, but an immediate repeat replays the same key — so the
/// repeat pass agrees and only the decoy-separated replay diverges.
struct SlowLeakChip<'c> {
    inner: ScanChip<'c>,
    lfsr: Lfsr,
    last_pattern: Option<Vec<bool>>,
}

impl ScanAccess for SlowLeakChip<'_> {
    fn num_cells(&self) -> usize {
        self.inner.num_cells()
    }
    fn num_pis(&self) -> usize {
        self.inner.num_pis()
    }
    fn num_pos(&self) -> usize {
        self.inner.num_pos()
    }
    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        // The key stream advances only when the stimulus *changes*, so an
        // immediate repeat replays the same key (deterministic), while a
        // replay after intervening decoy traffic sees a drifted key.
        if self.last_pattern.as_deref() != Some(pattern) {
            self.lfsr.step();
            self.last_pattern = Some(pattern.to_vec());
        }
        let mut resp = self.inner.query_captures(pattern, pis, captures);
        for bit in &mut resp.scan_out {
            *bit ^= self.lfsr.bit(0);
        }
        resp
    }
}

#[test]
fn freshness_checker_distinguishes_stale_state_from_noise() {
    let c = s208_like();
    let taps = TapSet::maximal(8).unwrap();
    let mut chip = SlowLeakChip {
        inner: ScanChip::new(&c, ScanChain::natural(c.num_dffs())),
        lfsr: Lfsr::new(taps, BitVec::from_u64(8, 0x5D)),
        last_pattern: None,
    };
    // Immediate repeats replay the same key, so pass 1 cannot see the
    // drift; only the decoy-separated replay of pass 2 can.
    let violation = check_session_freshness(&mut chip, 8, 7)
        .expect_err("cross-session key drift must be detected");
    assert!(
        matches!(violation, FreshnessViolation::StaleState { .. }),
        "drift that survives immediate repeats is stale state, got {violation:?}"
    );
}

/// A noisy (bit-flipping) oracle must be reported as non-deterministic —
/// not misattributed to cross-session state leakage.
struct NoisyAdapter<'c> {
    faulty: FaultyOracle<ScanChip<'c>>,
}

impl ScanAccess for NoisyAdapter<'_> {
    fn num_cells(&self) -> usize {
        self.faulty.inner().num_cells()
    }
    fn num_pis(&self) -> usize {
        self.faulty.inner().num_pis()
    }
    fn num_pos(&self) -> usize {
        self.faulty.inner().num_pos()
    }
    fn query_captures(&mut self, pattern: &[bool], pis: &[bool], captures: usize) -> ScanResponse {
        // Faults other than bit flips are off in this spec, so the query
        // cannot fail; flatten the fallible interface for the checker.
        self.faulty
            .try_query_captures(pattern, pis, captures)
            .expect("only bit-flip faults are enabled")
    }
}

#[test]
fn freshness_checker_flags_a_noisy_oracle_as_non_deterministic() {
    let c = s208_like();
    let inner = ScanChip::new(&c, ScanChain::natural(c.num_dffs()));
    let mut noisy = NoisyAdapter {
        faulty: FaultyOracle::new(inner, FaultSpec::new(0x7E57).with_bit_flips(100_000)),
    };
    let violation = check_session_freshness(&mut noisy, 16, 0xF1A6)
        .expect_err("a 10% bit-flip rate cannot survive 16 repeated probes");
    assert!(
        matches!(violation, FreshnessViolation::NonDeterministic { .. }),
        "noise is non-determinism, not stale state, got {violation:?}"
    );
}

#[test]
fn identical_queries_are_identical_across_arbitrary_interleavings() {
    // Direct (non-checker) spot check on the locked chip: fixed query,
    // random interleaved traffic, response pinned forever.
    let c = s208_like();
    let chain = ScanChain::natural(8);
    let mut rng = SplitMix64::new(3);
    let spec = LockSpec::random(TapSet::maximal(16).unwrap(), 8, 6, &mut rng);
    let seed = spec.random_seed(&mut rng);
    let mut chip = LockedScanChip::new(&c, chain, spec, seed);
    let pattern = vec![true, false, false, true, true, false, true, false];
    let pis: Vec<bool> = (0..10).map(|_| rng.gen_bool()).collect();
    let reference = chip.query(&pattern, &pis);
    for _ in 0..10 {
        let noise_pat: Vec<bool> = (0..8).map(|_| rng.gen_bool()).collect();
        let noise_pis: Vec<bool> = (0..10).map(|_| rng.gen_bool()).collect();
        chip.query_captures(&noise_pat, &noise_pis, 1 + rng.gen_index(4));
        assert_eq!(chip.query(&pattern, &pis), reference);
    }
}
