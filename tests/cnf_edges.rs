//! Edge cases for the CNF encoder: constant nets, degenerate cones,
//! single-DFF chains, and DIMACS round trips of encoded circuits.

use dynunlock_repro::cnf::Encoder;
use dynunlock_repro::netlist::{CircuitBuilder, GateKind};
use dynunlock_repro::satsolver::dimacs::Cnf;
use dynunlock_repro::satsolver::{Lit, SolveResult};
use dynunlock_repro::sim::Evaluator;

/// Assumption literals pinning `lits[i]` to `values[i]`.
fn pin(lits: &[Lit], values: &[bool]) -> Vec<Lit> {
    lits.iter()
        .zip(values)
        .map(|(&l, &v)| if v { l } else { !l })
        .collect()
}

#[test]
fn constant_gates_encode_as_pinned_nets() {
    // y = AND(const1, NOT(const0)) must be constant true; z = OR(const0,
    // const0) constant false — no gate needs an input.
    let mut b = CircuitBuilder::new("consts");
    let one = b.gate(GateKind::Const1, &[], "one");
    let zero = b.gate(GateKind::Const0, &[], "zero");
    let nz = b.gate(GateKind::Not, &[zero], "nz");
    let y = b.gate(GateKind::And, &[one, nz], "y");
    let z = b.gate(GateKind::Or, &[zero, zero], "z");
    b.output(y);
    b.output(z);
    let c = b.finish().unwrap();

    let mut enc = Encoder::new();
    let cone = enc.comb(&c, &[], &[]);
    assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
    assert_eq!(enc.solver().lit_model_value(cone.po[0]), Some(true));
    assert_eq!(enc.solver().lit_model_value(cone.po[1]), Some(false));
    // Pinning against the constants must be unsatisfiable.
    let y_lit = cone.po[0];
    assert_eq!(
        enc.solver_mut().solve_assuming(&[!y_lit]),
        SolveResult::Unsat
    );
}

#[test]
fn input_passthrough_cone_adds_no_gate_clauses() {
    // output = input through a Buf: the "cone" is empty; the PO literal is
    // the PI literal itself.
    let mut b = CircuitBuilder::new("wire");
    let x = b.input("x");
    let y = b.gate(GateKind::Buf, &[x], "y");
    b.output(y);
    let c = b.finish().unwrap();

    let mut enc = Encoder::new();
    let pis = enc.fresh_many(1);
    let cone = enc.comb(&c, &pis, &[]);
    assert_eq!(cone.po[0], pis[0], "a buffer is a wire, not a clause");
    assert_eq!(enc.solver().num_clauses(), 0);
}

#[test]
fn single_dff_chain_unrolls() {
    // One flop fed by its own inverse: q alternates each frame. Unroll
    // three frames and check the alternation appears in the literals.
    let mut b = CircuitBuilder::new("toggle");
    let q = b.net("q");
    let d = b.gate(GateKind::Not, &[q], "d");
    b.dff_into(d, q);
    b.output(q);
    let c = b.finish().unwrap();

    let mut enc = Encoder::new();
    let q0 = enc.fresh_many(1);
    let f1 = enc.comb(&c, &[], &q0);
    let f2 = enc.comb(&c, &[], &f1.next_state);
    let f3 = enc.comb(&c, &[], &f2.next_state);
    // Pin q0 = false: frames must read false, true, false.
    let assumption = pin(&q0, &[false]);
    assert_eq!(
        enc.solver_mut().solve_assuming(&assumption),
        SolveResult::Sat
    );
    assert_eq!(enc.solver().lit_model_value(f1.po[0]), Some(false));
    assert_eq!(enc.solver().lit_model_value(f2.po[0]), Some(true));
    assert_eq!(enc.solver().lit_model_value(f3.po[0]), Some(false));
}

#[test]
fn empty_parity_and_empty_linear_form_are_false() {
    let mut enc = Encoder::new();
    let p = enc.parity(&[]);
    assert_eq!(enc.solver_mut().solve_assuming(&[p]), SolveResult::Unsat);
    let lits = enc.fresh_many(4);
    let zero_row = dynunlock_repro::gf2::BitVec::zeros(4);
    let form = enc.linear_form(&lits, &zero_row);
    assert_eq!(enc.solver_mut().solve_assuming(&[form]), SolveResult::Unsat);
}

#[test]
fn encoded_circuit_roundtrips_through_dimacs() {
    // Encode a small circuit, snapshot to Cnf, serialize to DIMACS text,
    // parse it back, and check the two formulas agree on the original
    // model and on the clause inventory.
    let mut b = CircuitBuilder::new("rt");
    let x = b.input("x");
    let y = b.input("y");
    let a = b.gate(GateKind::Xor, &[x, y], "a");
    let o = b.gate(GateKind::Nand, &[a, x], "o");
    b.output(o);
    let c = b.finish().unwrap();

    let mut enc = Encoder::new();
    let pis = enc.fresh_many(2);
    let cone = enc.comb(&c, &pis, &[]);
    assert_eq!(
        enc.solver_mut().solve_assuming(&[!cone.po[0]]),
        SolveResult::Sat,
        "NAND can go false"
    );

    let snapshot = enc.solver().to_cnf();
    let text = snapshot.to_dimacs();
    let reparsed = Cnf::parse(&text).expect("emitted DIMACS reparses");
    assert_eq!(reparsed.num_vars, snapshot.num_vars);
    assert_eq!(reparsed.clauses, snapshot.clauses);

    // The reparsed formula solves to the same verdicts as the live solver.
    let (mut fresh, vars) = reparsed.to_solver();
    let po_var = vars[cone.po[0].var().index()];
    let po_lit = Lit::new(po_var, cone.po[0].is_positive());
    assert_eq!(fresh.solve_assuming(&[!po_lit]), SolveResult::Sat);
    // o = NAND(a, x) with a = x⊕y: o is false iff x=1,y=0 — forcing
    // x=0 alongside ¬o must be unsatisfiable in both formulas.
    let x0 = Lit::new(vars[pis[0].var().index()], pis[0].is_positive());
    assert_eq!(fresh.solve_assuming(&[!po_lit, !x0]), SolveResult::Unsat);
    assert_eq!(
        enc.solver_mut().solve_assuming(&[!cone.po[0], !pis[0]]),
        SolveResult::Unsat
    );
}

#[test]
fn encoder_model_matches_evaluator_on_edge_circuit() {
    // A circuit exercising every edge at once: constants feeding logic, a
    // buffer chain, and an XNOR reduction.
    let mut b = CircuitBuilder::new("edgemix");
    let x = b.input("x");
    let one = b.gate(GateKind::Const1, &[], "one");
    let buf = b.gate(GateKind::Buf, &[x], "buf");
    let mix = b.gate(GateKind::Xnor, &[buf, one, x], "mix");
    let out = b.gate(GateKind::Nor, &[mix, one], "out");
    b.output(mix);
    b.output(out);
    let c = b.finish().unwrap();

    let mut ev = Evaluator::new(&c);
    let mut enc = Encoder::new();
    let pis = enc.fresh_many(1);
    let cone = enc.comb(&c, &pis, &[]);
    for v in [false, true] {
        ev.eval(&[v], &[]);
        assert_eq!(
            enc.solver_mut().solve_assuming(&pin(&pis, &[v])),
            SolveResult::Sat
        );
        for (i, &po) in cone.po.iter().enumerate() {
            assert_eq!(
                enc.solver().lit_model_value(po),
                Some(ev.output_values()[i]),
                "PO {i} with x={v}"
            );
        }
    }
}
