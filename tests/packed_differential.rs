//! Differential property tests for the word-parallel hot paths:
//!
//! * `PackedEvaluator` / `PackedScanChip` against the scalar `Evaluator` /
//!   `ScanChip` on random netlist profiles and random scan-chain orders —
//!   all 64 lanes must match bit-for-bit;
//! * M4RI blocked elimination against plain Gaussian elimination on
//!   random, rank-deficient, and inconsistent systems.
//!
//! The scalar paths are the semantic references (DESIGN.md §5); any
//! divergence here is a bug in the packed/blocked fast paths.

use dynunlock_repro::gf2::{self, m4ri, BitMatrix, BitVec, LinSolver, Rng64, Xoshiro256};
use dynunlock_repro::netlist::generator::GeneratorConfig;
use dynunlock_repro::netlist::profiles::PAPER_BENCHMARKS;
use dynunlock_repro::par;
use dynunlock_repro::sim::{
    pack_lanes, pack_lanes_wide, try_pack_lanes, try_pack_lanes_wide, unpack_lane,
    unpack_lane_wide, Evaluator, LaneWord, PackError, PackedEvaluator, PackedScanChip,
    ParPackedEvaluator, ParPackedScanChip, ScanAccess, ScanChain, ScanChip, WidePackedEvaluator,
    W256,
};

/// Random generator profiles spanning interface shapes: (pis, pos, dffs,
/// gates, seed).
const RANDOM_PROFILES: [(usize, usize, usize, usize, u64); 5] = [
    (4, 3, 5, 40, 11),
    (12, 9, 20, 300, 22),
    (30, 18, 64, 900, 33),
    (7, 7, 130, 500, 44),
    (20, 40, 33, 1200, 55),
];

#[test]
fn packed_evaluator_matches_scalar_on_random_profiles() {
    for &(pis, pos, dffs, gates, seed) in &RANDOM_PROFILES {
        let cfg =
            GeneratorConfig::new(format!("diff{seed}"), pis, pos, dffs, gates).with_seed(seed);
        let c = cfg.generate();
        let mut rng = Xoshiro256::new(seed ^ 0xD1FF);
        for round in 0..3 {
            let pi_words: Vec<u64> = (0..c.inputs().len()).map(|_| rng.next_u64()).collect();
            let st_words: Vec<u64> = (0..c.num_dffs()).map(|_| rng.next_u64()).collect();

            let mut packed = PackedEvaluator::new(&c);
            packed.eval(&pi_words, &st_words);
            let po = packed.output_values();
            let ns = packed.next_state();

            let mut scalar = Evaluator::new(&c);
            for lane in 0..64 {
                scalar.eval(&unpack_lane(&pi_words, lane), &unpack_lane(&st_words, lane));
                assert_eq!(
                    unpack_lane(&po, lane),
                    scalar.output_values(),
                    "PO mismatch: profile seed {seed}, round {round}, lane {lane}"
                );
                assert_eq!(
                    unpack_lane(&ns, lane),
                    scalar.next_state(),
                    "next-state mismatch: profile seed {seed}, round {round}, lane {lane}"
                );
            }
        }
    }
}

#[test]
fn packed_evaluator_matches_scalar_on_paper_profile() {
    // One shrunken paper benchmark keeps the cross-check on realistic
    // circuit shape without slowing the suite.
    let c = PAPER_BENCHMARKS[0].scaled(0.25).build(0);
    let mut rng = Xoshiro256::new(0xBEEF);
    let pi_words: Vec<u64> = (0..c.inputs().len()).map(|_| rng.next_u64()).collect();
    let st_words: Vec<u64> = (0..c.num_dffs()).map(|_| rng.next_u64()).collect();
    let mut packed = PackedEvaluator::new(&c);
    packed.eval(&pi_words, &st_words);
    let mut scalar = Evaluator::new(&c);
    for lane in 0..64 {
        scalar.eval(&unpack_lane(&pi_words, lane), &unpack_lane(&st_words, lane));
        for &out in c.outputs() {
            assert_eq!(
                packed.lane_value(out, lane),
                scalar.value(out),
                "lane {lane}"
            );
        }
    }
}

#[test]
fn packed_scan_chip_matches_scalar_on_random_chain_orders() {
    for &(pis, pos, dffs, gates, seed) in &RANDOM_PROFILES[..3] {
        let cfg =
            GeneratorConfig::new(format!("scan{seed}"), pis, pos, dffs, gates).with_seed(seed);
        let c = cfg.generate();
        let mut rng = Xoshiro256::new(seed ^ 0x5CA2);
        for round in 0..3 {
            let chain = ScanChain::shuffled(c.num_dffs(), &mut rng);
            let patterns: Vec<Vec<bool>> = (0..64)
                .map(|_| (0..c.num_dffs()).map(|_| rng.next_u64() & 1 == 1).collect())
                .collect();
            let pi_lanes: Vec<Vec<bool>> = (0..64)
                .map(|_| {
                    (0..c.inputs().len())
                        .map(|_| rng.next_u64() & 1 == 1)
                        .collect()
                })
                .collect();
            let captures = 1 + (round % 3);

            let mut packed = PackedScanChip::new(&c, chain.clone());
            let resp =
                packed.query_captures(&pack_lanes(&patterns), &pack_lanes(&pi_lanes), captures);

            let mut scalar = ScanChip::new(&c, chain);
            for lane in 0..64 {
                let sresp = scalar.query_captures(&patterns[lane], &pi_lanes[lane], captures);
                assert_eq!(
                    unpack_lane(&resp.scan_out, lane),
                    sresp.scan_out,
                    "scan_out: seed {seed}, round {round}, lane {lane}"
                );
                assert_eq!(
                    unpack_lane(&resp.po, lane),
                    sresp.po,
                    "po: seed {seed}, round {round}, lane {lane}"
                );
            }
        }
    }
}

#[test]
fn m4ri_rref_matches_gaussian_on_random_systems() {
    let mut rng = Xoshiro256::new(0x4121);
    for trial in 0..25 {
        let n = 2 + rng.gen_index(90);
        let cols = 2 + rng.gen_index(140);
        let rows: Vec<BitVec> = (0..n).map(|_| BitVec::random(cols, &mut rng)).collect();
        let mut blocked = rows.clone();
        let mut plain = rows;
        let pb = m4ri::rref(&mut blocked);
        let pp = m4ri::rref_gaussian(&mut plain);
        assert_eq!(pb, pp, "pivots: trial {trial} ({n}x{cols})");
        assert_eq!(blocked, plain, "RREF rows: trial {trial} ({n}x{cols})");
    }
}

#[test]
fn m4ri_rank_matches_gaussian_on_rank_deficient_matrices() {
    let mut rng = Xoshiro256::new(0xDEF1);
    for trial in 0..10 {
        let base = 3 + rng.gen_index(25);
        let cols = 10 + rng.gen_index(60);
        let mut a = BitMatrix::random(base, cols, &mut rng);
        // append random XOR-combinations of existing rows: rank unchanged
        for _ in 0..base {
            let mut combo = BitVec::zeros(cols);
            for r in 0..base {
                if rng.next_u64() & 1 == 1 {
                    combo.xor_assign(a.row(r));
                }
            }
            a.push_row(combo);
        }
        assert_eq!(a.rank(), a.rank_gaussian(), "trial {trial}");
        assert!(a.rank() <= base, "trial {trial}");
        for v in a.nullspace() {
            assert!(a.mul_vec(&v).is_zero(), "trial {trial}");
        }
    }
}

#[test]
fn m4ri_solve_agrees_with_incremental_solver_on_inconsistent_systems() {
    let mut rng = Xoshiro256::new(0x1BAD);
    let mut saw_inconsistent = false;
    for trial in 0..30 {
        // overdetermined systems with random rhs are frequently inconsistent
        let cols = 2 + rng.gen_index(12);
        let n = cols + 1 + rng.gen_index(10);
        let a = BitMatrix::random(n, cols, &mut rng);
        let b = BitVec::random(n, &mut rng);
        let mut reference = LinSolver::new(cols);
        let ref_ok = reference.add_system(&a, &b).is_ok();
        let batch = gf2::solve_system(&a, &b);
        assert_eq!(batch.is_ok(), ref_ok, "consistency verdict: trial {trial}");
        if let Ok(sol) = batch {
            assert_eq!(a.mul_vec(&sol.particular), b, "trial {trial}");
            assert_eq!(
                sol.nullity(),
                reference.solve().unwrap().nullity(),
                "trial {trial}"
            );
        } else {
            saw_inconsistent = true;
        }
    }
    assert!(
        saw_inconsistent,
        "test must exercise at least one inconsistent system"
    );
}

/// Random scalar `(pis, state)` stimuli for a circuit.
fn random_stimuli(
    num_inputs: usize,
    num_dffs: usize,
    count: usize,
    rng: &mut Xoshiro256,
) -> Vec<(Vec<bool>, Vec<bool>)> {
    (0..count)
        .map(|_| {
            (
                (0..num_inputs).map(|_| rng.next_u64() & 1 == 1).collect(),
                (0..num_dffs).map(|_| rng.next_u64() & 1 == 1).collect(),
            )
        })
        .collect()
}

/// Reference answers from the scalar evaluator.
fn scalar_answers(
    c: &dynunlock_repro::netlist::Circuit,
    stimuli: &[(Vec<bool>, Vec<bool>)],
) -> Vec<(Vec<bool>, Vec<bool>)> {
    let mut scalar = Evaluator::new(c);
    stimuli
        .iter()
        .map(|(pis, state)| {
            scalar.eval(pis, state);
            (scalar.output_values(), scalar.next_state())
        })
        .collect()
}

#[test]
fn wide_256_evaluator_matches_scalar_on_randomized_profiles() {
    let mut rng = Xoshiro256::new(0x256D1FF);
    for &(pis, pos, dffs, gates, seed) in &RANDOM_PROFILES[..4] {
        let cfg =
            GeneratorConfig::new(format!("w256-{seed}"), pis, pos, dffs, gates).with_seed(seed);
        let c = cfg.generate();
        // Randomized pattern count in 1..=256 each trial (proptest-style:
        // the sizes themselves are drawn, not fixed).
        let count = 1 + rng.gen_index(256);
        let stimuli = random_stimuli(c.inputs().len(), c.num_dffs(), count, &mut rng);
        let expect = scalar_answers(&c, &stimuli);

        let pi_lanes: Vec<Vec<bool>> = stimuli.iter().map(|(p, _)| p.clone()).collect();
        let st_lanes: Vec<Vec<bool>> = stimuli.iter().map(|(_, s)| s.clone()).collect();
        let mut pi_words: Vec<W256> = pack_lanes_wide(&pi_lanes[..count.min(256)]);
        let mut st_words: Vec<W256> = pack_lanes_wide(&st_lanes[..count.min(256)]);
        pi_words.resize(c.inputs().len(), W256::zeros());
        st_words.resize(c.num_dffs(), W256::zeros());

        let mut wide = WidePackedEvaluator::<W256>::new(&c);
        wide.eval(&pi_words, &st_words);
        let po = wide.output_values();
        let ns = wide.next_state();
        for (lane, (epo, ens)) in expect.iter().enumerate() {
            assert_eq!(
                &unpack_lane_wide(&po, lane),
                epo,
                "PO seed {seed} lane {lane}"
            );
            assert_eq!(
                &unpack_lane_wide(&ns, lane),
                ens,
                "NS seed {seed} lane {lane}"
            );
        }
    }
}

#[test]
fn par_evaluator_matches_scalar_at_every_width_and_thread_count() {
    let hardware = par::resolve(None);
    let thread_counts = [1, 2, hardware];
    let mut rng = Xoshiro256::new(0xFA2_A11);
    for &(pis, pos, dffs, gates, seed) in &RANDOM_PROFILES[..3] {
        let cfg =
            GeneratorConfig::new(format!("par-{seed}"), pis, pos, dffs, gates).with_seed(seed);
        let c = cfg.generate();
        // Ragged sizes on purpose: below one block, exactly one block,
        // and a random multi-block count with a partial tail.
        for count in [1, 64, 65 + rng.gen_index(300)] {
            let stimuli = random_stimuli(c.inputs().len(), c.num_dffs(), count, &mut rng);
            let expect = scalar_answers(&c, &stimuli);
            for &threads in &thread_counts {
                let got64 = ParPackedEvaluator::<u64>::new(&c)
                    .with_threads(threads)
                    .eval_patterns(&stimuli);
                assert_eq!(got64, expect, "u64 seed {seed} count {count} t{threads}");
                let got256 = ParPackedEvaluator::<W256>::new(&c)
                    .with_threads(threads)
                    .eval_patterns(&stimuli);
                assert_eq!(got256, expect, "W256 seed {seed} count {count} t{threads}");
            }
        }
    }
}

#[test]
fn par_scan_chip_matches_scalar_chip_at_every_width_and_thread_count() {
    let hardware = par::resolve(None);
    let mut rng = Xoshiro256::new(0x05CA_2FA2);
    let (pis, pos, dffs, gates, seed) = RANDOM_PROFILES[1];
    let cfg = GeneratorConfig::new(format!("pscan-{seed}"), pis, pos, dffs, gates).with_seed(seed);
    let c = cfg.generate();
    let chain = ScanChain::shuffled(c.num_dffs(), &mut rng);
    let count = 70 + rng.gen_index(160);
    let sessions: Vec<(Vec<bool>, Vec<bool>)> = (0..count)
        .map(|_| {
            (
                (0..c.num_dffs()).map(|_| rng.next_u64() & 1 == 1).collect(),
                (0..c.inputs().len())
                    .map(|_| rng.next_u64() & 1 == 1)
                    .collect(),
            )
        })
        .collect();
    for captures in [1, 2] {
        let mut scalar = ScanChip::new(&c, chain.clone());
        let expect: Vec<_> = sessions
            .iter()
            .map(|(pattern, pi)| scalar.query_captures(pattern, pi, captures))
            .collect();
        for threads in [1, 2, hardware] {
            let got64 = ParPackedScanChip::<u64>::new(&c, chain.clone())
                .with_threads(threads)
                .query_patterns(&sessions, captures);
            assert_eq!(got64, expect, "u64 captures {captures} t{threads}");
            let got256 = ParPackedScanChip::<W256>::new(&c, chain.clone())
                .with_threads(threads)
                .query_patterns(&sessions, captures);
            assert_eq!(got256, expect, "W256 captures {captures} t{threads}");
        }
    }
}

#[test]
fn pack_lanes_reports_typed_errors_for_bad_batches() {
    // Too many patterns for the lane width.
    let too_many: Vec<Vec<bool>> = (0..65).map(|i| vec![i % 2 == 0]).collect();
    assert!(matches!(
        try_pack_lanes(&too_many),
        Err(PackError::TooManyPatterns { got: 65, lanes: 64 })
    ));
    // The same batch fits a 256-lane word.
    assert!(try_pack_lanes_wide::<W256>(&too_many).is_ok());
    let way_too_many: Vec<Vec<bool>> = (0..257).map(|_| vec![true]).collect();
    assert!(matches!(
        try_pack_lanes_wide::<W256>(&way_too_many),
        Err(PackError::TooManyPatterns {
            got: 257,
            lanes: 256
        })
    ));
    // Ragged lengths.
    let ragged = vec![vec![true, false], vec![true]];
    match try_pack_lanes(&ragged) {
        Err(PackError::RaggedPattern {
            index,
            len,
            expected,
        }) => {
            assert_eq!((index, len, expected), (1, 1, 2));
        }
        other => panic!("expected RaggedPattern, got {other:?}"),
    }
    // Errors render as actionable messages.
    let msg = try_pack_lanes(&too_many).unwrap_err().to_string();
    assert!(msg.contains("65"), "message names the count: {msg}");
}

#[test]
fn rref_parallel_matches_gaussian_across_thread_counts() {
    let mut rng = Xoshiro256::new(0x6F2_1517);
    for trial in 0..12 {
        let n = 2 + rng.gen_index(120);
        let cols = 2 + rng.gen_index(160);
        let rows: Vec<BitVec> = (0..n).map(|_| BitVec::random(cols, &mut rng)).collect();
        let mut reference = rows.clone();
        let pivots = m4ri::rref_gaussian(&mut reference);
        for threads in [1, 2, 3, 8] {
            let mut work = rows.clone();
            assert_eq!(
                m4ri::rref_parallel(&mut work, threads),
                pivots,
                "pivots: trial {trial} ({n}x{cols}) t{threads}"
            );
            assert_eq!(
                work, reference,
                "rows: trial {trial} ({n}x{cols}) t{threads}"
            );
        }
    }
}

#[test]
fn m4ri_block_sizes_agree_on_one_large_system() {
    let mut rng = Xoshiro256::new(0xB10C);
    let rows: Vec<BitVec> = (0..200).map(|_| BitVec::random(200, &mut rng)).collect();
    let mut reference = rows.clone();
    let pivots = m4ri::rref_gaussian(&mut reference);
    for k in [1, 4, 8, 12, 16] {
        let mut work = rows.clone();
        assert_eq!(m4ri::rref_with_block(&mut work, k), pivots, "k={k}");
        assert_eq!(work, reference, "k={k}");
    }
}
