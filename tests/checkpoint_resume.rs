//! Checkpoint kill/resume round trips: an attack killed mid-loop must
//! resume from serialized bytes — in a "different process" that rebuilds
//! everything from the instance description — and land on the identical
//! seed the uninterrupted run recovers.

use dynunlock_repro::dynunlock::{
    unlock_robust, AttackConfig, AttackState, Checkpoint, CheckpointError, RobustConfig,
    RobustOutcome, Step,
};
use dynunlock_repro::gf2::{BitVec, Xoshiro256};
use dynunlock_repro::lfsr::TapSet;
use dynunlock_repro::netlist::generator::{s208_like, GeneratorConfig};
use dynunlock_repro::netlist::Circuit;
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::{FaultSpec, FaultyOracle, Reliable, ScanChain};

struct Instance {
    circuit: Circuit,
    chain: ScanChain,
    spec: LockSpec,
    secret: BitVec,
}

fn instance(key_width: usize, num_gates: usize, seed: u64) -> Instance {
    instance_on(s208_like(), key_width, num_gates, seed)
}

/// A known-good 64-bit-key instance (shared with `tests/fault_injection.rs`,
/// first row of its golden table): session-mask rows span the full seed
/// space at two captures, the secret's equivalence class is trivial, and
/// the attack converges in ~14 DIPs. Requires `captures: 2`.
fn golden_instance() -> Instance {
    let circuit = GeneratorConfig::new("wide", 6, 4, 36, 180)
        .with_seed(0x1d5f_10f4_27e0_a5be)
        .generate();
    let mut rng = Xoshiro256::new(0xdc9e_6c1a_231f_e638);
    let taps = TapSet::maximal(64).unwrap();
    let spec = LockSpec::random(taps, circuit.num_dffs(), 10, &mut rng);
    let secret = spec.random_seed(&mut rng);
    Instance {
        chain: ScanChain::natural(circuit.num_dffs()),
        circuit,
        spec,
        secret,
    }
}

fn instance_on(circuit: Circuit, key_width: usize, num_gates: usize, seed: u64) -> Instance {
    let chain = ScanChain::natural(circuit.num_dffs());
    let mut rng = Xoshiro256::new(seed);
    let taps = TapSet::maximal(key_width).unwrap();
    let spec = LockSpec::random(taps, chain.len(), num_gates, &mut rng);
    let secret = spec.random_seed(&mut rng);
    Instance {
        circuit,
        chain,
        spec,
        secret,
    }
}

impl Instance {
    fn chip(&self) -> LockedScanChip<'_> {
        LockedScanChip::new(
            &self.circuit,
            self.chain.clone(),
            self.spec.clone(),
            self.secret.clone(),
        )
    }
}

/// The acceptance scenario: a 64-bit-key attack killed at a checkpoint
/// resumes to the identical seed the uninterrupted run recovers.
///
/// Release builds run the uninterrupted reference attack too and compare
/// seed-to-seed; debug builds (≈30× slower per solve) skip the reference
/// run and compare against the known secret directly — equivalent here,
/// because the instance pins the seed exactly (`nullity == 0`).
#[test]
fn killed_64_bit_attack_resumes_to_the_identical_seed() {
    let inst = golden_instance();
    let cfg = RobustConfig::strict(AttackConfig {
        captures: 2,
        ..AttackConfig::default()
    });

    // Reference: the uninterrupted run.
    let reference_seed = if cfg!(debug_assertions) {
        inst.secret.clone()
    } else {
        let reference = match unlock_robust(
            &inst.circuit,
            &inst.chain,
            &inst.spec,
            &mut Reliable(inst.chip()),
            &cfg,
        ) {
            RobustOutcome::Unlocked { unlock, .. } => unlock,
            RobustOutcome::Partial(report) => panic!("reference run degraded: {}", report.reason),
        };
        assert_eq!(reference.nullity, 0, "this instance pins the seed exactly");
        assert_eq!(reference.seed, inst.secret);
        reference.seed
    };

    // Interrupted: run a few DIP rounds, checkpoint, "kill the process"
    // (drop every live object), then rebuild purely from the serialized
    // bytes plus the instance description.
    let mut oracle = Reliable(inst.chip());
    let mut state = AttackState::new(&inst.circuit, &inst.chain, &inst.spec, cfg.clone());
    let mut converged_early = false;
    while state.dip_count() < 3 {
        match state.step(&mut oracle) {
            Step::Dip => {}
            Step::Converged => {
                converged_early = true;
                break;
            }
            other => panic!("unexpected step outcome: {other:?}"),
        }
    }
    assert!(!converged_early, "64-bit instance needs more than 3 DIPs");
    let bytes = state.checkpoint().to_bytes();
    drop(state);
    drop(oracle);

    let ckpt = Checkpoint::from_bytes(&bytes).expect("bytes round-trip");
    assert!(ckpt.dip_count() >= 3);
    let mut oracle = Reliable(inst.chip());
    let resumed = AttackState::resume(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        cfg,
        &ckpt,
        &mut oracle,
    )
    .expect("checkpoint re-validates against the live oracle");
    let resumed_unlock = match resumed.run(&mut oracle) {
        RobustOutcome::Unlocked { unlock, .. } => unlock,
        RobustOutcome::Partial(report) => panic!("resumed run degraded: {}", report.reason),
    };
    assert_eq!(
        resumed_unlock.seed, reference_seed,
        "resume must land on the identical seed"
    );
    assert!(resumed_unlock.verified);
}

/// Kill/resume with a *faulty* oracle on both sides of the kill: the
/// checkpoint re-validation itself runs through retry + voting.
#[test]
fn resume_through_a_faulty_oracle_still_converges() {
    let inst = instance(16, 6, 0xD00D);
    let cfg = RobustConfig {
        replication: 3,
        ..RobustConfig::default()
    };
    let fault_schedule = |seed: u64| {
        FaultSpec::new(seed)
            .with_bit_flips(1_000)
            .with_transients(20_000)
    };

    let mut oracle = FaultyOracle::new(inst.chip(), fault_schedule(0x111));
    let mut state = AttackState::new(&inst.circuit, &inst.chain, &inst.spec, cfg.clone());
    while state.dip_count() < 1 && !state.is_terminal() {
        match state.step(&mut oracle) {
            Step::Dip | Step::OutOfBudget => {}
            Step::Converged => break,
            Step::Degraded(reason) => panic!("pre-kill run degraded: {reason}"),
        }
    }
    let bytes = state.checkpoint().to_bytes();
    drop(state);

    // The "restarted process" reconnects to the bench with a *different*
    // noise future (fresh fault seed) — re-validation must vote through it.
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
    let mut oracle = FaultyOracle::new(inst.chip(), fault_schedule(0x222));
    let resumed = AttackState::resume(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        cfg,
        &ckpt,
        &mut oracle,
    )
    .expect("voting repairs fresh noise during re-validation");
    match resumed.run(&mut oracle) {
        RobustOutcome::Unlocked { unlock, .. } => {
            assert!(unlock.verified);
            if unlock.nullity == 0 {
                assert_eq!(unlock.seed, inst.secret);
            }
        }
        RobustOutcome::Partial(report) => panic!("resumed run degraded: {}", report.reason),
    }
}

/// Resuming against the wrong chip must be caught by re-validation, not
/// produce a Frankenstein attack state.
#[test]
fn resume_rejects_a_different_chip() {
    let inst = instance(16, 6, 0xE11E);
    let cfg = RobustConfig::strict(AttackConfig::default());
    let mut oracle = Reliable(inst.chip());
    let mut state = AttackState::new(&inst.circuit, &inst.chain, &inst.spec, cfg.clone());
    while state.dip_count() < 1 {
        match state.step(&mut oracle) {
            Step::Dip => {}
            Step::Converged => return, // nothing recorded to disagree on
            other => panic!("unexpected step outcome: {other:?}"),
        }
    }
    let ckpt = Checkpoint::from_bytes(&state.checkpoint().to_bytes()).unwrap();

    // Same instance description, different secret behind the bench.
    let mut rng = Xoshiro256::new(0xBAD);
    let other_secret = inst.spec.random_seed(&mut rng);
    assert_ne!(other_secret, inst.secret);
    let mut wrong = Reliable(LockedScanChip::new(
        &inst.circuit,
        inst.chain.clone(),
        inst.spec.clone(),
        other_secret,
    ));
    let err = AttackState::resume(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        cfg,
        &ckpt,
        &mut wrong,
    )
    .expect_err("a different secret must fail re-validation");
    assert!(matches!(err, CheckpointError::OracleMismatch { .. }));
}

/// Checkpoint bytes must survive an exact serialize → parse → serialize
/// round trip (the format is the contract, not the in-memory struct).
#[test]
fn checkpoint_bytes_are_stable_under_reserialization() {
    let inst = instance(16, 6, 0xF00F);
    let cfg = RobustConfig::strict(AttackConfig::default());
    let mut oracle = Reliable(inst.chip());
    let mut state = AttackState::new(&inst.circuit, &inst.chain, &inst.spec, cfg);
    for _ in 0..2 {
        if matches!(state.step(&mut oracle), Step::Converged) {
            break;
        }
    }
    let bytes = state.checkpoint().to_bytes();
    let reparsed = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(reparsed.to_bytes(), bytes, "canonical form is a fixpoint");
}
