//! Fault-injection round trips: the robust attack machine against
//! deliberately unreliable oracles.
//!
//! The headline acceptance test for the fault-tolerance work: a 64-bit-key
//! attack against a [`FaultyOracle`] with a seeded bit-flip + transient
//! error schedule must recover the *exact* seed through retry and majority
//! voting, across a small fixed seed matrix. Alongside it: randomized
//! fault schedules that stress the retry/vote machinery harder, and
//! degraded runs that must report honest partial knowledge instead of
//! fabricating success.

use std::time::Duration;

use dynunlock_repro::dynunlock::{
    unlock_robust, AttackConfig, DegradeReason, RetryPolicy, RobustConfig, RobustOutcome,
};
use dynunlock_repro::gf2::{Rng64, Xoshiro256};
use dynunlock_repro::lfsr::TapSet;
use dynunlock_repro::netlist::generator::{s208_like, GeneratorConfig};
use dynunlock_repro::netlist::Circuit;
use dynunlock_repro::satsolver::Budget;
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::{FaultSpec, FaultyOracle, ScanChain};

struct Instance {
    circuit: Circuit,
    chain: ScanChain,
    spec: LockSpec,
    secret: dynunlock_repro::gf2::BitVec,
}

fn instance(key_width: usize, num_gates: usize, seed: u64) -> Instance {
    instance_on(s208_like(), key_width, num_gates, seed)
}

/// A known-good 64-bit-key instance: the session-mask rows span the full
/// seed space (rank 64 at two captures), the secret's functional
/// equivalence class is trivial (recovery is *exact*, not
/// class-canonical), and the attack converges fast. Each tuple is
/// `(dffs, cgates, kgates, generator_seed, lock_seed)`, found by seeded
/// search; the attack must run with `captures: 2` — the second capture's
/// deeper LFSR rows are what complete the rank.
const GOLDEN_64: &[(usize, usize, usize, u64, u64)] = &[
    (36, 180, 10, 0x1d5f_10f4_27e0_a5be, 0xdc9e_6c1a_231f_e638),
    (34, 180, 12, 0x6ee7_c499_ed45_0964, 0xffb6_99f9_dfe2_8a1f),
    (36, 105, 12, 0xf828_7869_510d_c8b0, 0xc492_04a8_6e69_3984),
];

/// Builds golden instance `i`. The companion [`AttackConfig`] must use
/// two captures (see [`golden_attack_config`]).
fn golden_instance(i: usize) -> Instance {
    let (dffs, cgates, kgates, gseed, lseed) = GOLDEN_64[i];
    let circuit = GeneratorConfig::new("wide", 6, 4, dffs, cgates)
        .with_seed(gseed)
        .generate();
    let mut rng = Xoshiro256::new(lseed);
    let taps = TapSet::maximal(64).unwrap();
    let spec = LockSpec::random(taps, circuit.num_dffs(), kgates, &mut rng);
    let secret = spec.random_seed(&mut rng);
    Instance {
        chain: ScanChain::natural(circuit.num_dffs()),
        circuit,
        spec,
        secret,
    }
}

fn golden_attack_config() -> AttackConfig {
    AttackConfig {
        captures: 2,
        ..AttackConfig::default()
    }
}

fn instance_on(circuit: Circuit, key_width: usize, num_gates: usize, seed: u64) -> Instance {
    let chain = ScanChain::natural(circuit.num_dffs());
    let mut rng = Xoshiro256::new(seed);
    let taps = TapSet::maximal(key_width).unwrap();
    let spec = LockSpec::random(taps, chain.len(), num_gates, &mut rng);
    let secret = spec.random_seed(&mut rng);
    Instance {
        circuit,
        chain,
        spec,
        secret,
    }
}

impl Instance {
    fn chip(&self) -> LockedScanChip<'_> {
        LockedScanChip::new(
            &self.circuit,
            self.chain.clone(),
            self.spec.clone(),
            self.secret.clone(),
        )
    }
}

/// The acceptance scenario: 64-bit key, fixed bit-flip + transient
/// schedule, exact seed back — over a matrix of instance and fault seeds.
/// Debug builds (≈30× slower per solve) run the first matrix entry; the
/// CI robustness job runs the full matrix in release.
#[test]
fn recovers_exact_64_bit_seed_through_seeded_faults() {
    let matrix_len = if cfg!(debug_assertions) {
        1
    } else {
        GOLDEN_64.len()
    };
    for (i, fault_seed) in [0x10u64, 0x20, 0x30]
        .into_iter()
        .enumerate()
        .take(matrix_len)
    {
        let inst = golden_instance(i);
        let cfg = RobustConfig {
            base: golden_attack_config(),
            replication: 3,
            ..RobustConfig::default()
        };
        let mut oracle = FaultyOracle::new(
            inst.chip(),
            FaultSpec::new(fault_seed)
                .with_bit_flips(2_000)
                .with_transients(30_000),
        );
        let outcome = unlock_robust(&inst.circuit, &inst.chain, &inst.spec, &mut oracle, &cfg);
        let RobustOutcome::Unlocked { unlock, faults } = outcome else {
            panic!("instance {i} fault seed {fault_seed:#x}: attack must survive this schedule");
        };
        assert!(unlock.verified);
        assert_eq!(
            unlock.nullity, 0,
            "golden instances span the full 64-bit seed space"
        );
        assert_eq!(
            unlock.seed, inst.secret,
            "instance {i} fault seed {fault_seed:#x}: exact recovery required"
        );
        // The schedule is hot enough that the machinery demonstrably ran.
        assert!(
            faults.retries > 0 || faults.repaired_bits > 0 || oracle.stats().faults() == 0,
            "fault handling must be exercised (or the schedule fired nothing)"
        );
    }
}

/// Randomized fault schedules: sweep rates drawn from an RNG and require
/// every run to end in a *sound* state — either verified-exact or honestly
/// degraded, never a wrong seed.
#[test]
fn randomized_fault_schedules_never_yield_a_wrong_verified_seed() {
    let mut rng = Xoshiro256::new(0x5CED);
    let mut unlocked = 0u32;
    for round in 0..8 {
        let inst = instance(16, 6, 0x900 + round);
        let bit_flips = (rng.gen_range(8) * 1_000) as u32;
        let transients = (rng.gen_range(10) * 10_000) as u32;
        let drops = (rng.gen_range(4) * 5_000) as u32;
        let cfg = RobustConfig {
            replication: 3,
            retry: RetryPolicy {
                max_retries: 6,
                ..RetryPolicy::default()
            },
            ..RobustConfig::default()
        };
        let mut oracle = FaultyOracle::new(
            inst.chip(),
            FaultSpec::new(rng.next_u64())
                .with_bit_flips(bit_flips)
                .with_transients(transients)
                .with_drops(drops),
        );
        match unlock_robust(&inst.circuit, &inst.chain, &inst.spec, &mut oracle, &cfg) {
            RobustOutcome::Unlocked { unlock, .. } => {
                // Verification ran against the (faulty) oracle and passed:
                // the seed must be the real one whenever rank is full.
                assert!(unlock.verified, "round {round}");
                if unlock.nullity == 0 {
                    assert_eq!(unlock.seed, inst.secret, "round {round}: verified ≠ wrong");
                }
                unlocked += 1;
            }
            RobustOutcome::Partial(report) => {
                // Degradation must be honest: a real reason, a full
                // confidence vector, and rank consistent with nullity.
                assert_eq!(report.bit_confidence.len(), inst.spec.width());
                assert_eq!(report.rank + report.nullity, inst.spec.width());
            }
        }
    }
    assert!(
        unlocked >= 4,
        "only {unlocked}/8 runs unlocked; schedules are tuned so most survive"
    );
}

/// A fully dead oracle: every query faults, so the attack must degrade
/// with [`DegradeReason::OracleUnavailable`] after the configured retries
/// and report its backoff accounting.
#[test]
fn dead_oracle_degrades_with_retry_accounting() {
    let inst = instance(12, 5, 0x41);
    let cfg = RobustConfig {
        retry: RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        },
        ..RobustConfig::default()
    };
    let mut dead = FaultyOracle::new(inst.chip(), FaultSpec::new(7).with_transients(1_000_000));
    let outcome = unlock_robust(&inst.circuit, &inst.chain, &inst.spec, &mut dead, &cfg);
    let RobustOutcome::Partial(report) = outcome else {
        panic!("a dead oracle cannot unlock anything");
    };
    assert_eq!(
        report.reason,
        DegradeReason::OracleUnavailable { retries: 3 }
    );
    assert_eq!(report.faults.retries, 3, "one allowance, fully spent");
    assert!(
        report.faults.backoff >= Duration::from_millis(2 + 4 + 8),
        "exponential backoff accounted: {:?}",
        report.faults.backoff
    );
    assert_eq!(report.dip_iterations, 0);
}

/// Budget exhaustion mid-loop: the partial report must grade every seed
/// bit and expose the solver's budget accounting.
#[test]
fn budget_exhaustion_reports_partial_confidence() {
    let inst = instance(16, 8, 0x52);
    let cfg = RobustConfig {
        solve_budget: Budget::new().with_propagations(1),
        max_budget_exhaustions: 1,
        ..RobustConfig::default()
    };
    let mut oracle = FaultyOracle::new(inst.chip(), FaultSpec::new(1));
    let outcome = unlock_robust(&inst.circuit, &inst.chain, &inst.spec, &mut oracle, &cfg);
    let RobustOutcome::Partial(report) = outcome else {
        panic!("a starved budget cannot converge");
    };
    assert!(matches!(
        report.reason,
        DegradeReason::BudgetExhausted { .. }
    ));
    assert!(report.solver_stats.budget_exhaustions >= 2);
    assert_eq!(report.bit_confidence.len(), 16);
    assert!(report
        .bit_confidence
        .iter()
        .all(|c| (0.5..=1.0).contains(c)));
    // Nothing converged, so no bit may claim linear-phase certainty.
    assert!(report.bit_confidence.iter().all(|&c| c < 1.0));
}

/// Replication actually repairs: under pure bit-flip noise (no transients)
/// a replication-3 attack succeeds and counts repaired bits, while the
/// same schedule with replication 1 must never verify a wrong seed.
#[test]
fn majority_vote_repairs_what_single_queries_cannot() {
    let inst = instance(16, 6, 0x63);
    let noisy_spec = FaultSpec::new(0xBEEF).with_bit_flips(5_000);

    let voted_cfg = RobustConfig {
        replication: 3,
        ..RobustConfig::default()
    };
    let mut voted_oracle = FaultyOracle::new(inst.chip(), noisy_spec);
    let outcome = unlock_robust(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        &mut voted_oracle,
        &voted_cfg,
    );
    let RobustOutcome::Unlocked { unlock, faults } = outcome else {
        panic!("replication 3 must survive 0.5% bit flips");
    };
    assert!(unlock.verified);
    if unlock.nullity == 0 {
        assert_eq!(unlock.seed, inst.secret);
    }
    assert!(
        faults.repaired_bits > 0 || voted_oracle.stats().flipped_bits == 0,
        "flips injected must surface as repairs"
    );

    // Unvoted: the same noise feeds straight into the model. Whatever
    // happens — degradation or a lucky unlock — a *verified* result still
    // implies correctness on full rank (verification re-queries).
    let single_cfg = RobustConfig::default();
    let mut single_oracle = FaultyOracle::new(inst.chip(), noisy_spec);
    if let RobustOutcome::Unlocked { unlock, .. } = unlock_robust(
        &inst.circuit,
        &inst.chain,
        &inst.spec,
        &mut single_oracle,
        &single_cfg,
    ) {
        if unlock.nullity == 0 {
            assert_eq!(unlock.seed, inst.secret, "verified implies correct");
        }
    }
}
