//! Randomized solver fuzzing with two independent safety nets per round:
//! the structural invariant auditor ([`satsolver::Solver::audit`]) after
//! every solve, and — whenever a round lands UNSAT — an in-process
//! `proofcheck` verification of the emitted DRAT+xor certificate.
//!
//! Instances mix plain clauses with native xor constraints at densities
//! chosen to land on both sides of the SAT/UNSAT boundary; each round
//! also runs a solve under random assumptions first, so the logged
//! refutation has to survive assumption-driven learnt clauses and
//! restarts that happened before the final answer.

use dynunlock_repro::gf2::{Rng64, Xoshiro256};
use dynunlock_repro::proofcheck;
use dynunlock_repro::satsolver::dimacs::Cnf;
use dynunlock_repro::satsolver::{Budget, DratProof, Lit, SolveResult, Solver, Var};

fn random_cnf(rng: &mut Xoshiro256) -> Cnf {
    let num_vars = 4 + rng.gen_range(12) as usize;
    let mut cnf = Cnf::new(num_vars);
    let rand_lit = |rng: &mut Xoshiro256| {
        let v = rng.gen_range(num_vars as u64) as i64 + 1;
        if rng.gen_bool() {
            Lit::from_dimacs(v)
        } else {
            Lit::from_dimacs(-v)
        }
    };
    // 2–4 clauses/var of width 2–4 (the occasional unit) straddles the
    // SAT/UNSAT boundary once the xor rows below are stirred in.
    let num_clauses = num_vars * 2 + rng.gen_range(num_vars as u64 * 2) as usize;
    for _ in 0..num_clauses {
        let width = if rng.gen_range(10) == 0 {
            1
        } else {
            2 + rng.gen_range(3) as usize
        };
        let lits: Vec<Lit> = (0..width).map(|_| rand_lit(rng)).collect();
        cnf.add_clause(lits);
    }
    let num_xors = rng.gen_range(7) as usize;
    for _ in 0..num_xors {
        let width = 1 + rng.gen_range(5) as usize;
        let lits: Vec<Lit> = (0..width).map(|_| rand_lit(rng)).collect();
        cnf.add_xor(lits, rng.gen_bool());
    }
    cnf
}

fn assert_audit_clean(s: &Solver, round: u64, site: &str) {
    let errors = s.audit();
    assert!(
        errors.is_empty(),
        "round {round}: audit failed after {site}: {errors:#?}"
    );
}

#[test]
fn random_instances_audit_clean_and_certify() {
    let mut rng = Xoshiro256::new(0xF022);
    let rounds = if cfg!(debug_assertions) { 60 } else { 200 };
    let (mut sat_rounds, mut unsat_rounds) = (0u64, 0u64);
    for round in 0..rounds {
        let cnf = random_cnf(&mut rng);
        let shared = DratProof::shared();
        let mut s = Solver::new();
        s.set_proof_logger(shared.clone());
        for _ in 0..cnf.num_vars {
            s.new_var();
        }
        let mut unsat = false;
        for c in &cnf.clauses {
            unsat |= !s.add_clause(c);
        }
        for x in &cnf.xors {
            unsat |= !s.add_xor(&x.lits, x.rhs);
        }
        assert_audit_clean(&s, round, "adds");

        // A solve under random assumptions first: learnt clauses and
        // restarts from this call land in the same proof log the final
        // answer must close.
        if !unsat {
            let assumptions: Vec<Lit> = (0..rng.gen_range(4))
                .map(|_| {
                    let v = rng.gen_range(cnf.num_vars as u64) as usize;
                    let l = Lit::positive(Var::from_index(v));
                    if rng.gen_bool() {
                        l
                    } else {
                        !l
                    }
                })
                .collect();
            s.solve_assuming(&assumptions);
            assert_audit_clean(&s, round, "assumption solve");
        }

        // A starved budgeted solve next: whatever it answers, the solver
        // must stay warm and auditable, and a definite answer must agree
        // with the final unlimited solve below.
        let budgeted = if unsat {
            SolveResult::Unsat
        } else {
            let tiny = Budget::new().with_conflicts(1 + rng.gen_range(3));
            let r = s.solve_limited(&[], &tiny);
            assert_audit_clean(&s, round, "budgeted solve");
            if r == SolveResult::Unknown {
                assert!(
                    s.stats().budget_exhaustions > 0,
                    "round {round}: Unknown without a recorded exhaustion"
                );
            }
            r
        };

        let result = if unsat { SolveResult::Unsat } else { s.solve() };
        assert_audit_clean(&s, round, "final solve");
        if budgeted != SolveResult::Unknown {
            assert_eq!(
                budgeted, result,
                "round {round}: budgeted answer must match the full solve"
            );
        }
        drop(s);

        match result {
            SolveResult::Sat => {
                sat_rounds += 1;
            }
            SolveResult::Unknown => {
                unreachable!("round {round}: unlimited solve cannot return Unknown");
            }
            SolveResult::Unsat => {
                unsat_rounds += 1;
                let guard = shared.lock().unwrap();
                assert!(guard.is_refutation(), "round {round}: proof not closed");
                let report = proofcheck::check_text(&cnf, guard.text()).unwrap_or_else(|e| {
                    panic!(
                        "round {round}: emitted proof rejected: {e}\n{}",
                        guard.text()
                    )
                });
                assert!(report.rup_additions + report.xor_steps > 0);
            }
        }
    }
    // The densities are tuned so both outcomes occur; if either side
    // vanishes the fuzz loop has silently stopped covering half the
    // solver.
    assert!(sat_rounds > 5, "only {sat_rounds} SAT rounds");
    assert!(unsat_rounds > 5, "only {unsat_rounds} UNSAT rounds");
}
