//! End-to-end certified solving: a full 64-bit-key attack under the
//! native xor mode must converge with a machine-checked UNSAT
//! certificate, the certificate must re-verify standalone, and corrupted
//! proofs must be rejected.

use dynunlock_repro::dynunlock::{unlock, AttackConfig};
use dynunlock_repro::gf2::Xoshiro256;
use dynunlock_repro::lfsr::TapSet;
use dynunlock_repro::netlist::generator::s208_like;
use dynunlock_repro::proofcheck::{self, CheckError};
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::ScanChain;

fn certified_64_bit_unlock() -> proofcheck::Certificate {
    let circuit = s208_like();
    let chain = ScanChain::natural(8);
    let mut rng = Xoshiro256::new(0xCE27);
    let taps = TapSet::maximal(64).unwrap();
    let spec = LockSpec::random(taps, chain.len(), 6, &mut rng);
    let secret = spec.random_seed(&mut rng);
    let mut oracle = LockedScanChip::new(&circuit, chain.clone(), spec.clone(), secret);
    let cfg = AttackConfig {
        certify: true,
        ..AttackConfig::default()
    };
    let u = unlock(&circuit, &chain, &spec, &mut oracle, &cfg).expect("attack converges");
    assert!(u.verified, "probes must pass");
    u.certificate.expect("certification was requested")
}

#[test]
fn attack_unsat_proof_verifies_and_mutations_are_rejected() {
    let cert = certified_64_bit_unlock();

    // The in-attack check already passed; the certificate must also
    // re-verify standalone from its own formula and proof text, with the
    // same numbers.
    let report = proofcheck::check_text(&cert.formula, &cert.proof).expect("re-check verifies");
    assert_eq!(report, cert.report);
    assert!(
        report.xor_steps > 0,
        "a native-xor 64-bit attack must lean on x-steps"
    );
    assert_eq!(cert.stats.xor_steps, report.xor_steps);

    // Mutation 1: corrupt the first proof line into a clause over a
    // variable the formula does not have — rejected at step 0 no matter
    // what the original line was.
    let (_, rest) = cert.proof.split_once('\n').expect("proof is non-empty");
    let corrupted = format!("999999 0\n{rest}");
    let err = proofcheck::check_text(&cert.formula, &corrupted).unwrap_err();
    assert!(matches!(err, CheckError::Step { index: 0, .. }), "{err}");

    // Mutation 2: drop the closing line. The empty clause is always the
    // final step (the logger suppresses everything after the refutation
    // closes), so the truncated proof never derives it.
    let last_line_start = cert.proof.trim_end().rfind('\n').map_or(0, |i| i + 1);
    let truncated = &cert.proof[..last_line_start];
    assert!(proofcheck::check_text(&cert.formula, truncated).is_err());
}
