//! Lock → attack → unlock round trips across randomized instances.
//!
//! Property, hand-rolled seeded-randomized style (the workspace has no
//! proptest dependency): for random generator profiles, chain orders, lock
//! specs, and secret seeds, DynUnlock's recovered seed reproduces the
//! locked chip's responses bit-for-bit on fresh random sessions, and a
//! healthy fraction of instances recover the secret exactly.

use dynunlock_repro::dynunlock::{unlock, AttackConfig};
use dynunlock_repro::gf2::{Rng64, Xoshiro256};
use dynunlock_repro::lfsr::TapSet;
use dynunlock_repro::netlist::generator::GeneratorConfig;
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::{ScanAccess, ScanChain};

/// One random instance end to end; returns (nullity, exact-recovery).
fn roundtrip(trial: u64) -> (usize, bool) {
    let mut rng = Xoshiro256::new(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);

    // Random tiny profile (tests run in debug builds — keep cones small).
    let pi = 3 + rng.gen_index(5);
    let po = 1 + rng.gen_index(4);
    let flops = 5 + rng.gen_index(6);
    let gates = 30 + rng.gen_index(60);
    let circuit = GeneratorConfig::new("roundtrip", pi, po, flops, gates)
        .with_seed(trial)
        .generate();

    // Random chain order, key width, gate placement, secret.
    let chain = if rng.gen_bool() {
        ScanChain::shuffled(flops, &mut rng)
    } else {
        ScanChain::natural(flops)
    };
    let width = [8, 10, 12, 16][rng.gen_index(4)];
    let taps = TapSet::maximal(width).unwrap();
    let spec = LockSpec::random(taps, flops, 2 + rng.gen_index(flops - 1), &mut rng);
    let secret = spec.random_seed(&mut rng);
    let captures = 1 + rng.gen_index(2);

    let mut oracle = LockedScanChip::new(&circuit, chain.clone(), spec.clone(), secret.clone());
    let cfg = AttackConfig {
        captures,
        rng_seed: trial,
        ..AttackConfig::default()
    };
    let result =
        unlock(&circuit, &chain, &spec, &mut oracle, &cfg).expect("attack converges on the trial");
    assert!(result.verified);

    // Bit-for-bit equivalence on fresh sessions the attack never used.
    // The guarantee is per session shape: the unload mask depends on the
    // capture count, so a rank-deficient (equivalence-class) seed is only
    // pinned for the shape the attack encoded. Exact recoveries must
    // reproduce *every* shape (DESIGN.md §6).
    let exact = result.seed == secret;
    let mut relocked =
        LockedScanChip::new(&circuit, chain.clone(), spec.clone(), result.seed.clone());
    for _ in 0..12 {
        let pattern: Vec<bool> = (0..flops).map(|_| rng.gen_bool()).collect();
        let pis: Vec<bool> = (0..pi).map(|_| rng.gen_bool()).collect();
        let c = if exact {
            1 + rng.gen_index(3)
        } else {
            captures
        };
        assert_eq!(
            relocked.query_captures(&pattern, &pis, c),
            oracle.query_captures(&pattern, &pis, c),
            "trial {trial}: recovered seed must reproduce the oracle"
        );
    }

    // Note: full rank does NOT imply `exact`. The mask values handed to
    // the recovery come from the final SAT model; a mask bit that never
    // influences any observable response (say, the load mask of a flop
    // whose output has no fanout) is a free variable the solver fixes
    // arbitrarily, so even a determined system can pin a functionally
    // equivalent seed that differs from the secret.
    (result.nullity, exact)
}

#[test]
fn randomized_lock_unlock_roundtrips() {
    let mut exact_recoveries = 0;
    for trial in 0..10 {
        let (_, exact) = roundtrip(trial);
        exact_recoveries += usize::from(exact);
    }
    // Sanity on the suite itself: with 2+ gates per chain most instances
    // should pin the seed exactly; all-equivalent-class outcomes would
    // suggest the mask system is degenerate.
    assert!(exact_recoveries >= 3, "only {exact_recoveries}/10 exact");
}

#[test]
fn multi_capture_roundtrips() {
    // Multi-capture sessions exercise the beta-mask shift; run a couple of
    // dedicated trials with captures pinned high.
    for trial in [100u64, 101] {
        let mut rng = Xoshiro256::new(trial);
        let circuit = GeneratorConfig::new("multicap", 4, 2, 7, 45)
            .with_seed(trial)
            .generate();
        let chain = ScanChain::shuffled(7, &mut rng);
        let spec = LockSpec::random(TapSet::maximal(10).unwrap(), 7, 4, &mut rng);
        let secret = spec.random_seed(&mut rng);
        let mut oracle = LockedScanChip::new(&circuit, chain.clone(), spec.clone(), secret);
        let cfg = AttackConfig {
            captures: 3,
            ..AttackConfig::default()
        };
        let result = unlock(&circuit, &chain, &spec, &mut oracle, &cfg).expect("converges");
        assert!(result.verified, "trial {trial}");
    }
}
