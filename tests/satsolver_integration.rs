//! End-to-end tests of the `satsolver` crate against the rest of the
//! stack: canonical UNSAT/SAT instance families, model verification
//! through the DIMACS layer, and a Tseitin encoding of a real netlist
//! cross-checked against `sim::Evaluator`.

use bench::{pigeonhole, planted_3sat};
use dynunlock_repro::netlist::generator::s208_like;
use dynunlock_repro::netlist::{Circuit, CircuitBuilder, GateKind};
use dynunlock_repro::satsolver::dimacs::Cnf;
use dynunlock_repro::satsolver::{Lit, SolveResult, Solver, Var};
use dynunlock_repro::sim::Evaluator;
use gf2::{Rng64, SplitMix64};

/// Extracts the model as a plain bool vector (all variables are defaulted
/// on a `Sat` answer).
fn model_of(s: &Solver, vars: &[Var]) -> Vec<bool> {
    vars.iter()
        .map(|&v| s.value(v).expect("model is total after Sat"))
        .collect()
}

#[test]
fn pigeonhole_is_unsat_with_real_search() {
    let cnf = pigeonhole(7, 6);
    let (mut s, _) = cnf.to_solver();
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = *s.stats();
    assert!(st.conflicts > 0, "PHP(7,6) must require learning: {st:?}");
    assert!(st.learnt_clauses > 0);
}

#[test]
fn pigeonhole_boundary_is_sat_and_model_checks() {
    let cnf = pigeonhole(6, 6);
    let (mut s, vars) = cnf.to_solver();
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(cnf.eval(&model_of(&s, &vars)), "model violates a clause");
}

#[test]
fn planted_3sat_is_sat_and_model_checks() {
    for seed in 0..5 {
        let cnf = planted_3sat(120, 480, seed);
        let (mut s, vars) = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat, "planted instance, seed {seed}");
        assert!(
            cnf.eval(&model_of(&s, &vars)),
            "model violates a clause (seed {seed})"
        );
    }
}

#[test]
fn dimacs_round_trip_preserves_solver_answers() {
    let cnf = planted_3sat(40, 160, 9);
    let reparsed = Cnf::parse(&cnf.to_dimacs()).expect("own output parses");
    let (mut s, vars) = reparsed.to_solver();
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(cnf.eval(&model_of(&s, &vars)));
}

// ---------------------------------------------------------------------
// Circuit-derived CNF vs the gate-level simulator
// ---------------------------------------------------------------------

/// Tseitin-encodes `circuit` into `solver`, one variable per net.
/// Flip-flop outputs (state) and primary inputs are left unconstrained.
fn tseitin(circuit: &Circuit, solver: &mut Solver) -> Vec<Var> {
    let vars: Vec<Var> = (0..circuit.num_nets()).map(|_| solver.new_var()).collect();
    let pos = |n: dynunlock_repro::netlist::NetId| Lit::positive(vars[n.index()]);
    let neg = |n: dynunlock_repro::netlist::NetId| Lit::negative(vars[n.index()]);

    for g in circuit.gates() {
        let o = g.output;
        let ins = &g.inputs;
        match g.kind {
            GateKind::Buf => {
                solver.add_clause(&[neg(o), pos(ins[0])]);
                solver.add_clause(&[pos(o), neg(ins[0])]);
            }
            GateKind::Not => {
                solver.add_clause(&[neg(o), neg(ins[0])]);
                solver.add_clause(&[pos(o), pos(ins[0])]);
            }
            GateKind::And | GateKind::Nand => {
                // aux ≡ AND(ins); for NAND the output literal is inverted.
                let (o_true, o_false) = if g.kind == GateKind::And {
                    (pos(o), neg(o))
                } else {
                    (neg(o), pos(o))
                };
                let mut long: Vec<Lit> = vec![o_true];
                for &i in ins {
                    solver.add_clause(&[o_false, pos(i)]);
                    long.push(neg(i));
                }
                solver.add_clause(&long);
            }
            GateKind::Or | GateKind::Nor => {
                let (o_true, o_false) = if g.kind == GateKind::Or {
                    (pos(o), neg(o))
                } else {
                    (neg(o), pos(o))
                };
                let mut long: Vec<Lit> = vec![o_false];
                for &i in ins {
                    solver.add_clause(&[o_true, neg(i)]);
                    long.push(pos(i));
                }
                solver.add_clause(&long);
            }
            GateKind::Xor | GateKind::Xnor => {
                // Chain binary XORs through aux variables, then tie the
                // output (inverted for XNOR) to the final parity.
                let mut acc = if g.kind == GateKind::Xor {
                    pos(ins[0])
                } else {
                    neg(ins[0])
                };
                for &i in &ins[1..] {
                    let t = Lit::positive(solver.new_var());
                    let b = pos(i);
                    // t ≡ acc ⊕ b
                    solver.add_clause(&[!t, acc, b]);
                    solver.add_clause(&[!t, !acc, !b]);
                    solver.add_clause(&[t, !acc, b]);
                    solver.add_clause(&[t, acc, !b]);
                    acc = t;
                }
                solver.add_clause(&[neg(o), acc]);
                solver.add_clause(&[pos(o), !acc]);
            }
            GateKind::Const0 => {
                solver.add_clause(&[neg(o)]);
            }
            GateKind::Const1 => {
                solver.add_clause(&[pos(o)]);
            }
        }
    }
    vars
}

/// Assumption literals pinning every primary input and state net.
fn pin_inputs(circuit: &Circuit, vars: &[Var], pis: &[bool], state: &[bool]) -> Vec<Lit> {
    let mut assumptions = Vec::new();
    for (net, &val) in circuit.inputs().iter().zip(pis) {
        assumptions.push(Lit::new(vars[net.index()], val));
    }
    for (dff, &val) in circuit.dffs().iter().zip(state) {
        assumptions.push(Lit::new(vars[dff.q.index()], val));
    }
    assumptions
}

/// A small combinational circuit covering every gate kind.
fn all_kinds_circuit() -> Circuit {
    let mut b = CircuitBuilder::new("allkinds");
    let a = b.input("a");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let and = b.gate(GateKind::And, &[a, c, d], "and");
    let nand = b.gate(GateKind::Nand, &[c, d, e], "nand");
    let or = b.gate(GateKind::Or, &[and, nand], "or");
    let nor = b.gate(GateKind::Nor, &[a, e, and], "nor");
    let xor = b.gate(GateKind::Xor, &[or, nor, d], "xor");
    let xnor = b.gate(GateKind::Xnor, &[xor, a], "xnor");
    let not = b.gate(GateKind::Not, &[xnor], "not");
    let buf = b.gate(GateKind::Buf, &[nor], "buf");
    let one = b.gate(GateKind::Const1, &[], "one");
    let zero = b.gate(GateKind::Const0, &[], "zero");
    let mix = b.gate(GateKind::And, &[not, one], "mix");
    let mix2 = b.gate(GateKind::Or, &[buf, zero, mix], "mix2");
    b.output(xor);
    b.output(mix2);
    b.finish().expect("valid circuit")
}

#[test]
fn circuit_cnf_matches_evaluator_exhaustively() {
    let circuit = all_kinds_circuit();
    let mut solver = Solver::new();
    let vars = tseitin(&circuit, &mut solver);
    let mut ev = Evaluator::new(&circuit);

    let n = circuit.inputs().len();
    for stimulus in 0..1u32 << n {
        let pis: Vec<bool> = (0..n).map(|i| stimulus >> i & 1 == 1).collect();
        ev.eval(&pis, &[]);
        let assumptions = pin_inputs(&circuit, &vars, &pis, &[]);
        assert_eq!(
            solver.solve_assuming(&assumptions),
            SolveResult::Sat,
            "circuit CNF must be satisfiable once inputs are pinned"
        );
        // Every gate output — not just the primary outputs — must agree
        // with the simulator.
        for g in circuit.gates() {
            assert_eq!(
                solver.value(vars[g.output.index()]),
                Some(ev.value(g.output)),
                "net {} disagrees under stimulus {stimulus:04b}",
                circuit.net_name(g.output)
            );
        }
    }
}

#[test]
fn circuit_cnf_forcing_wrong_output_is_unsat() {
    let circuit = all_kinds_circuit();
    let mut solver = Solver::new();
    let vars = tseitin(&circuit, &mut solver);
    let mut ev = Evaluator::new(&circuit);

    let n = circuit.inputs().len();
    for stimulus in [0u32, 3, 7, 11, 15] {
        let pis: Vec<bool> = (0..n).map(|i| stimulus >> i & 1 == 1).collect();
        ev.eval(&pis, &[]);
        for &out in circuit.outputs() {
            let mut assumptions = pin_inputs(&circuit, &vars, &pis, &[]);
            assumptions.push(Lit::new(vars[out.index()], !ev.value(out)));
            assert_eq!(
                solver.solve_assuming(&assumptions),
                SolveResult::Unsat,
                "output {} cannot take the wrong value",
                circuit.net_name(out)
            );
        }
    }
}

#[test]
fn sequential_circuit_cnf_matches_evaluator_on_samples() {
    let circuit = s208_like();
    let mut solver = Solver::new();
    let vars = tseitin(&circuit, &mut solver);
    let mut ev = Evaluator::new(&circuit);
    let mut rng = SplitMix64::new(0x5EED);

    for _ in 0..32 {
        let pis: Vec<bool> = (0..circuit.inputs().len())
            .map(|_| rng.next_u64() & 1 == 1)
            .collect();
        let state: Vec<bool> = (0..circuit.num_dffs())
            .map(|_| rng.next_u64() & 1 == 1)
            .collect();
        ev.eval(&pis, &state);
        let assumptions = pin_inputs(&circuit, &vars, &pis, &state);
        assert_eq!(solver.solve_assuming(&assumptions), SolveResult::Sat);
        for (net, expected) in circuit.outputs().iter().zip(ev.output_values()) {
            assert_eq!(
                solver.value(vars[net.index()]),
                Some(expected),
                "primary output {} disagrees",
                circuit.net_name(*net)
            );
        }
        // Next-state (D inputs) must agree too.
        for (dff, expected) in circuit.dffs().iter().zip(ev.next_state()) {
            assert_eq!(solver.value(vars[dff.d.index()]), Some(expected));
        }
    }
}
