//! Differential tests for the two xor lowerings.
//!
//! Every randomized GF(2) system here is solved three ways: through the
//! solver's native xor engine ([`XorMode::Native`]), through the classical
//! Tseitin clause expansion ([`XorMode::Tseitin`]), and by dense Gaussian
//! elimination ([`gf2::solve_system`]) as ground truth. All three must
//! agree on SAT/UNSAT, and every SAT model must satisfy every row parity.
//! Rank-deficient and inconsistent systems are constructed explicitly on
//! top of the random sweep.

use dynunlock_repro::{cnf, gf2, satsolver};

use cnf::{Encoder, XorMode};
use gf2::{solve_system, BitMatrix, BitVec, Rng64, Xoshiro256};
use satsolver::{Lit, SolveResult};

/// One xor row: coefficient vector over the variables, plus its rhs.
type Row = (BitVec, bool);

/// Draws a random system of `m` rows over `n` variables. Rows may be
/// empty, dense, duplicated — whatever the RNG produces is a legal case.
fn random_system(n: usize, m: usize, rng: &mut Xoshiro256) -> Vec<Row> {
    (0..m)
        .map(|_| {
            let coeffs = BitVec::from_bools((0..n).map(|_| rng.gen_bool()));
            (coeffs, rng.gen_bool())
        })
        .collect()
}

/// Encodes the system under `mode` and solves. Returns the result and,
/// when SAT, the model restricted to the system variables.
fn solve_with(mode: XorMode, n: usize, rows: &[Row]) -> (SolveResult, Option<Vec<bool>>) {
    let mut enc = Encoder::with_mode(mode);
    let vars = enc.fresh_many(n);
    let mut ok = true;
    for (coeffs, rhs) in rows {
        let lits: Vec<Lit> = coeffs.iter_ones().map(|i| vars[i]).collect();
        ok &= enc.assert_xor(&lits, *rhs);
    }
    if !ok {
        return (SolveResult::Unsat, None);
    }
    let res = enc.solver_mut().solve();
    let model = (res == SolveResult::Sat).then(|| {
        vars.iter()
            .map(|&l| enc.solver().lit_model_value(l).unwrap_or(false))
            .collect()
    });
    (res, model)
}

/// Ground truth by dense elimination: `Ok` iff the system is consistent.
fn ground_truth(n: usize, rows: &[Row]) -> bool {
    let a = BitMatrix::from_rows(
        rows.iter()
            .map(|(c, _)| {
                assert_eq!(c.len(), n);
                c.clone()
            })
            .collect(),
    );
    let b = BitVec::from_bools(rows.iter().map(|(_, r)| *r));
    solve_system(&a, &b).is_ok()
}

/// Runs all three solvers on one system and cross-checks everything.
fn check_system(n: usize, rows: &[Row]) {
    let sat = ground_truth(n, rows);
    for mode in [XorMode::Native, XorMode::Tseitin] {
        let (res, model) = solve_with(mode, n, rows);
        assert_eq!(
            res == SolveResult::Sat,
            sat,
            "{mode:?} disagrees with elimination on a {n}-var {}-row system",
            rows.len()
        );
        if let Some(model) = model {
            let assignment = BitVec::from_bools(model.iter().copied());
            for (i, (coeffs, rhs)) in rows.iter().enumerate() {
                assert_eq!(
                    coeffs.dot(&assignment),
                    *rhs,
                    "{mode:?} model violates row {i}"
                );
            }
        }
    }
}

#[test]
fn randomized_systems_agree_with_elimination() {
    let mut rng = Xoshiro256::new(0xD1FF_5EED);
    for trial in 0..80 {
        let n = 2 + (trial % 19);
        let m = 1 + (trial % (n + 4));
        let rows = random_system(n, m, &mut rng);
        check_system(n, &rows);
    }
}

#[test]
fn rank_deficient_systems_stay_consistent() {
    // Append linear combinations with *consistent* rhs: rank stays put,
    // the system stays SAT, and both lowerings must keep agreeing.
    let mut rng = Xoshiro256::new(0xDEF1_C1E4);
    for trial in 0..25 {
        let n = 4 + (trial % 12);
        let mut rows = random_system(n, n / 2, &mut rng);
        if !ground_truth(n, &rows) {
            continue; // base must be consistent for this construction
        }
        let combos: Vec<Row> = rows
            .iter()
            .zip(rows.iter().skip(1))
            .map(|((c1, r1), (c2, r2))| {
                let mut c = c1.clone();
                c.xor_assign(c2);
                (c, r1 ^ r2)
            })
            .collect();
        rows.extend(combos);
        assert!(ground_truth(n, &rows), "combinations preserve consistency");
        check_system(n, &rows);
    }
}

#[test]
fn inconsistent_combinations_go_unsat_in_both_modes() {
    // Same construction with the rhs flipped: the new row contradicts the
    // span of the old ones, so every solver must report UNSAT.
    let mut rng = Xoshiro256::new(0xBAD_5EED);
    let mut checked = 0;
    for trial in 0..40 {
        let n = 3 + (trial % 14);
        let mut rows = random_system(n, 1 + n / 2, &mut rng);
        if !ground_truth(n, &rows) || rows.len() < 2 {
            continue;
        }
        let (c1, r1) = rows[0].clone();
        let (c2, r2) = rows[1].clone();
        let mut c = c1;
        c.xor_assign(&c2);
        rows.push((c, !(r1 ^ r2)));
        assert!(!ground_truth(n, &rows));
        check_system(n, &rows);
        checked += 1;
    }
    assert!(checked >= 10, "too few inconsistent cases exercised");
}

#[test]
fn xors_mixed_with_clauses_agree_across_modes() {
    // With ordinary clauses in the mix there is no closed-form ground
    // truth, so brute-force the assignment space (n is kept small) and
    // compare both lowerings against it.
    let mut rng = Xoshiro256::new(0x3141_5926);
    for trial in 0..30 {
        let n = 3 + (trial % 8);
        let xor_rows = random_system(n, 1 + n / 3, &mut rng);
        let clauses: Vec<Vec<(usize, bool)>> = (0..n)
            .map(|_| {
                (0..3)
                    .map(|_| ((rng.next_u64() as usize) % n, rng.gen_bool()))
                    .collect()
            })
            .collect();

        let brute = (0u64..1 << n).any(|bits| {
            let assign = BitVec::from_bools((0..n).map(|i| bits >> i & 1 == 1));
            xor_rows.iter().all(|(c, r)| c.dot(&assign) == *r)
                && clauses
                    .iter()
                    .all(|cl| cl.iter().any(|&(v, pos)| assign.get(v) == pos))
        });

        for mode in [XorMode::Native, XorMode::Tseitin] {
            let mut enc = Encoder::with_mode(mode);
            let vars = enc.fresh_many(n);
            let mut ok = true;
            for (coeffs, rhs) in &xor_rows {
                let lits: Vec<Lit> = coeffs.iter_ones().map(|i| vars[i]).collect();
                ok &= enc.assert_xor(&lits, *rhs);
            }
            for cl in &clauses {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                    .collect();
                ok &= enc.assert_clause(&lits);
            }
            let res = if ok {
                enc.solver_mut().solve()
            } else {
                SolveResult::Unsat
            };
            assert_eq!(
                res == SolveResult::Sat,
                brute,
                "{mode:?} disagrees with brute force on mixed instance {trial}"
            );
        }
    }
}

#[test]
fn assumptions_do_not_poison_either_mode() {
    // Solving under assumptions that contradict the xor system must come
    // back UNSAT without damaging the instance: the unconditional solve
    // afterwards still matches ground truth, in both modes.
    let mut rng = Xoshiro256::new(0xA55);
    for trial in 0..20 {
        let n = 4 + (trial % 10);
        let rows = random_system(n, n / 2, &mut rng);
        if !ground_truth(n, &rows) {
            continue;
        }
        for mode in [XorMode::Native, XorMode::Tseitin] {
            let mut enc = Encoder::with_mode(mode);
            let vars = enc.fresh_many(n);
            for (coeffs, rhs) in &rows {
                let lits: Vec<Lit> = coeffs.iter_ones().map(|i| vars[i]).collect();
                assert!(enc.assert_xor(&lits, *rhs));
            }
            assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
            let model: Vec<bool> = vars
                .iter()
                .map(|&l| enc.solver().lit_model_value(l).unwrap_or(false))
                .collect();
            // Pin every variable to the found model *except* one, flipped:
            // the parities that involve it now clash.
            let mut assumptions: Vec<Lit> = vars
                .iter()
                .zip(&model)
                .map(|(&l, &v)| if v { l } else { !l })
                .collect();
            assumptions[0] = !assumptions[0];
            let flipped_matters = rows.iter().any(|(c, _)| c.get(0));
            let res = enc.solver_mut().solve_assuming(&assumptions);
            if flipped_matters {
                assert_eq!(res, SolveResult::Unsat, "{mode:?} trial {trial}");
            }
            // The instance itself is untouched.
            assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
        }
    }
}
