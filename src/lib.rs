//! Umbrella crate for the DynUnlock reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; it re-exports every member crate so examples and
//! integration tests can reach the whole stack through one dependency.
//!
//! See the individual crates for the real functionality:
//!
//! * [`netlist`], [`sim`], [`lfsr`], [`satsolver`], [`gf2`] — substrates
//!
//! Upper layers of the attack stack are not implemented yet.
// TODO(cnf, scanlock, dynunlock, duharness): restore these re-exports as
// later PRs land the CNF encoder, the EFF/DOS/EFF-Dyn defenses + locked
// oracle, the attack itself, and the experiment harness.

pub use gf2;
pub use lfsr;
pub use netlist;
pub use satsolver;
pub use sim;
