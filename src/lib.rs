//! Umbrella crate for the DynUnlock reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; it re-exports every member crate so examples and
//! integration tests can reach the whole stack through one dependency.
//!
//! See the individual crates for the real functionality:
//!
//! * [`dynunlock`] — the attack (the paper's contribution)
//! * [`scanlock`] — the EFF / DOS / EFF-Dyn defenses and the locked-chip oracle
//! * [`netlist`], [`sim`], [`lfsr`], [`satsolver`], [`cnf`], [`gf2`] — substrates

pub use cnf;
pub use duharness;
pub use dynunlock;
pub use gf2;
pub use lfsr;
pub use netlist;
pub use satsolver;
pub use scanlock;
pub use sim;
