//! Umbrella crate for the DynUnlock reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; it re-exports every member crate so examples and
//! integration tests can reach the whole stack through one dependency.
//!
//! See the individual crates for the real functionality:
//!
//! * [`netlist`], [`sim`], [`lfsr`], [`satsolver`], [`gf2`], [`par`] —
//!   substrates
//! * [`scanlock`] — the EFF-Dyn defense and the locked scan-chip oracle
//! * [`cnf`] — Tseitin encoding of circuits onto the SAT solver
//! * [`dynunlock`] — the attack: DIP loop plus GF(2) seed recovery
//! * [`duharness`] — the paper-table reproduction harness
//! * [`proofcheck`] — standalone DRAT+xor proof checker for certified
//!   solving

pub use cnf;
pub use duharness;
pub use dynunlock;
pub use gf2;
pub use lfsr;
pub use netlist;
pub use par;
pub use proofcheck;
pub use satsolver;
pub use scanlock;
pub use sim;
