//! End-to-end DynUnlock demo: lock a circuit with EFF-Dyn, hand the
//! attacker nothing but scan-test access, and watch the seed come back.
//!
//! The script follows the paper's attack flow:
//!
//! 1. build a circuit and lock its scan chain (a 64-bit key LFSR + XOR
//!    key gates — the paper's headline key size);
//! 2. run the SAT-based DIP loop against the locked chip as a black-box
//!    oracle until no distinguishing input pattern remains (each session
//!    mask bit is one native GF(2) xor constraint in the solver, which is
//!    why a 64-bit key is no harder than an 8-bit one here);
//! 3. recover the seed by Gaussian elimination over the session masks;
//! 4. confirm the unlocked model reproduces the real chip bit-for-bit.
//!
//! Run with: `cargo run --release --example unlock_demo`

use dynunlock_repro::dynunlock::{unlock, AttackConfig};
use dynunlock_repro::gf2::{Rng64, Xoshiro256};
use dynunlock_repro::lfsr::TapSet;
use dynunlock_repro::netlist::profiles::by_name;
use dynunlock_repro::scanlock::{LockSpec, LockedScanChip};
use dynunlock_repro::sim::{ScanAccess, ScanChain};

fn main() {
    // 1. The design: a scaled s5378-profile circuit with a shuffled scan
    //    stitching, locked with a 64-bit key LFSR — the paper's headline
    //    key size — driving key gates on half the chain segments. The
    //    session-mask parities land in the solver's native GF(2) engine,
    //    so the width costs the attack almost nothing.
    let profile = by_name("s5378").expect("paper profile").scaled(0.07);
    let circuit = profile.build(3);
    let n = circuit.num_dffs();
    let mut rng = Xoshiro256::new(0x5EED);
    let chain = ScanChain::shuffled(n, &mut rng);
    let taps = TapSet::maximal(64).expect("tabulated width");
    let spec = LockSpec::random(taps, n, n / 2, &mut rng);
    let secret = spec.random_seed(&mut rng);
    println!(
        "locked {}: {} flops, {} gates, {}-bit key, {} key gates",
        profile.name,
        n,
        circuit.num_gates(),
        spec.width(),
        spec.gates().len()
    );

    // The foundry's chip. The attacker gets `ScanAccess` to it and the
    // netlist (including the lock structure) — but never `secret`.
    let mut oracle = LockedScanChip::new(&circuit, chain.clone(), spec.clone(), secret.clone());

    // 2.+3. The attack: DIP loop, then linear seed recovery.
    let result = unlock(
        &circuit,
        &chain,
        &spec,
        &mut oracle,
        &AttackConfig::default(),
    )
    .expect("DynUnlock converges");
    println!(
        "unlocked in {} DIP iterations, {} oracle queries, solver time {:?}",
        result.dip_iterations, result.oracle_queries, result.solve_time
    );
    println!("  mask system rank {}/{}", result.rank, spec.width());
    println!("  secret:    {secret}");
    println!("  recovered: {}", result.seed);
    assert!(result.verified, "attack self-verification failed");
    if result.seed == secret {
        println!("  recovered the secret exactly");
    } else {
        println!(
            "  (recovered a functionally equivalent seed; 2^{} seeds mask identically)",
            result.nullity
        );
    }

    // 4. Independent check: a chip re-locked with the recovered seed is
    //    indistinguishable from the real one. With the seed in hand the
    //    mask is known, so the attacker can load and read arbitrary scan
    //    states — the lock is broken.
    let mut relocked = LockedScanChip::new(&circuit, chain, spec, result.seed);
    let probes = 64;
    for _ in 0..probes {
        let pattern: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
        let pis: Vec<bool> = (0..circuit.inputs().len())
            .map(|_| rng.gen_bool())
            .collect();
        assert_eq!(
            relocked.query(&pattern, &pis),
            oracle.query(&pattern, &pis),
            "recovered seed must reproduce the oracle"
        );
    }
    println!("verified on {probes} random scan sessions");
    println!("ok");
}
