//! End-to-end demo of the substrate through the umbrella crate's public
//! surface: parse a DIMACS CNF, solve it incrementally under assumptions,
//! and recover a hidden LFSR seed from key-stream observations — the two
//! primitives the DynUnlock attack composes.
//!
//! Run with: `cargo run --release --example unlock_demo`

use dynunlock_repro::gf2::BitVec;
use dynunlock_repro::lfsr::recover::{Observation, SeedRecovery};
use dynunlock_repro::lfsr::{Lfsr, TapSet};
use dynunlock_repro::satsolver::dimacs::Cnf;
use dynunlock_repro::satsolver::{Lit, SolveResult};

fn main() {
    // 1. Solve a small CNF given in DIMACS text form.
    let dimacs = "c (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c)\np cnf 3 3\n1 2 0\n-1 3 0\n-2 3 0\n";
    let cnf = Cnf::parse(dimacs).expect("valid DIMACS");
    let (mut solver, vars) = cnf.to_solver();
    let result = solver.solve();
    println!("DIMACS instance: {result:?}");
    assert_eq!(result, SolveResult::Sat);
    let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
    println!("  model: {model:?} (satisfies CNF: {})", cnf.eval(&model));

    // 2. The same solver, incrementally, under assumptions: force ¬c and
    //    the instance becomes unsatisfiable — without poisoning the solver.
    let not_c = Lit::negative(vars[2]);
    println!("  under ¬c: {:?}", solver.solve_assuming(&[not_c]));
    println!("  unconstrained again: {:?}", solver.solve());

    // 3. Recover a hidden 64-bit LFSR seed by watching one output bit —
    //    the linear-algebra core that breaks per-cycle dynamic re-keying.
    let taps = TapSet::maximal(64).expect("tabulated width");
    let secret = BitVec::from_u64(64, 0x0BAD_5EED_CAFE_F00D);
    let mut chip = Lfsr::new(taps.clone(), secret.clone());
    let mut rec = SeedRecovery::new(taps);
    let mut cycles = 0;
    while rec.unique_seed().is_none() {
        rec.observe(Observation {
            cycle: cycles,
            bit_index: 0,
            value: chip.bit(0),
        })
        .expect("observations are consistent");
        chip.step();
        cycles += 1;
    }
    let recovered = rec.unique_seed().unwrap();
    println!("LFSR seed recovered after {cycles} observed cycles");
    println!("  secret:    {secret}");
    println!("  recovered: {recovered}");
    assert_eq!(recovered, secret);
    println!("ok");
}
